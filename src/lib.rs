//! # sabres — atomic object reads for in-memory rack-scale computing
//!
//! A from-scratch Rust reproduction of **"SABRes: Atomic Object Reads for
//! In-Memory Rack-Scale Computing"** (Daglis, Ustiugov, Novaković, Bugnion,
//! Falsafi, Grot — MICRO 2016): the **LightSABRes** destination-side
//! hardware engine for multi-cache-block atomic one-sided reads, the
//! **Scale-Out NUMA** substrate it plugs into, the software atomicity
//! mechanisms it replaces (FaRM per-cache-line versions, Pilaf checksums,
//! DrTM remote locking), and a FaRM-like key-value store — all runnable
//! inside a deterministic discrete-event simulation of the paper's two-node
//! rack, or of N-node racks on a rack-level 2D-mesh fabric driven by a
//! sharded event loop (bit-identical at every shard count).
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `sabre-core` | the paper's contribution: stream buffers, ATT, the LightSABRes engine |
//! | [`sonuma`] | `sabre-sonuma` | WQ/CQ, RGP/RCP/R2P2 pipelines, wire protocol |
//! | [`rack`] | `sabre-rack` | the simulated cluster and workload programs |
//! | [`farm`] | `sabre-farm` | object store, KV store, FaRM read/write paths |
//! | [`sw`] | `sabre-sw` | software atomicity layouts and the CPU cost model |
//! | [`mem`] | `sabre-mem` | functional memory, LLC model, DRAM timing |
//! | [`fabric`] | `sabre-fabric` | on-chip mesh and inter-node fabric |
//! | [`sim`] | `sabre-sim` | event queue, virtual time, statistics |
//!
//! ## Quickstart
//!
//! Experiments are *declared* with [`ScenarioBuilder`](rack::scenario):
//! configure the rack, declare data regions, place workloads with a
//! [`WorkloadSpec`](rack::WorkloadSpec) — mechanism, arrival process, key
//! popularity, read/write mix — run, read the
//! [`RunReport`](rack::scenario::RunReport):
//!
//! ```
//! use sabres::prelude::*;
//!
//! // A two-node Table-2 rack with a 100-object clean-layout store on
//! // node 1, and one core on node 0 reading objects atomically (SABRes).
//! let (scenario, store) = ScenarioBuilder::new().store(1, StoreLayout::Clean, 128, Some(100));
//! let wire = store.slot_bytes() as u32;
//! let report = scenario
//!     .reader_spec(
//!         0,
//!         0,
//!         spec().store(1).payload(128).mechanism(ReadMechanism::Sabre).wire(wire),
//!     )
//!     .run_for(Time::from_us(20));
//! assert!(report.core(0, 0).ops > 0);
//! ```
//!
//! Independent sweep points run in parallel (each cluster is its own
//! world), with results in input order, bit-identical to a serial run:
//!
//! ```
//! use sabres::prelude::*;
//!
//! let latencies = Sweep::over([64u32, 1024]).map(|&size| {
//!     ScenarioBuilder::new()
//!         .raw_region(1, size)
//!         .reader_spec(0, 0, spec().store(1).payload(size).mechanism(ReadMechanism::Sabre))
//!         .run_for(Time::from_us(30))
//!         .mean_latency_ns(0, 0)
//!         .expect("ops completed")
//! });
//! assert!(latencies[0] < latencies[1]);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

pub use sabre_core as core;
pub use sabre_fabric as fabric;
pub use sabre_farm as farm;
pub use sabre_mem as mem;
pub use sabre_rack as rack;
pub use sabre_sim as sim;
pub use sabre_sonuma as sonuma;
pub use sabre_sw as sw;

/// The most common imports in one place.
pub mod prelude {
    pub use sabre_core::{CcMode, LightSabres, LightSabresConfig, SpecMode};
    pub use sabre_fabric::RackTopology;
    pub use sabre_farm::{
        replica_sites, FarmCosts, FarmLocalReader, FarmReader, KvStore, ObjectStore,
        RecoveringWriter, ReplicaState, ReplicatedStore, RpcWriteServer, RpcWriter,
        ScenarioStoreExt, StoreLayout, WriteLog,
    };
    pub use sabre_mem::{Addr, BlockAddr, NodeMemory, BLOCK_BYTES};
    pub use sabre_rack::workloads::{
        pattern_payload, verify_payload, AsyncReader, FailoverReader, SourceLockingReader,
        SyncReader, Writer, WriterLayout,
    };
    pub use sabre_rack::{
        spec, Arrivals, Cluster, ClusterConfig, CoreApi, FaultPlan, NodeReport, NodeRole, Phase,
        PlacementPolicy, Popularity, ReadMechanism, RecoveryReport, RunReport, ScenarioBuilder,
        Sweep, Topology, Workload, WorkloadSpec,
    };
    pub use sabre_sim::{SimRng, Time};
    pub use sabre_sonuma::{CqEntry, OpKind};
    pub use sabre_sw::{
        tag_board_addr, CleanLayout, CpuCostModel, PerClLayout, VersionWord, WfRegisterLayout,
    };
}
