//! Criterion microbenchmarks of the hot kernels: the data structures the
//! simulated hardware is made of, and the software kernels whose *modeled*
//! costs the experiments charge. These measure the host's real performance
//! (simulator throughput), complementing the simulated-time experiments.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use sabre_core::{LightSabres, LightSabresConfig, SabreId, StreamBuffer};
use sabre_mem::{Addr, BlockAddr, Llc, NodeMemory, BLOCK_BYTES};
use sabre_rack::{spec, Cluster, ClusterConfig, ReadMechanism, ScenarioBuilder};
use sabre_sim::{CalendarQueue, EventQueue, LatencyHistogram, Time};
use sabre_sw::layout::PerClLayout;
use sabre_sw::{crc64_ecma, crc64_ecma_scalar, VersionWord};

fn bench_stream_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_buffer");
    let mut sb = StreamBuffer::new(32);
    sb.arm(BlockAddr::from_index(1000), 32);
    for i in 0..16 {
        sb.mark_received(i);
    }
    g.bench_function("probe_hit", |b| {
        b.iter(|| sb.probe(black_box(BlockAddr::from_index(1010))))
    });
    g.bench_function("probe_miss", |b| {
        b.iter(|| sb.probe(black_box(BlockAddr::from_index(99))))
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("lightsabres_engine");
    // One full SABRe lifecycle: register, feed requests, issue, reply,
    // complete — the per-operation state-machine cost of the engine.
    g.bench_function("sabre_lifecycle_8_blocks", |b| {
        let mut engine = LightSabres::new(LightSabresConfig::default());
        let mut transfer = 0u32;
        let data = [0u8; BLOCK_BYTES];
        b.iter(|| {
            transfer += 1;
            let id = SabreId {
                src_node: 0,
                src_pipe: 0,
                transfer,
            };
            let slot = engine
                .register(id, Addr::new(0), 512, 0)
                .expect("free slot");
            for _ in 0..8 {
                engine.on_data_request(id).expect("in range");
            }
            while engine.next_issue().is_some() {}
            for i in 0..8 {
                black_box(engine.on_block_reply(slot, i, &data));
            }
        })
    });
    g.bench_function("invalidation_snoop_16_armed", |b| {
        let mut engine = LightSabres::new(LightSabresConfig::default());
        for t in 0..16u32 {
            let id = SabreId {
                src_node: 0,
                src_pipe: 0,
                transfer: t,
            };
            engine
                .register(id, Addr::new(t as u64 * 4096), 2048, 0)
                .unwrap();
        }
        b.iter(|| engine.on_invalidation(black_box(BlockAddr::from_index(17))))
    });
    g.finish();
}

fn bench_software_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("software_atomicity");
    let payload = vec![0xA5u8; 8192];
    let image = PerClLayout::encode(VersionWord::new(4), &payload);
    g.throughput(Throughput::Bytes(image.len() as u64));
    g.bench_function("percl_validate_strip_8k", |b| {
        b.iter(|| PerClLayout::validate_and_strip(black_box(&image), 8192).expect("clean"))
    });
    // Both CRC64 kernels over the same 8 KB buffer: the slice-by-8 hot
    // path against the byte-at-a-time reference it must outrun (the
    // committed BENCH_baseline.json pins both).
    g.throughput(Throughput::Bytes(8192));
    g.bench_function("crc64_slice8_8k", |b| {
        b.iter(|| crc64_ecma(black_box(&payload)))
    });
    g.bench_function("crc64_scalar_8k", |b| {
        b.iter(|| crc64_ecma_scalar(black_box(&payload)))
    });
    g.throughput(Throughput::Bytes(256));
    g.bench_function("crc64_slice8_256", |b| {
        b.iter(|| crc64_ecma(black_box(&payload[..256])))
    });
    g.bench_function("crc64_scalar_256", |b| {
        b.iter(|| crc64_ecma_scalar(black_box(&payload[..256])))
    });
    g.finish();
}

fn bench_sim_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_primitives");
    g.bench_function("event_queue_schedule_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1000u64 {
                    q.schedule(Time::from_ns(i * 7 % 501), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });
    // The calendar variant over the same schedule — the structure the
    // windowed loop actually runs on (35 ns buckets = fabric lookahead).
    // 1000 pending events push it well past the adaptive queue's heap
    // threshold, so this measures bucketed mode (plus one migration).
    g.bench_function("calendar_queue_schedule_pop_1k", |b| {
        b.iter_batched(
            || CalendarQueue::<u64>::new(Time::from_ns(35)),
            |mut q| {
                for i in 0..1000u64 {
                    q.schedule(Time::from_ns(i * 7 % 501), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });
    // The windowed interleave both queues see in the sharded loop: pop an
    // event, schedule a short-horizon follow-up — the steady state of a
    // busy node queue.
    g.bench_function("event_queue_windowed_churn_4k", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                q.schedule(Time::ZERO, 0u64);
                q
            },
            |mut q| {
                for i in 1..4096u64 {
                    let (t, e) = q.pop().expect("seeded");
                    black_box(e);
                    q.schedule(t + Time::from_ns(i * 13 % 97), i);
                }
            },
            BatchSize::SmallInput,
        )
    });
    // One in-flight event at a time: the mostly-idle pattern the adaptive
    // queue's plain-heap mode exists for (it never reaches the bucket
    // threshold, so this row tracks the event_queue variant's cost).
    g.bench_function("calendar_queue_windowed_churn_4k", |b| {
        b.iter_batched(
            || {
                let mut q = CalendarQueue::new(Time::from_ns(35));
                q.schedule(Time::ZERO, 0u64);
                q
            },
            |mut q| {
                for i in 1..4096u64 {
                    let (t, e) = q.pop().expect("seeded");
                    black_box(e);
                    q.schedule(t + Time::from_ns(i * 13 % 97), i);
                }
            },
            BatchSize::SmallInput,
        )
    });
    // The latency-histogram hot path: one record per successful op in
    // every workload, and one full 592-bucket merge per core at
    // aggregation time (the fig_tail percentile plumbing).
    g.bench_function("latency_hist_record_4k", |b| {
        b.iter_batched(
            LatencyHistogram::new,
            |mut h| {
                for i in 0..4096u64 {
                    h.record(100 + i * 37 % 100_000);
                }
                black_box(h.p99())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("latency_hist_merge", |b| {
        let mut a = LatencyHistogram::new();
        let mut other = LatencyHistogram::new();
        for i in 0..4096u64 {
            a.record(100 + i * 37 % 100_000);
            other.record(50 + i * 91 % 1_000_000);
        }
        b.iter(|| {
            a.merge(black_box(&other));
            black_box(a.count())
        })
    });
    g.bench_function("node_memory_block_rw", |b| {
        let mut mem = NodeMemory::new(1 << 20);
        let blk = [7u8; BLOCK_BYTES];
        b.iter(|| {
            mem.write_block(BlockAddr::from_index(17), &blk);
            black_box(mem.read_block(BlockAddr::from_index(17)))
        })
    });
    g.bench_function("llc_access", |b| {
        let mut llc = Llc::with_geometry(2 * 1024 * 1024, 16);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % 100_000;
            black_box(llc.access(BlockAddr::from_index(i)))
        })
    });
    g.finish();
}

/// A cluster with two busy readers and every other node permanently idle,
/// warmed past cold start — the regime the O(active-nodes) window
/// scheduler exists for.
fn quiet_cluster(cfg: ClusterConfig, targets: [(usize, usize); 2]) -> Cluster {
    let mut cluster = Cluster::new(cfg);
    for (reader, target) in targets {
        cluster.node_memory_mut(target).write_u64(Addr::new(0), 0);
        cluster.add_workload(
            reader,
            0,
            spec()
                .store(target)
                .payload(256)
                .mechanism(ReadMechanism::Sabre)
                .build(&[Addr::new(0)]),
        );
    }
    cluster.run_for(Time::from_us(5));
    cluster
}

fn bench_window_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_scheduler");
    // 30 of 32 mesh nodes never have an event: each fabric-lookahead
    // window must cost O(active) hint pops, not an O(nodes) queue scan.
    // One iteration advances 2 us of steady-state simulated time.
    let mut rack = {
        let mut cfg = ClusterConfig::with_nodes(32);
        cfg.memory_bytes = 1 << 20;
        quiet_cluster(cfg, [(0, 21), (13, 29)])
    };
    g.bench_function("quiet_rack_32n_advance_2us", |b| {
        b.iter(|| black_box(&mut rack).run_for(Time::from_us(2)))
    });
    // The datacenter-scale version: 254 of 256 nodes idle across 4 racks
    // of a radix-8 spine fabric, one reader rack-local and one crossing
    // the spine every packet.
    let mut dc = {
        let mut cfg = ScenarioBuilder::new()
            .nodes(256)
            .datacenter(4, 8, 2)
            .config()
            .clone();
        cfg.memory_bytes = 1 << 20;
        quiet_cluster(cfg, [(0, 130), (65, 70)])
    };
    g.bench_function("quiet_datacenter_256n_advance_2us", |b| {
        b.iter(|| black_box(&mut dc).run_for(Time::from_us(2)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_stream_buffer,
    bench_engine,
    bench_software_kernels,
    bench_sim_primitives,
    bench_window_scheduler
);
criterion_main!(benches);
