//! Criterion benches over scaled-down versions of each figure's
//! simulation: one bench per table/figure, measuring how fast the host
//! regenerates it. `cargo bench -p sabre-bench` therefore exercises every
//! experiment end to end, and its timing reports double as a regression
//! guard for simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sabre_bench::experiments as ex;
use sabre_bench::RunOpts;

// Serial (threads: 1) so the reported time measures simulator throughput,
// not the host's core count.
const Q: RunOpts = RunOpts {
    quick: true,
    threads: Some(1),
};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_breakdown", |b| {
        b.iter(|| black_box(ex::fig1::data(Q)))
    });
    g.bench_function("fig2_race", |b| {
        b.iter(|| black_box(ex::fig2_race::data(Q)))
    });
    g.bench_function("fig7a_latency", |b| {
        b.iter(|| black_box(ex::fig7a::data(Q)))
    });
    g.bench_function("fig7b_throughput", |b| {
        b.iter(|| black_box(ex::fig7b::data(Q)))
    });
    g.bench_function("fig8_conflicts", |b| {
        b.iter(|| black_box(ex::fig8::data(Q)))
    });
    g.bench_function("fig9a_farm_breakdown", |b| {
        b.iter(|| black_box(ex::fig9a::data(Q)))
    });
    g.bench_function("fig9b_farm_throughput", |b| {
        b.iter(|| black_box(ex::fig9b::data(Q)))
    });
    g.bench_function("fig10_local_reads", |b| {
        b.iter(|| black_box(ex::fig10::data(Q)))
    });
    g.bench_function("table1_design_space", |b| {
        b.iter(|| black_box(ex::table1::data(Q)))
    });
    g.finish();

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("depth_sweep", |b| {
        b.iter(|| black_box(ex::ablations::depth_sweep(Q)))
    });
    g.bench_function("concurrency_sweep", |b| {
        b.iter(|| black_box(ex::ablations::concurrency_sweep(Q)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
