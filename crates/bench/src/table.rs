//! Plain-text table rendering for experiment output.

use std::fmt;

/// A printable results table.
///
/// # Example
///
/// ```
/// use sabre_bench::Table;
///
/// let mut t = Table::new("Demo", &["size", "latency"]);
/// t.row(vec!["64".into(), "250.1".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("250.1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width does not match table header"
        );
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a nanosecond value compactly.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1000.0 {
        format!("{:.2}us", ns / 1000.0)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Formats a GB/s value.
pub fn fmt_gbps(g: f64) -> String {
    format!("{g:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_ns(250.4), "250ns");
        assert_eq!(fmt_ns(2500.0), "2.50us");
        assert_eq!(fmt_gbps(12.34), "12.3");
    }
}
