//! Regenerates fig_failover (availability under crash faults).
use sabre_bench::{experiments, RunOpts};

fn main() {
    print!("{}", experiments::fig_failover::run(RunOpts::from_args()));
}
