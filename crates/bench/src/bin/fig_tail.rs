//! Regenerates fig_tail (offered load × tail latency on the 8-node rack).
use sabre_bench::{experiments, RunOpts};

fn main() {
    print!("{}", experiments::fig_tail::run(RunOpts::from_args()));
}
