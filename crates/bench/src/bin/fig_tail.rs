//! Regenerates fig_tail (offered load × tail latency on the 8-node rack).
use sabre_bench::{experiments, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    print!("{}", experiments::fig_tail::run(opts));
    print!("{}", experiments::fig_tail::run_mix(opts));
}
