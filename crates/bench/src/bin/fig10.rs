//! Regenerates Fig. 10 of the paper. Pass `--quick` for a fast run.
fn main() {
    let opts = sabre_bench::RunOpts::from_args();
    print!("{}", sabre_bench::experiments::fig10::run(opts));
}
