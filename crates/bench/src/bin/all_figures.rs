//! Regenerates every table and figure of the paper (plus the beyond-paper
//! fig_scale sweep) in one run, printing per-figure and total host
//! wall-clock to stderr (stdout stays clean for golden-output diffing —
//! `tests/golden/figures.txt` at the repo root pins the `--quick` output).
//! Pass `--quick` for a fast smoke run and `--threads N` (or
//! `SABRES_THREADS`) to cap sweep parallelism.
use std::time::Instant;

use sabre_bench::{render_all_figures, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let total = Instant::now();
    let out = render_all_figures(opts, |name, wall| {
        eprintln!("# {name}: {:.2}s wall", wall.as_secs_f64());
    });
    print!("{out}");
    eprintln!("# total: {:.2}s wall", total.elapsed().as_secs_f64());
}
