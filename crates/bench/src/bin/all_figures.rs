//! Regenerates every table and figure of the paper in one run, printing
//! per-figure and total host wall-clock to stderr (stdout stays clean for
//! golden-output diffing). Pass `--quick` for a fast smoke run and
//! `--threads N` (or `SABRES_THREADS`) to cap sweep parallelism.
use std::time::Instant;

use sabre_bench::experiments as ex;
use sabre_bench::{RunOpts, Table};

fn timed(name: &str, f: impl FnOnce() -> Vec<Table>) {
    let t0 = Instant::now();
    let tables = f();
    let wall = t0.elapsed();
    for t in tables {
        print!("{t}");
    }
    eprintln!("# {name}: {:.2}s wall", wall.as_secs_f64());
}

fn main() {
    let opts = RunOpts::from_args();
    let total = Instant::now();
    timed("table2", || vec![ex::table2::run(opts)]);
    timed("table1", || vec![ex::table1::run(opts)]);
    timed("fig1", || vec![ex::fig1::run(opts)]);
    timed("fig2_race", || vec![ex::fig2_race::run(opts)]);
    timed("fig7a", || vec![ex::fig7a::run(opts)]);
    timed("fig7b", || vec![ex::fig7b::run(opts)]);
    timed("fig8", || vec![ex::fig8::run(opts)]);
    timed("fig9a", || vec![ex::fig9a::run(opts)]);
    timed("fig9b", || vec![ex::fig9b::run(opts)]);
    timed("fig10", || vec![ex::fig10::run(opts)]);
    timed("ablations", || ex::ablations::run(opts));
    eprintln!("# total: {:.2}s wall", total.elapsed().as_secs_f64());
}
