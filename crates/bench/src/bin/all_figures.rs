//! Regenerates every table and figure of the paper in one run.
//! Pass `--quick` for a fast smoke run.
use sabre_bench::experiments as ex;

fn main() {
    let opts = sabre_bench::RunOpts::from_args();
    print!("{}", ex::table2::run(opts));
    print!("{}", ex::table1::run(opts));
    print!("{}", ex::fig1::run(opts));
    print!("{}", ex::fig2_race::run(opts));
    print!("{}", ex::fig7a::run(opts));
    print!("{}", ex::fig7b::run(opts));
    print!("{}", ex::fig8::run(opts));
    print!("{}", ex::fig9a::run(opts));
    print!("{}", ex::fig9b::run(opts));
    print!("{}", ex::fig10::run(opts));
    for t in ex::ablations::run(opts) {
        print!("{t}");
    }
}
