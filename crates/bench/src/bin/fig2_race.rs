//! Regenerates Fig. 2_race of the paper. Pass `--quick` for a fast run.
fn main() {
    let opts = sabre_bench::RunOpts::from_args();
    print!("{}", sabre_bench::experiments::fig2_race::run(opts));
}
