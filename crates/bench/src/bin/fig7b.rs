//! Regenerates Fig. 7b of the paper. Pass `--quick` for a fast run.
fn main() {
    let opts = sabre_bench::RunOpts::from_args();
    print!("{}", sabre_bench::experiments::fig7b::run(opts));
}
