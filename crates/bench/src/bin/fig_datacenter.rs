//! Regenerates fig_datacenter (two-level spine scaling: racks x mechanism
//! x placement, with the cross-spine hop share).
use sabre_bench::{experiments, RunOpts};

fn main() {
    print!("{}", experiments::fig_datacenter::run(RunOpts::from_args()));
}
