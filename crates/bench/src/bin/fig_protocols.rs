//! Regenerates fig_protocols (read protocols head-to-head under racing
//! writers on the 8-node rack).
use sabre_bench::{experiments, RunOpts};

fn main() {
    print!("{}", experiments::fig_protocols::run(RunOpts::from_args()));
}
