//! Regenerates the design-choice ablations. Pass `--quick` for a fast run.
fn main() {
    let opts = sabre_bench::RunOpts::from_args();
    for t in sabre_bench::experiments::ablations::run(opts) {
        print!("{t}");
    }
}
