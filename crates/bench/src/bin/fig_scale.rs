//! Regenerates fig_scale (rack scaling: node count × read mechanism).
use sabre_bench::{experiments, RunOpts};

fn main() {
    print!("{}", experiments::fig_scale::run(RunOpts::from_args()));
}
