//! Regenerates fig_placement (fabric × placement policy × role skew).
use sabre_bench::{experiments, RunOpts};

fn main() {
    print!("{}", experiments::fig_placement::run(RunOpts::from_args()));
}
