//! Regenerates Fig. 8 of the paper. Pass `--quick` for a fast run.
fn main() {
    let opts = sabre_bench::RunOpts::from_args();
    print!("{}", sabre_bench::experiments::fig8::run(opts));
}
