//! Regenerates fig_recovery (whole-leaf outage, replica catch-up, and the
//! staleness window on the 8-node rack).
use sabre_bench::{experiments, RunOpts};

fn main() {
    print!("{}", experiments::fig_recovery::run(RunOpts::from_args()));
}
