//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§7), plus the ablations its design sections motivate.
//!
//! Each experiment lives in [`experiments`] as a `data()` function returning
//! structured results (consumed by the integration tests, which assert the
//! paper's *shape*: who wins, by roughly what factor, where crossovers
//! fall) and a `run()` function rendering the printable table. One binary
//! per experiment regenerates it:
//!
//! ```text
//! cargo run --release -p sabre-bench --bin fig7a [-- --quick]
//! cargo run --release -p sabre-bench --bin all_figures
//! ```
//!
//! `--quick` shrinks iteration counts and simulated durations (used by the
//! smoke tests); full runs are the EXPERIMENTS.md numbers.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Global run options for experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Shrink iteration counts / durations for smoke testing.
    pub quick: bool,
}

impl RunOpts {
    /// Parses `--quick` from the process arguments (any position).
    pub fn from_args() -> Self {
        RunOpts {
            quick: std::env::args().any(|a| a == "--quick"),
        }
    }

    /// Full-fidelity options.
    pub fn full() -> Self {
        RunOpts { quick: false }
    }

    /// Quick (smoke-test) options.
    pub fn quick() -> Self {
        RunOpts { quick: true }
    }

    /// Picks between a full and a quick value.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}
