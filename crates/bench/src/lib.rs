//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§7), plus the ablations its design sections motivate.
//!
//! Each experiment lives in [`experiments`] as a `data()` function returning
//! structured results (consumed by the integration tests, which assert the
//! paper's *shape*: who wins, by roughly what factor, where crossovers
//! fall) and a `run()` function rendering the printable table. Experiments
//! are built with [`sabre_rack::ScenarioBuilder`] and executed with
//! [`sabre_rack::Sweep`], so independent sweep points run in parallel
//! across OS threads. One binary per experiment regenerates it:
//!
//! ```text
//! cargo run --release -p sabre-bench --bin fig7a [-- --quick] [-- --threads N]
//! cargo run --release -p sabre-bench --bin all_figures
//! ```
//!
//! `--quick` shrinks iteration counts and simulated durations (used by the
//! smoke tests); full runs are the EXPERIMENTS.md numbers. `--threads N`
//! (or the `SABRES_THREADS` environment variable) caps sweep parallelism;
//! the default is the machine's available parallelism. Results are
//! deterministic regardless of the thread count.

pub mod experiments;
pub mod table;

pub use table::Table;

use sabre_rack::Sweep;

/// A figure runner: options in, printable tables out.
pub type FigureFn = fn(RunOpts) -> Vec<Table>;

/// Every shipped figure/table, in presentation order: `(name, runner)`.
/// The `all_figures` binary, the golden-output regression test and the CI
/// smoke job all iterate this one list, so a new experiment registered
/// here is automatically printed, golden-diffed and smoke-tested.
pub const ALL_FIGURES: &[(&str, FigureFn)] = &[
    ("table2", |o| vec![experiments::table2::run(o)]),
    ("table1", |o| vec![experiments::table1::run(o)]),
    ("fig1", |o| vec![experiments::fig1::run(o)]),
    ("fig2_race", |o| vec![experiments::fig2_race::run(o)]),
    ("fig7a", |o| vec![experiments::fig7a::run(o)]),
    ("fig7b", |o| vec![experiments::fig7b::run(o)]),
    ("fig8", |o| vec![experiments::fig8::run(o)]),
    ("fig9a", |o| vec![experiments::fig9a::run(o)]),
    ("fig9b", |o| vec![experiments::fig9b::run(o)]),
    ("fig10", |o| vec![experiments::fig10::run(o)]),
    ("ablations", experiments::ablations::run),
    ("fig_scale", |o| vec![experiments::fig_scale::run(o)]),
    ("fig_placement", |o| {
        vec![experiments::fig_placement::run(o)]
    }),
    ("fig_tail", |o| {
        vec![
            experiments::fig_tail::run(o),
            experiments::fig_tail::run_mix(o),
        ]
    }),
    ("fig_failover", |o| vec![experiments::fig_failover::run(o)]),
    ("fig_protocols", |o| {
        vec![experiments::fig_protocols::run(o)]
    }),
    ("fig_recovery", |o| vec![experiments::fig_recovery::run(o)]),
];

/// Renders every table and figure into one string (the golden-diffable
/// stdout of `all_figures`), reporting each figure's host wall-clock to
/// `timing` so callers can route timing noise away from the diffed output.
pub fn render_all_figures(
    opts: RunOpts,
    mut timing: impl FnMut(&str, std::time::Duration),
) -> String {
    let mut out = String::new();
    for (name, run) in ALL_FIGURES {
        let t0 = std::time::Instant::now();
        let tables = run(opts);
        timing(name, t0.elapsed());
        for t in tables {
            out.push_str(&t.to_string());
        }
    }
    out
}

/// Global run options for experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Shrink iteration counts / durations for smoke testing.
    pub quick: bool,
    /// Cap on sweep worker threads (`None`: `SABRES_THREADS`, then the
    /// machine's available parallelism).
    pub threads: Option<usize>,
}

impl RunOpts {
    /// Parses `--quick` and `--threads N` from the process arguments (any
    /// position).
    ///
    /// # Panics
    ///
    /// Panics if `--threads` is present without a valid integer value — an
    /// explicit parallelism cap must never be silently dropped.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let threads = args.iter().position(|a| a == "--threads").map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    panic!(
                        "--threads needs an integer value, got {:?}",
                        args.get(i + 1)
                    )
                })
        });
        RunOpts {
            quick: args.iter().any(|a| a == "--quick"),
            threads,
        }
    }

    /// Full-fidelity options.
    pub fn full() -> Self {
        RunOpts {
            quick: false,
            threads: None,
        }
    }

    /// Quick (smoke-test) options.
    pub fn quick() -> Self {
        RunOpts {
            quick: true,
            threads: None,
        }
    }

    /// Picks between a full and a quick value.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// A [`Sweep`] over `points` honoring this run's thread cap.
    pub fn sweep<P: Send + Sync>(&self, points: impl IntoIterator<Item = P>) -> Sweep<P> {
        Sweep::over(points).threads_opt(self.threads)
    }
}
