//! fig_protocols: head-to-head of the alternative read protocols.
//!
//! The Table-1 workload (1 KB objects) on the 8-node rack, under open-loop
//! Poisson readers *racing live writers on every store shard*, compares the
//! four established read mechanisms against the two alternative protocols
//! this repo adds beyond the paper:
//!
//! * the **wait-free multi-version register** (Ianni et al.): the store
//!   keeps four version slots per object and a publish word; a server-side
//!   capture snapshots the published slot, so a read is never torn *and
//!   never aborts* — the retries column is zero by construction, bought
//!   with 4× the store footprint and one header block on the wire;
//! * **Oh-RAM's one-and-a-half-round read** (Hadjistasi et al.): the store
//!   serves a consistent clean-object snapshot under a server-side capture
//!   (no locking), the reader delivers immediately and relays a
//!   fire-and-forget confirm write — ~1.5 rounds on the fabric against the
//!   effective two rounds a SABRe's block streams plus validation cost.
//!
//! Expected shape: the wait-free register pins retries at exactly zero at
//! every load and skew (the abort-based mechanisms rack up retries under
//! the racing writers, worst under Zipf contention); Oh-RAM's mean
//! hops-per-op sits well below SABRe's (fewer, larger packets beat the
//! paper protocol's per-block streaming) — both pinned by
//! `tests/experiment_shapes.rs`.

use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_rack::workloads::{Writer, WriterLayout};
use sabre_rack::{spec, Arrivals, ReadMechanism, ScenarioBuilder};
use sabre_sim::Time;

use crate::experiments::fig_scale::{CORES_PER_READER_NODE, OBJECTS_PER_SHARD, PAYLOAD};
use crate::experiments::fig_tail::{Skew, NODES};
use crate::{RunOpts, Table};

/// Per-core offered loads swept (ops/us): light and moderate. The
/// saturating setting is omitted — under racing writers the software
/// mechanisms' retry loops never drain the queue there, which measures
/// the backlog policy rather than the protocol.
pub const LOADS: [f64; 2] = [0.2, 0.8];

/// Objects each racing writer owns (CREW partition of a 128-object
/// shard: 4 writers per store node).
const OBJECTS_PER_WRITER: usize = 32;

/// The read protocols compared head-to-head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Plain one-sided reads, no atomicity (the floor).
    Raw,
    /// Hardware SABRes (destination OCC, the paper protocol).
    Sabre,
    /// FaRM per-cache-line versions, validated on the reader CPU.
    PerCl,
    /// Pilaf checksums, validated on the reader CPU.
    Checksum,
    /// The wait-free multi-version register (server-side slot capture).
    WfRegister,
    /// Oh-RAM's one-and-a-half-round read (server-side clean capture).
    OhRam,
}

impl Protocol {
    /// All protocols in presentation order: the established four first,
    /// the alternatives last.
    pub const ALL: [Protocol; 6] = [
        Protocol::Raw,
        Protocol::Sabre,
        Protocol::PerCl,
        Protocol::Checksum,
        Protocol::WfRegister,
        Protocol::OhRam,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Raw => "raw read",
            Protocol::Sabre => "SABRe",
            Protocol::PerCl => "FaRM perCL",
            Protocol::Checksum => "Pilaf CRC64",
            Protocol::WfRegister => "wait-free reg",
            Protocol::OhRam => "Oh-RAM 1.5rt",
        }
    }

    /// The store layout this protocol reads.
    pub fn layout(self) -> StoreLayout {
        match self {
            Protocol::Raw | Protocol::Sabre | Protocol::OhRam => StoreLayout::Clean,
            Protocol::PerCl => StoreLayout::PerCl,
            Protocol::Checksum => StoreLayout::Checksum,
            Protocol::WfRegister => StoreLayout::WfRegister,
        }
    }

    /// The matching reader mechanism.
    pub fn read_mechanism(self) -> ReadMechanism {
        match self {
            Protocol::Raw => ReadMechanism::Raw,
            Protocol::Sabre => ReadMechanism::Sabre,
            Protocol::PerCl => ReadMechanism::PerClValidate { payload: PAYLOAD },
            Protocol::Checksum => ReadMechanism::ChecksumValidate { payload: PAYLOAD },
            Protocol::WfRegister => ReadMechanism::WfRegister { payload: PAYLOAD },
            Protocol::OhRam => ReadMechanism::OhRam { payload: PAYLOAD },
        }
    }

    /// The writer protocol maintaining the layout under the readers.
    pub fn writer_layout(self) -> WriterLayout {
        match self.layout() {
            StoreLayout::Clean => WriterLayout::Clean,
            StoreLayout::PerCl => WriterLayout::PerCl,
            StoreLayout::Checksum => WriterLayout::Checksum,
            StoreLayout::WfRegister => WriterLayout::WfRegister,
        }
    }
}

/// One sweep point's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The read protocol.
    pub proto: Protocol,
    /// The key-popularity setting.
    pub skew: Skew,
    /// Offered load per reader core (ops/us).
    pub load: f64,
    /// Successful operations across the rack.
    pub ops: u64,
    /// Median end-to-end latency (ns), queueing included.
    pub p50_ns: u64,
    /// 99th-percentile latency (ns).
    pub p99_ns: u64,
    /// Mean routed fabric hops per successful operation (requests,
    /// replies, and Oh-RAM confirm writes all counted).
    pub hops_per_op: f64,
    /// Atomicity retries across the rack (zero for the wait-free
    /// register and Oh-RAM, by construction).
    pub retries: u64,
}

/// Measures one `(protocol, skew, load)` point with explicit event-loop
/// shard and worker-thread knobs. Public so the equivalence tests can
/// certify that *this* construction — not a copy of it — is bit-identical
/// at every shards × threads setting.
pub fn measure_threaded(
    proto: Protocol,
    skew: Skew,
    load: f64,
    iters: u64,
    shards: usize,
    threads: Option<usize>,
) -> Point {
    let builder = ScenarioBuilder::new()
        .nodes(NODES)
        .shards(shards)
        .configure(|cfg| cfg.threads = threads);
    let topo = builder.config().topology.clone();
    let (builder, store_shards) = builder.sharded_store(
        topo.store_nodes(),
        proto.layout(),
        PAYLOAD,
        OBJECTS_PER_SHARD,
    );
    let readers = topo.reader_nodes();
    let placements: Vec<(usize, usize)> = readers
        .iter()
        .flat_map(|&node| (0..CORES_PER_READER_NODE).map(move |core| (node, core)))
        .collect();
    let reader_index: std::collections::HashMap<usize, usize> = readers
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, i))
        .collect();
    let shards_for_readers = store_shards.clone();
    let mut scenario = builder.readers_grid_spec(placements, move |node, _core, _targets| {
        let shard = &shards_for_readers[reader_index[&node] % shards_for_readers.len()];
        spec()
            .store(shard.node() as usize)
            .payload(PAYLOAD)
            .mechanism(proto.read_mechanism())
            .wire(shard.wire_bytes() as u32)
            .objects(shard.object_addrs())
            .arrivals(Arrivals::Poisson { ops_per_us: load })
            .popularity(skew.popularity())
    });
    // Live writers on every shard (CREW partition) so the abort columns
    // measure real conflicts, not an idle store.
    for shard in &store_shards {
        for (w, entries) in shard
            .object_entries()
            .chunks(OBJECTS_PER_WRITER)
            .enumerate()
        {
            let writer = Writer::new(entries.to_vec(), PAYLOAD, proto.writer_layout(), Time::ZERO);
            scenario = scenario.workload(shard.node() as usize, w, Box::new(writer));
        }
    }
    let report = scenario.run_for(Time::from_us(20 * iters));
    let m = report.rack_metrics();
    assert!(m.ops > 0, "{proto:?}/{skew:?}@{load}: no ops completed");
    if proto == Protocol::WfRegister {
        assert_eq!(
            m.retries, 0,
            "the wait-free register aborted — it is wait-free by construction"
        );
    }
    let (p50_ns, p99_ns, _) = report.latency_percentiles().expect("ops recorded");
    let fabric = report.cluster().fabric();
    let total_hops: u64 = (0..NODES).map(|n| fabric.node_hops_sent(n)).sum();
    Point {
        proto,
        skew,
        load,
        ops: m.ops,
        p50_ns,
        p99_ns,
        hops_per_op: total_hops as f64 / m.ops as f64,
        retries: m.retries,
    }
}

/// One point with the shipped configuration: one shard per node.
pub fn measure(proto: Protocol, skew: Skew, load: f64, iters: u64) -> Point {
    measure_threaded(proto, skew, load, iters, NODES, None)
}

/// Runs the full sweep: protocol × skew × offered load.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(15, 3);
    let points: Vec<(Protocol, Skew, f64)> = Protocol::ALL
        .iter()
        .flat_map(|&p| {
            Skew::ALL
                .iter()
                .flat_map(move |&s| LOADS.iter().map(move |&l| (p, s, l)))
        })
        .collect();
    opts.sweep(points)
        .map(|&(proto, skew, load)| measure_threaded(proto, skew, load, iters, NODES, opts.threads))
}

/// Renders the protocol head-to-head as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "fig_protocols — read protocols head-to-head under racing writers (1 KB objects, 8-node rack)",
        &[
            "protocol",
            "skew",
            "load (ops/us/core)",
            "ops",
            "p50",
            "p99",
            "hops/op",
            "retries",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.proto.label().to_string(),
            p.skew.label().to_string(),
            format!("{:.1}", p.load),
            p.ops.to_string(),
            format!("{} ns", p.p50_ns),
            format!("{} ns", p.p99_ns),
            format!("{:.2}", p.hops_per_op),
            p.retries.to_string(),
        ]);
    }
    t
}
