//! Fig. 9a: FaRM key-value store, end-to-end latency breakdown — per-CL
//! versions baseline vs. LightSABRes.
//!
//! Expected shape (paper): SABRes cut end-to-end latency at every size —
//! ≈35% at 128 B (mostly from the leaner framework: no stripping code, no
//! intermediate buffering, ≈7% smaller instruction footprint) up to ≈52%
//! at 8 KB (mostly from deleting the strip kernel). The SABRe variant's
//! *application* component is slightly larger: the object lands in the LLC
//! (zero-copy DMA) instead of being pulled into the L1d by the strip.

use sabre_farm::{FarmCosts, FarmReader, KvStore, ScenarioStoreExt, StoreLayout};
use sabre_rack::{Phase, ScenarioBuilder};
use sabre_sim::Time;

use super::OBJECT_SIZES;
use crate::table::fmt_ns;
use crate::{RunOpts, Table};

/// Per-variant breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    /// soNUMA transfer (ns).
    pub transfer_ns: f64,
    /// FaRM system (lookup, buffers, bookkeeping) (ns).
    pub framework_ns: f64,
    /// Application consume (ns).
    pub app_ns: f64,
    /// Version stripping / atomicity check (ns).
    pub strip_ns: f64,
    /// End-to-end mean (ns).
    pub e2e_ns: f64,
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Object payload size.
    pub size: u32,
    /// The per-CL-versions baseline.
    pub baseline: Breakdown,
    /// The LightSABRes variant.
    pub sabre: Breakdown,
}

impl Point {
    /// Latency improvement of SABRes over the baseline.
    pub fn improvement(&self) -> f64 {
        1.0 - self.sabre.e2e_ns / self.baseline.e2e_ns
    }
}

fn measure(size: u32, layout: StoreLayout, iters: u64) -> Breakdown {
    let (scenario, store) = ScenarioBuilder::new().store(1, layout, size, None);
    let report = scenario
        .reader(0, 0, move |_| {
            let kv = KvStore::new(store, 100_000);
            Box::new(FarmReader::endless(kv, FarmCosts::default()))
        })
        .run_for(Time::from_us(12 * iters));
    let m = report.core(0, 0);
    assert!(m.ops >= iters / 2, "too few lookups: {}", m.ops);
    Breakdown {
        transfer_ns: m.phase_mean_ns(Phase::Transfer).unwrap_or(0.0),
        framework_ns: m.phase_mean_ns(Phase::Framework).unwrap_or(0.0),
        app_ns: m.phase_mean_ns(Phase::App).unwrap_or(0.0),
        strip_ns: m.phase_mean_ns(Phase::Strip).unwrap_or(0.0),
        e2e_ns: m.latency.mean().expect("ops completed"),
    }
}

/// Runs the sweep.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(100, 10);
    opts.sweep(OBJECT_SIZES).map(|&size| Point {
        size,
        baseline: measure(size, StoreLayout::PerCl, iters),
        sabre: measure(size, StoreLayout::Clean, iters),
    })
}

/// Renders the figure as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Fig. 9a — FaRM KV store E2E latency breakdown: baseline (perCL) vs LightSABRes",
        &[
            "size(B)",
            "variant",
            "transfer",
            "FaRM system",
            "app",
            "stripping",
            "E2E",
            "improvement",
        ],
    );
    for p in data(opts) {
        for (name, b, imp) in [
            ("perCL", p.baseline, String::new()),
            ("SABRe", p.sabre, format!("{:.0}%", p.improvement() * 100.0)),
        ] {
            t.row(vec![
                p.size.to_string(),
                name.to_string(),
                fmt_ns(b.transfer_ns),
                fmt_ns(b.framework_ns),
                fmt_ns(b.app_ns),
                fmt_ns(b.strip_ns),
                fmt_ns(b.e2e_ns),
                imp,
            ]);
        }
    }
    t
}
