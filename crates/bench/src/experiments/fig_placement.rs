//! fig_placement: fabric geometry × placement policy × role skew.
//!
//! The second beyond-paper scenario family. `fig_scale` showed the 8-node
//! mesh going multi-hop; this experiment asks what that costs and what
//! placement buys back. The Table-1 workload (1 KB clean-layout objects,
//! uncontended SABRe readers) runs on a fixed 8-node rack while three axes
//! sweep:
//!
//! * **fabric** — the rack-level 2D mesh against two-leaf fat trees at 2:1
//!   and 4:1 uplink oversubscription;
//! * **placement** — the historical round-robin reader→shard pairing
//!   against [`PlacementPolicy::NearestShard`];
//! * **role skew** — store:reader splits of 1:1, 1:3 and 1:7
//!   ([`Topology::skewed`]), so the shard count (and therefore the room
//!   placement has to maneuver) shrinks as the read side grows.
//!
//! Expected shape: nearest-shard placement never routes a packet farther
//! than round-robin (pinned by the `placement_props` proptests), and on
//! the geometry-sensitive fabrics — the multi-hop mesh and the
//! oversubscribed fat trees, where cross-leaf packets queue on the uplink
//! — it shows up as a strictly lower mean reader hop count and higher
//! goodput. With a single shard (1:7) the policies coincide: placement
//! has nothing left to choose.

use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_rack::{spec, PlacementPolicy, ReadMechanism, ScenarioBuilder, Topology};
use sabre_sim::Time;

use crate::table::{fmt_gbps, fmt_ns};
use crate::{RunOpts, Table};

/// The object payload (the Table-1 comparison object).
pub const PAYLOAD: u32 = 1024;

/// Reader cores per reader node (a slice of the chip, so sweep points stay
/// cheap to simulate).
pub const CORES_PER_READER_NODE: usize = 2;

/// Objects per store shard.
pub const OBJECTS_PER_SHARD: u64 = 128;

/// Rack size: every sweep point is an 8-node rack.
pub const NODES: usize = 8;

/// The fabric families swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricKind {
    /// The rack-level 2D mesh (`fig_scale`'s 8-node fabric: 3 columns).
    Mesh,
    /// Two 4-node leaves, uplinks oversubscribed 2:1.
    FatTree2,
    /// Two 4-node leaves, uplinks oversubscribed 4:1.
    FatTree4,
}

impl FabricKind {
    /// All fabrics in presentation order.
    pub const ALL: [FabricKind; 3] = [FabricKind::Mesh, FabricKind::FatTree2, FabricKind::FatTree4];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            FabricKind::Mesh => "mesh 3x3",
            FabricKind::FatTree2 => "fat-tree 2:1",
            FabricKind::FatTree4 => "fat-tree 4:1",
        }
    }

    fn oversubscription(self) -> Option<u8> {
        match self {
            FabricKind::Mesh => None,
            FabricKind::FatTree2 => Some(2),
            FabricKind::FatTree4 => Some(4),
        }
    }
}

/// The reader→shard policies swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The historical default pairing.
    RoundRobin,
    /// Geometry-aware pairing ([`PlacementPolicy::NearestShard`]).
    Nearest,
}

impl Placement {
    /// Both policies in presentation order.
    pub const ALL: [Placement; 2] = [Placement::RoundRobin, Placement::Nearest];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::Nearest => "nearest",
        }
    }

    /// The rack-level policy.
    pub fn policy(self) -> PlacementPolicy {
        match self {
            Placement::RoundRobin => PlacementPolicy::RoundRobin,
            Placement::Nearest => PlacementPolicy::NearestShard,
        }
    }
}

/// The store:reader splits swept, as `(stores, readers_per_store)` — all
/// three fill the 8-node rack.
pub const SPLITS: [(usize, usize); 3] = [(4, 1), (2, 3), (1, 7)];

/// Table label of a split.
pub fn split_label((stores, readers_per_store): (usize, usize)) -> String {
    format!("{stores}s:{}r", stores * readers_per_store)
}

/// One sweep point's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The fabric family.
    pub fabric: FabricKind,
    /// The reader→shard policy.
    pub placement: Placement,
    /// The `(stores, readers_per_store)` split.
    pub split: (usize, usize),
    /// Mean end-to-end latency over every reader core (ns).
    pub latency_ns: f64,
    /// Aggregate rack goodput (GB/s).
    pub total_gbps: f64,
    /// Mean routed hops per packet sent by reader nodes (uplink queueing
    /// penalties included) — the placement-quality metric.
    pub reader_hops: f64,
}

/// Measures one sweep point with explicit event-loop shard and
/// worker-thread knobs. Public so the equivalence tests can certify that
/// *this* construction — not a copy of it — is bit-identical at every
/// `shards` × `threads` setting.
pub fn measure_threaded(
    fabric: FabricKind,
    placement: Placement,
    split: (usize, usize),
    iters: u64,
    shards: usize,
    threads: Option<usize>,
) -> Point {
    let (stores, readers_per_store) = split;
    let mut builder = ScenarioBuilder::new()
        .topology(Topology::skewed(stores, readers_per_store).with_placement(placement.policy()))
        .shards(shards)
        .configure(|cfg| cfg.threads = threads);
    if let Some(oversubscription) = fabric.oversubscription() {
        builder = builder.fat_tree(4, oversubscription);
    }
    let cfg = builder.config().clone();
    assert_eq!(cfg.nodes, NODES, "every split must fill the 8-node rack");
    let topo = cfg.topology.clone();
    let store_nodes = topo.store_nodes();
    let (builder, store_shards) = builder.sharded_store(
        store_nodes.clone(),
        StoreLayout::Clean,
        PAYLOAD,
        OBJECTS_PER_SHARD,
    );
    let readers = topo.reader_nodes();
    let placements: Vec<(usize, usize)> = readers
        .iter()
        .flat_map(|&node| (0..CORES_PER_READER_NODE).map(move |core| (node, core)))
        .collect();
    let reader_index: std::collections::HashMap<usize, usize> = readers
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, i))
        .collect();
    let report = builder
        .readers_grid_spec(placements, move |node, _core, _targets| {
            // The policy picks a store *node*; shard handles are in
            // store-node order.
            let store = cfg.store_for_reader(reader_index[&node]);
            let shard_pos = store_nodes
                .iter()
                .position(|&s| s == store)
                .expect("placement returns a store node");
            let shard = &store_shards[shard_pos];
            spec()
                .store(shard.node() as usize)
                .payload(PAYLOAD)
                .mechanism(ReadMechanism::Sabre)
                .wire(shard.slot_bytes() as u32)
                .objects(shard.object_addrs())
        })
        .run_for(Time::from_us(20 * iters));

    let mut latencies = Vec::new();
    for &node in &readers {
        for core in 0..CORES_PER_READER_NODE {
            let m = report.core(node, core);
            assert!(m.ops > 0, "reader {node}.{core} completed no ops");
            latencies.push(m.latency.mean().expect("ops completed"));
        }
    }
    let fabric_state = report.cluster().fabric();
    let (mut hops, mut packets) = (0u64, 0u64);
    for &node in &readers {
        hops += fabric_state.node_hops_sent(node);
        packets += fabric_state.node_packets_sent(node);
    }
    Point {
        fabric,
        placement,
        split,
        latency_ns: latencies.iter().sum::<f64>() / latencies.len() as f64,
        total_gbps: report.total_gbps(),
        reader_hops: hops as f64 / packets.max(1) as f64,
    }
}

/// [`measure_threaded`] with the shipped configuration: one event-loop
/// shard per node, serial worker resolution.
pub fn measure(
    fabric: FabricKind,
    placement: Placement,
    split: (usize, usize),
    iters: u64,
) -> Point {
    measure_threaded(fabric, placement, split, iters, NODES, None)
}

/// Runs the full sweep: fabric × placement × split.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(25, 3);
    let points: Vec<(FabricKind, Placement, (usize, usize))> = FabricKind::ALL
        .iter()
        .flat_map(|&f| {
            Placement::ALL
                .iter()
                .flat_map(move |&p| SPLITS.iter().map(move |&s| (f, p, s)))
        })
        .collect();
    opts.sweep(points).map(|&(fabric, placement, split)| {
        measure_threaded(fabric, placement, split, iters, NODES, opts.threads)
    })
}

/// Renders the placement sweep as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "fig_placement — fabric x placement x role skew (8 nodes, 1 KB SABRes)",
        &[
            "fabric",
            "placement",
            "split",
            "mean latency",
            "rack goodput",
            "reader hops",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.fabric.label().to_string(),
            p.placement.label().to_string(),
            split_label(p.split),
            fmt_ns(p.latency_ns),
            fmt_gbps(p.total_gbps),
            format!("{:.2}", p.reader_hops),
        ]);
    }
    t
}
