//! Ablations over the design decisions §3/§4 argue for:
//!
//! 1. **Stream-buffer depth** (DG1): the depth must cover the
//!    bandwidth-delay product (§4.1's Little's-law sizing, = 32 at
//!    20 GBps × 90 ns) or single-SABRe latency suffers inside the window
//!    of vulnerability.
//! 2. **Stream-buffer count** (DG2): enough concurrent SABRes must fit to
//!    saturate bandwidth with small objects.
//! 3. **Speculation** (DG1): the no-speculation strawman's penalty across
//!    sizes.
//! 4. **CC mode**: destination locking vs destination OCC, uncontended.
//! 5. **Abort policy** (§5.1): software-controlled retry — immediate vs
//!    backoff under heavy conflicts.

use sabre_core::CcMode;
use sabre_farm::StoreLayout;
use sabre_rack::workloads::{AsyncReader, SyncReader, Writer, WriterLayout};
use sabre_rack::{Cluster, ClusterConfig, ReadMechanism};
use sabre_sim::Time;

use super::common::{build_store, raw_targets};
use crate::table::{fmt_gbps, fmt_ns};
use crate::{RunOpts, Table};

/// Ablation 1: single-SABRe latency of an 8 KB object vs stream-buffer
/// depth. Returns `(depth, mean latency ns)`.
pub fn depth_sweep(opts: RunOpts) -> Vec<(u32, f64)> {
    let iters = opts.pick(60, 8);
    [1u32, 2, 4, 8, 16, 32, 64]
        .iter()
        .map(|&depth| {
            let mut cfg = ClusterConfig::default();
            cfg.lightsabres.depth = depth;
            let mut cluster = Cluster::new(cfg);
            let targets = raw_targets(&mut cluster, 1, 8192);
            cluster.add_workload(
                0,
                0,
                Box::new(SyncReader::endless(1, targets, 8192, ReadMechanism::Sabre)),
            );
            cluster.run_for(Time::from_us(15 * iters));
            let m = cluster.metrics(0, 0);
            (depth, m.latency.mean().expect("ops completed"))
        })
        .collect()
}

/// Ablation 2: aggregate throughput of 16 async readers of two-block
/// (128 B) SABRes vs the number of stream buffers (= max concurrent
/// SABRes per R2P2). Returns `(buffers, GB/s)`.
pub fn concurrency_sweep(opts: RunOpts) -> Vec<(usize, f64)> {
    let duration = Time::from_us(opts.pick(150, 25));
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&buffers| {
            let mut cfg = ClusterConfig::default();
            cfg.lightsabres.stream_buffers = buffers;
            let mut cluster = Cluster::new(cfg);
            let targets = raw_targets(&mut cluster, 1, 128);
            for core in 0..cluster.config().cores_per_node {
                cluster.add_workload(
                    0,
                    core,
                    Box::new(AsyncReader::new(
                        1,
                        targets.clone(),
                        128,
                        ReadMechanism::Sabre,
                        8,
                    )),
                );
            }
            cluster.run_for(duration);
            (
                buffers,
                cluster.node_metrics(0).bytes as f64 / duration.as_ns(),
            )
        })
        .collect()
}

/// Ablation 4: destination locking vs destination OCC, uncontended.
/// Returns `(size, occ ns, locking ns)`.
pub fn cc_mode_sweep(opts: RunOpts) -> Vec<(u32, f64, f64)> {
    let iters = opts.pick(80, 10);
    [128u32, 1024, 8192]
        .iter()
        .map(|&size| {
            let mut out = [0.0f64; 2];
            for (i, mode) in [CcMode::Occ, CcMode::Locking].into_iter().enumerate() {
                let mut cfg = ClusterConfig::default();
                cfg.lightsabres.cc_mode = mode;
                let mut cluster = Cluster::new(cfg);
                let store = build_store(&mut cluster, 1, StoreLayout::Clean, size, Some(512));
                let wire = StoreLayout::Clean.object_bytes(size as usize) as u32;
                cluster.add_workload(
                    0,
                    0,
                    Box::new(
                        SyncReader::endless(1, store.object_addrs(), size, ReadMechanism::Sabre)
                            .with_wire(wire),
                    ),
                );
                cluster.run_for(Time::from_us(15 * iters));
                out[i] = cluster.metrics(0, 0).latency.mean().expect("ops");
            }
            (size, out[0], out[1])
        })
        .collect()
}

/// Ablation 5: retry policy under heavy conflict (8 KB objects, 16
/// writers): immediate retry vs backoff. Returns
/// `(label, GB/s, abort rate)`.
pub fn retry_policy_sweep(opts: RunOpts) -> Vec<(String, f64, f64)> {
    let duration = Time::from_us(opts.pick(150, 25));
    [
        ("immediate", Time::ZERO),
        ("backoff 1us", Time::from_us(1)),
        ("backoff 5us", Time::from_us(5)),
    ]
    .iter()
    .map(|(label, backoff)| {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let store = build_store(&mut cluster, 1, StoreLayout::Clean, 8192, Some(100));
        cluster.warm_llc(1, store.object_addr(0), store.region_bytes());
        let objects = store.object_addrs();
        for core in 0..cluster.config().cores_per_node {
            cluster.add_workload(
                0,
                core,
                Box::new(
                    SyncReader::endless(1, objects.clone(), 8192, ReadMechanism::Sabre)
                        .with_consume()
                        .with_backoff(*backoff)
                        .with_wire(StoreLayout::Clean.object_bytes(8192) as u32),
                ),
            );
        }
        let entries = store.object_entries();
        for w in 0..16 {
            let owned: Vec<_> = entries.iter().copied().skip(w).step_by(16).collect();
            cluster.add_workload(
                1,
                w,
                Box::new(Writer::new(owned, 8192, WriterLayout::Clean, Time::ZERO)),
            );
        }
        cluster.run_for(duration);
        let m = cluster.node_metrics(0);
        (
            label.to_string(),
            m.bytes as f64 / duration.as_ns(),
            m.abort_rate(),
        )
    })
    .collect()
}

/// Renders all ablations.
pub fn run(opts: RunOpts) -> Vec<Table> {
    let mut tables = Vec::new();

    let mut t = Table::new(
        "Ablation — stream-buffer depth vs 8 KB SABRe latency (Little's law: 32)",
        &["depth", "latency"],
    );
    for (d, ns) in depth_sweep(opts) {
        t.row(vec![d.to_string(), fmt_ns(ns)]);
    }
    tables.push(t);

    let mut t = Table::new(
        "Ablation — stream-buffer count vs 128 B SABRe throughput, 16 async readers",
        &["buffers/R2P2", "GB/s"],
    );
    for (b, g) in concurrency_sweep(opts) {
        t.row(vec![b.to_string(), fmt_gbps(g)]);
    }
    tables.push(t);

    let mut t = Table::new(
        "Ablation — destination OCC vs destination locking (uncontended)",
        &["size(B)", "OCC", "locking"],
    );
    for (s, occ, lock) in cc_mode_sweep(opts) {
        t.row(vec![s.to_string(), fmt_ns(occ), fmt_ns(lock)]);
    }
    tables.push(t);

    let mut t = Table::new(
        "Ablation — retry policy under heavy conflicts (8 KB, 16 writers)",
        &["policy", "GB/s", "abort rate"],
    );
    for (label, g, rate) in retry_policy_sweep(opts) {
        t.row(vec![label, fmt_gbps(g), format!("{:.1}%", rate * 100.0)]);
    }
    tables.push(t);

    tables
}
