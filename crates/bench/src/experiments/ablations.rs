//! Ablations over the design decisions §3/§4 argue for:
//!
//! 1. **Stream-buffer depth** (DG1): the depth must cover the
//!    bandwidth-delay product (§4.1's Little's-law sizing, = 32 at
//!    20 GBps × 90 ns) or single-SABRe latency suffers inside the window
//!    of vulnerability.
//! 2. **Stream-buffer count** (DG2): enough concurrent SABRes must fit to
//!    saturate bandwidth with small objects.
//! 3. **Speculation** (DG1): the no-speculation strawman's penalty across
//!    sizes.
//! 4. **CC mode**: destination locking vs destination OCC, uncontended.
//! 5. **Abort policy** (§5.1): software-controlled retry — immediate vs
//!    backoff under heavy conflicts.

use sabre_core::CcMode;
use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_rack::workloads::{Writer, WriterLayout};
use sabre_rack::{spec, ReadMechanism, ScenarioBuilder};
use sabre_sim::Time;

use crate::table::{fmt_gbps, fmt_ns};
use crate::{RunOpts, Table};

/// Ablation 1: single-SABRe latency of an 8 KB object vs stream-buffer
/// depth. Returns `(depth, mean latency ns)`.
pub fn depth_sweep(opts: RunOpts) -> Vec<(u32, f64)> {
    let iters = opts.pick(60, 8);
    opts.sweep([1u32, 2, 4, 8, 16, 32, 64]).map(|&depth| {
        let report = ScenarioBuilder::new()
            .configure(|cfg| cfg.lightsabres.depth = depth)
            .raw_region(1, 8192)
            .reader_spec(
                0,
                0,
                spec()
                    .store(1)
                    .payload(8192)
                    .mechanism(ReadMechanism::Sabre),
            )
            .run_for(Time::from_us(15 * iters));
        (depth, report.mean_latency_ns(0, 0).expect("ops completed"))
    })
}

/// Ablation 2: aggregate throughput of 16 async readers of two-block
/// (128 B) SABRes vs the number of stream buffers (= max concurrent
/// SABRes per R2P2). Returns `(buffers, GB/s)`.
pub fn concurrency_sweep(opts: RunOpts) -> Vec<(usize, f64)> {
    let duration = Time::from_us(opts.pick(150, 25));
    opts.sweep([1usize, 2, 4, 8, 16]).map(|&buffers| {
        let scenario = ScenarioBuilder::new()
            .configure(|cfg| cfg.lightsabres.stream_buffers = buffers)
            .raw_region(1, 128);
        let cores = 0..scenario.config().cores_per_node;
        let report = scenario
            .readers_spec(
                0,
                cores,
                spec()
                    .store(1)
                    .payload(128)
                    .mechanism(ReadMechanism::Sabre)
                    .window(8),
            )
            .run_for(duration);
        (buffers, report.gbps(0))
    })
}

/// Ablation 4: destination locking vs destination OCC, uncontended.
/// Returns `(size, occ ns, locking ns)`.
pub fn cc_mode_sweep(opts: RunOpts) -> Vec<(u32, f64, f64)> {
    let iters = opts.pick(80, 10);
    opts.sweep([128u32, 1024, 8192]).map(|&size| {
        let mut out = [0.0f64; 2];
        for (i, mode) in [CcMode::Occ, CcMode::Locking].into_iter().enumerate() {
            let (scenario, _store) = ScenarioBuilder::new()
                .configure(|cfg| cfg.lightsabres.cc_mode = mode)
                .store(1, StoreLayout::Clean, size, Some(512));
            let wire = StoreLayout::Clean.object_bytes(size as usize) as u32;
            let report = scenario
                .reader_spec(
                    0,
                    0,
                    spec()
                        .store(1)
                        .payload(size)
                        .mechanism(ReadMechanism::Sabre)
                        .wire(wire),
                )
                .run_for(Time::from_us(15 * iters));
            out[i] = report.mean_latency_ns(0, 0).expect("ops");
        }
        (size, out[0], out[1])
    })
}

/// Ablation 5: retry policy under heavy conflict (8 KB objects, 16
/// writers): immediate retry vs backoff. Returns
/// `(label, GB/s, abort rate)`.
pub fn retry_policy_sweep(opts: RunOpts) -> Vec<(String, f64, f64)> {
    let duration = Time::from_us(opts.pick(150, 25));
    opts.sweep([
        ("immediate", Time::ZERO),
        ("backoff 1us", Time::from_us(1)),
        ("backoff 5us", Time::from_us(5)),
    ])
    .map(|&(label, backoff)| {
        let (scenario, store) =
            ScenarioBuilder::new().warmed_store(1, StoreLayout::Clean, 8192, Some(100));
        let cores = 0..scenario.config().cores_per_node;
        let mut scenario = scenario.readers_spec(
            0,
            cores,
            spec()
                .store(1)
                .payload(8192)
                .mechanism(ReadMechanism::Sabre)
                .consume()
                .backoff(backoff)
                .wire(StoreLayout::Clean.object_bytes(8192) as u32),
        );
        let entries = store.object_entries();
        for w in 0..16 {
            let owned: Vec<_> = entries.iter().copied().skip(w).step_by(16).collect();
            scenario = scenario.workload(
                1,
                w,
                Box::new(Writer::new(owned, 8192, WriterLayout::Clean, Time::ZERO)),
            );
        }
        let report = scenario.run_for(duration);
        (
            label.to_string(),
            report.gbps(0),
            report.node(0).abort_rate(),
        )
    })
}

/// Renders all ablations.
pub fn run(opts: RunOpts) -> Vec<Table> {
    let mut tables = Vec::new();

    let mut t = Table::new(
        "Ablation — stream-buffer depth vs 8 KB SABRe latency (Little's law: 32)",
        &["depth", "latency"],
    );
    for (d, ns) in depth_sweep(opts) {
        t.row(vec![d.to_string(), fmt_ns(ns)]);
    }
    tables.push(t);

    let mut t = Table::new(
        "Ablation — stream-buffer count vs 128 B SABRe throughput, 16 async readers",
        &["buffers/R2P2", "GB/s"],
    );
    for (b, g) in concurrency_sweep(opts) {
        t.row(vec![b.to_string(), fmt_gbps(g)]);
    }
    tables.push(t);

    let mut t = Table::new(
        "Ablation — destination OCC vs destination locking (uncontended)",
        &["size(B)", "OCC", "locking"],
    );
    for (s, occ, lock) in cc_mode_sweep(opts) {
        t.row(vec![s.to_string(), fmt_ns(occ), fmt_ns(lock)]);
    }
    tables.push(t);

    let mut t = Table::new(
        "Ablation — retry policy under heavy conflicts (8 KB, 16 writers)",
        &["policy", "GB/s", "abort rate"],
    );
    for (label, g, rate) in retry_policy_sweep(opts) {
        t.row(vec![label, fmt_gbps(g), format!("{:.1}%", rate * 100.0)]);
    }
    tables.push(t);

    tables
}
