//! fig_tail: tail latency under open-loop load — the production-traffic
//! view the paper's closed-loop microbenchmarks deliberately avoid.
//!
//! The Table-1 workload (1 KB objects) runs on the 8-node mesh rack, but
//! the readers are *open loop*: operations arrive on a Poisson process at
//! a swept per-core offered load, queue behind the in-flight operation
//! when the core is busy, and report end-to-end latency from *intended
//! arrival* — queueing delay included. Each (mechanism, skew) pair is
//! swept across light, moderate and saturating load; latencies land in
//! the deterministic integer histogram, so the p50/p99/p999 columns (and
//! the queue-buildup counters) are exact and golden-diffable.
//!
//! Expected shape: at light load every mechanism's p99 sits near its
//! closed-loop latency; as the offered load approaches a core's service
//! rate the queue builds and the tail stretches — first for the software
//! mechanisms (their CPU validation inflates service time), last for raw
//! reads. Skewed (Zipf 0.99) keys concentrate on LLC-resident hot
//! objects, which shortens service at the store and defers the buildup.
//! Within one mechanism and skew, p99 is monotone non-decreasing in the
//! offered load — pinned by `tests/experiment_shapes.rs`.

use sabre_farm::ScenarioStoreExt;
use sabre_rack::{spec, Arrivals, Popularity, ScenarioBuilder};
use sabre_sim::Time;

use crate::experiments::fig_scale::{Mechanism, CORES_PER_READER_NODE, OBJECTS_PER_SHARD, PAYLOAD};
use crate::{RunOpts, Table};

/// Rack size: the biggest configuration the equivalence suite pins.
pub const NODES: usize = 8;

/// Per-core offered loads swept (operations per microsecond): light,
/// moderate, and past the ~1 KB closed-loop service rate.
pub const LOADS: [f64; 3] = [0.2, 0.8, 1.6];

/// The Zipfian exponent of the skewed setting (the YCSB default).
pub const ZIPF_EXPONENT: f64 = 0.99;

/// Key-popularity settings compared at every load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Keys drawn uniformly over the shard.
    Uniform,
    /// Zipf(0.99) — rank 1 hottest.
    Zipf,
}

impl Skew {
    /// Both settings, in presentation order.
    pub const ALL: [Skew; 2] = [Skew::Uniform, Skew::Zipf];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Zipf => "zipf 0.99",
        }
    }

    /// The matching workload popularity.
    pub fn popularity(self) -> Popularity {
        match self {
            Skew::Uniform => Popularity::Uniform,
            Skew::Zipf => Popularity::Zipf {
                exponent: ZIPF_EXPONENT,
            },
        }
    }
}

/// One sweep point's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The read mechanism.
    pub mech: Mechanism,
    /// The key-popularity setting.
    pub skew: Skew,
    /// Offered load per reader core (ops/us).
    pub load: f64,
    /// Successful operations across the rack.
    pub ops: u64,
    /// Median end-to-end latency (ns), queueing included.
    pub p50_ns: u64,
    /// 99th-percentile latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile latency (ns).
    pub p999_ns: u64,
    /// Arrivals that queued behind an in-flight operation.
    pub queued: u64,
    /// Deepest backlog any core saw.
    pub peak_backlog: u64,
}

/// Measures one `(mechanism, skew, load)` point with explicit event-loop
/// shard and worker-thread knobs. Public so the equivalence tests can
/// certify that *this* construction — not a copy of it — is bit-identical
/// at every shards × threads setting.
pub fn measure_threaded(
    mech: Mechanism,
    skew: Skew,
    load: f64,
    iters: u64,
    shards: usize,
    threads: Option<usize>,
) -> Point {
    let builder = ScenarioBuilder::new()
        .nodes(NODES)
        .shards(shards)
        .configure(|cfg| cfg.threads = threads);
    let topo = builder.config().topology.clone();
    let (builder, store_shards) = builder.sharded_store(
        topo.store_nodes(),
        mech.layout(),
        PAYLOAD,
        OBJECTS_PER_SHARD,
    );
    let readers = topo.reader_nodes();
    let placements: Vec<(usize, usize)> = readers
        .iter()
        .flat_map(|&node| (0..CORES_PER_READER_NODE).map(move |core| (node, core)))
        .collect();
    let reader_index: std::collections::HashMap<usize, usize> = readers
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, i))
        .collect();
    let report = builder
        .readers_grid_spec(placements, move |node, _core, _targets| {
            let shard = &store_shards[reader_index[&node] % store_shards.len()];
            spec()
                .store(shard.node() as usize)
                .payload(PAYLOAD)
                .mechanism(mech.read_mechanism())
                .wire(shard.slot_bytes() as u32)
                .objects(shard.object_addrs())
                .arrivals(Arrivals::Poisson { ops_per_us: load })
                .popularity(skew.popularity())
        })
        .run_for(Time::from_us(20 * iters));
    let m = report.rack_metrics();
    assert!(m.ops > 0, "{mech:?}/{skew:?}@{load}: no ops completed");
    let (p50_ns, p99_ns, p999_ns) = report.latency_percentiles().expect("ops recorded");
    Point {
        mech,
        skew,
        load,
        ops: m.ops,
        p50_ns,
        p99_ns,
        p999_ns,
        queued: m.queued_arrivals,
        peak_backlog: m.peak_backlog,
    }
}

/// [`measure_threaded`] with the cluster's default thread resolution.
pub fn measure_sharded(mech: Mechanism, skew: Skew, load: f64, iters: u64, shards: usize) -> Point {
    measure_threaded(mech, skew, load, iters, shards, None)
}

/// One point with the shipped configuration: one shard per node.
pub fn measure(mech: Mechanism, skew: Skew, load: f64, iters: u64) -> Point {
    measure_sharded(mech, skew, load, iters, NODES)
}

/// Runs the full sweep: mechanism × skew × offered load.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(15, 3);
    let points: Vec<(Mechanism, Skew, f64)> = Mechanism::ALL
        .iter()
        .flat_map(|&m| {
            Skew::ALL
                .iter()
                .flat_map(move |&s| LOADS.iter().map(move |&l| (m, s, l)))
        })
        .collect();
    opts.sweep(points)
        .map(|&(mech, skew, load)| measure_threaded(mech, skew, load, iters, NODES, opts.threads))
}

/// Read fractions of the mix sweep: read-mostly down to write-heavy.
pub const MIX_FRACTIONS: [f64; 3] = [0.9, 0.5, 0.1];

/// The per-core offered load of the mix sweep (the moderate setting of
/// [`LOADS`], where queueing exists but the loop is not saturated).
pub const MIX_LOAD: f64 = 0.8;

/// One mix sweep point: raw-layout traffic at [`MIX_LOAD`] with the given
/// read fraction; the write remainder issues one-sided remote writes back
/// to the chosen objects (see `WorkloadSpec::mix` — the software layouts
/// embed metadata a remote writer does not maintain, so the mix sweep is
/// a raw-layout traffic study).
pub fn measure_mix_threaded(
    read_fraction: f64,
    iters: u64,
    shards: usize,
    threads: Option<usize>,
) -> Point {
    let builder = ScenarioBuilder::new()
        .nodes(NODES)
        .shards(shards)
        .configure(|cfg| cfg.threads = threads);
    let topo = builder.config().topology.clone();
    let (builder, store_shards) = builder.sharded_store(
        topo.store_nodes(),
        Mechanism::Raw.layout(),
        PAYLOAD,
        OBJECTS_PER_SHARD,
    );
    let readers = topo.reader_nodes();
    let placements: Vec<(usize, usize)> = readers
        .iter()
        .flat_map(|&node| (0..CORES_PER_READER_NODE).map(move |core| (node, core)))
        .collect();
    let reader_index: std::collections::HashMap<usize, usize> = readers
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, i))
        .collect();
    let report = builder
        .readers_grid_spec(placements, move |node, _core, _targets| {
            let shard = &store_shards[reader_index[&node] % store_shards.len()];
            spec()
                .store(shard.node() as usize)
                .payload(PAYLOAD)
                .mechanism(Mechanism::Raw.read_mechanism())
                .wire(shard.slot_bytes() as u32)
                .objects(shard.object_addrs())
                .arrivals(Arrivals::Poisson {
                    ops_per_us: MIX_LOAD,
                })
                .mix(read_fraction)
        })
        .run_for(Time::from_us(20 * iters));
    let m = report.rack_metrics();
    assert!(m.ops > 0, "mix {read_fraction}: no ops completed");
    let (p50_ns, p99_ns, p999_ns) = report.latency_percentiles().expect("ops recorded");
    Point {
        mech: Mechanism::Raw,
        skew: Skew::Uniform,
        load: MIX_LOAD,
        ops: m.ops,
        p50_ns,
        p99_ns,
        p999_ns,
        queued: m.queued_arrivals,
        peak_backlog: m.peak_backlog,
    }
}

/// Runs the read/write-mix sweep over [`MIX_FRACTIONS`].
pub fn mix_data(opts: RunOpts) -> Vec<(f64, Point)> {
    let iters = opts.pick(15, 3);
    opts.sweep(MIX_FRACTIONS)
        .map(|&f| (f, measure_mix_threaded(f, iters, NODES, opts.threads)))
}

/// Renders the mix sweep as its own table (separate from [`run`]'s, so
/// adding rows here never re-pads the established columns of the main
/// sweep in the golden output).
pub fn run_mix(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "fig_tail — tail under read/write mix (raw traffic, 0.8 ops/us/core, 8-node rack)",
        &[
            "read fraction",
            "ops",
            "p50",
            "p99",
            "p999",
            "queued",
            "peak backlog",
        ],
    );
    for (fraction, p) in mix_data(opts) {
        t.row(vec![
            format!("{fraction:.1}"),
            p.ops.to_string(),
            format!("{} ns", p.p50_ns),
            format!("{} ns", p.p99_ns),
            format!("{} ns", p.p999_ns),
            p.queued.to_string(),
            p.peak_backlog.to_string(),
        ]);
    }
    t
}

/// Renders the tail-latency sweep as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "fig_tail — tail latency vs offered load (open-loop Poisson, 1 KB objects, 8-node rack)",
        &[
            "mechanism",
            "skew",
            "load (ops/us/core)",
            "p50",
            "p99",
            "p999",
            "queued",
            "peak backlog",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.mech.label().to_string(),
            p.skew.label().to_string(),
            format!("{:.1}", p.load),
            format!("{} ns", p.p50_ns),
            format!("{} ns", p.p99_ns),
            format!("{} ns", p.p999_ns),
            p.queued.to_string(),
            p.peak_backlog.to_string(),
        ]);
    }
    t
}
