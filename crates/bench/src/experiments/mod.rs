//! One module per table/figure of the paper, plus ablations.
//!
//! Each module exposes `data(opts) -> Vec<…>` with structured results and
//! `run(opts) -> Table` (or several) for printing. The DESIGN.md experiment
//! index maps paper artifacts to these modules.

pub mod ablations;
pub mod common;
pub mod fig1;
pub mod fig10;
pub mod fig2_race;
pub mod fig7a;
pub mod fig7b;
pub mod fig8;
pub mod fig9a;
pub mod fig9b;
pub mod table1;
pub mod table2;
