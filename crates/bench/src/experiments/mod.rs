//! One module per table/figure of the paper, plus ablations.
//!
//! Each module exposes `data(opts) -> Vec<…>` with structured results and
//! `run(opts) -> Table` (or several) for printing. The DESIGN.md experiment
//! index maps paper artifacts to these modules.
//!
//! Every experiment is declared with [`sabre_rack::ScenarioBuilder`] (plus
//! [`sabre_farm::ScenarioStoreExt`] for store-backed ones) and its sweep
//! points run in parallel via [`crate::RunOpts::sweep`]; each point builds
//! a self-contained cluster, so results are deterministic whatever the
//! thread count.

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig2_race;
pub mod fig7a;
pub mod fig7b;
pub mod fig8;
pub mod fig9a;
pub mod fig9b;
pub mod fig_datacenter;
pub mod fig_failover;
pub mod fig_placement;
pub mod fig_protocols;
pub mod fig_recovery;
pub mod fig_scale;
pub mod fig_tail;
pub mod table1;
pub mod table2;

/// The transfer sizes of the microbenchmark figures (Figs. 7a/7b).
pub const TRANSFER_SIZES: [u32; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// The object sizes of the object-store figures (Figs. 1, 9, 10).
pub const OBJECT_SIZES: [u32; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];
