//! Shared experiment scaffolding.

use sabre_farm::{ObjectStore, StoreLayout};
use sabre_mem::Addr;
use sabre_rack::{Cluster, ClusterConfig};

/// The transfer sizes of the microbenchmark figures (Figs. 7a/7b).
pub const TRANSFER_SIZES: [u32; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// The object sizes of the object-store figures (Figs. 1, 9, 10).
pub const OBJECT_SIZES: [u32; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];

/// Builds the default two-node cluster of Table 2.
pub fn default_cluster() -> Cluster {
    Cluster::new(ClusterConfig::default())
}

/// Lays out a memory-resident region of raw transfer targets of `size`
/// bytes each on `node`: enough objects (~16 MB) that uniform random access
/// misses the 2 MB LLC, as in the "remote data is memory resident" setups.
/// Each target starts with an even (unlocked) version word.
///
/// Returns the target addresses.
pub fn raw_targets(cluster: &mut Cluster, node: usize, size: u32) -> Vec<Addr> {
    let slot = (size as u64).div_ceil(64) * 64;
    let count = (16 * 1024 * 1024 / slot).clamp(1, 16_384);
    let mem = cluster.node_memory_mut(node);
    let mut addrs = Vec::with_capacity(count as usize);
    for i in 0..count {
        let base = Addr::new(i * slot);
        mem.write_u64(base, 0);
        addrs.push(base);
    }
    addrs
}

/// Creates and initializes an object store region on `node`, memory
/// resident (≈16 MB of objects) unless `n_objects` pins the count.
pub fn build_store(
    cluster: &mut Cluster,
    node: u8,
    layout: StoreLayout,
    payload: u32,
    n_objects: Option<u64>,
) -> ObjectStore {
    let slot = layout.object_bytes(payload as usize) as u64;
    let count = n_objects.unwrap_or((16 * 1024 * 1024 / slot).clamp(1, 16_384));
    let store = ObjectStore::new(node, Addr::new(0), layout, payload, count);
    store.init(cluster.node_memory_mut(node as usize));
    store
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}
