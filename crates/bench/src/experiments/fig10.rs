//! Fig. 10: FaRM *local* reads throughput — per-CL versions layout vs. the
//! unmodified (clean) object store that LightSABRes enable.
//!
//! Expected shape (paper): the clean layout wins by 1.2× at 128 B, 1.53×
//! at 1 KB and 2.1× at 8 KB — LightSABRes accelerate local reads *without
//! being involved in them*, purely by making the embedded per-line
//! metadata unnecessary.

use sabre_farm::{FarmCosts, FarmLocalReader, KvStore, ScenarioStoreExt, StoreLayout};
use sabre_rack::ScenarioBuilder;
use sabre_sim::Time;

use super::OBJECT_SIZES;
use crate::table::fmt_gbps;
use crate::{RunOpts, Table};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Object payload size.
    pub size: u32,
    /// Per-CL layout local read throughput (GB/s).
    pub percl_gbps: f64,
    /// Clean ("unmodified object store") throughput (GB/s).
    pub clean_gbps: f64,
}

impl Point {
    /// Clean-layout speedup.
    pub fn speedup(&self) -> f64 {
        self.clean_gbps / self.percl_gbps
    }
}

/// 15 local reader threads, as in Fig. 9.
pub const READERS: usize = 15;

fn measure(size: u32, layout: StoreLayout, duration: Time) -> f64 {
    // Local store lives on node 0, where the readers run.
    let (scenario, store) = ScenarioBuilder::new().store(0, layout, size, None);
    scenario
        .readers(0, 0..READERS, move |_, _| {
            let kv = KvStore::new(store.clone(), 100_000);
            Box::new(FarmLocalReader::endless(kv, FarmCosts::default()).without_verify())
        })
        .run_for(duration)
        .gbps(0)
}

/// Runs the sweep.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let duration = Time::from_us(opts.pick(150, 25));
    opts.sweep(OBJECT_SIZES).map(|&size| Point {
        size,
        percl_gbps: measure(size, StoreLayout::PerCl, duration),
        clean_gbps: measure(size, StoreLayout::Clean, duration),
    })
}

/// Renders the figure as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Fig. 10 — FaRM local reads throughput, 15 threads (GB/s)",
        &["size(B)", "perCL versions", "unmodified store", "speedup"],
    );
    for p in data(opts) {
        t.row(vec![
            p.size.to_string(),
            fmt_gbps(p.percl_gbps),
            fmt_gbps(p.clean_gbps),
            format!("{:.2}x", p.speedup()),
        ]);
    }
    t
}
