//! Fig. 7a: microbenchmark end-to-end transfer latency — plain remote
//! reads vs. LightSABRes vs. the non-speculative strawman.
//!
//! One thread issues synchronous operations over 64 B–8 KB memory-resident
//! targets. Expected shape (paper): LightSABRes match plain reads at every
//! size (diverging slightly above 2 KB, where a SABRe is pinned to one
//! R2P2 while plain reads balance per block); the no-speculation variant
//! pays the serialized version read — up to ≈40% extra on two-block
//! transfers — until transfer time dominates at large sizes.

use sabre_core::SpecMode;
use sabre_rack::{ReadMechanism, ScenarioBuilder};
use sabre_sim::Time;

use super::TRANSFER_SIZES;
use crate::table::fmt_ns;
use crate::{RunOpts, Table};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Transfer size in bytes.
    pub size: u32,
    /// Mean plain-read latency (ns).
    pub read_ns: f64,
    /// Mean LightSABRes latency (ns).
    pub sabre_ns: f64,
    /// Mean non-speculative SABRe latency (ns).
    pub nospec_ns: f64,
}

/// Measures one `(size, mechanism, speculation)` point: one synchronous
/// reader over memory-resident raw targets, capped by time rather than
/// iterations; no warmup needed (single reader, no contention, and memory
/// residency makes LLC fills rare anyway). Public so the scenario
/// equivalence test certifies *this* construction, not a copy of it.
pub fn measure(size: u32, mech: ReadMechanism, spec: SpecMode, iters: u64) -> f64 {
    assert!(
        matches!(mech, ReadMechanism::Raw | ReadMechanism::Sabre),
        "fig7a compares raw transfers, not software-validated reads"
    );
    let report = ScenarioBuilder::new()
        .configure(|cfg| cfg.lightsabres.spec_mode = spec)
        .raw_region(1, size)
        .reader_spec(
            0,
            0,
            sabre_rack::spec().store(1).payload(size).mechanism(mech),
        )
        // Enough simulated time for `iters` back-to-back ops at <10 us each.
        .run_for(Time::from_us(10 * iters));
    let m = report.core(0, 0);
    assert!(m.ops >= iters / 2, "too few ops completed: {}", m.ops);
    m.latency.mean().expect("ops completed")
}

/// Runs the sweep.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(100, 10);
    opts.sweep(TRANSFER_SIZES).map(|&size| Point {
        size,
        read_ns: measure(size, ReadMechanism::Raw, SpecMode::Speculative, iters),
        sabre_ns: measure(size, ReadMechanism::Sabre, SpecMode::Speculative, iters),
        nospec_ns: measure(
            size,
            ReadMechanism::Sabre,
            SpecMode::ReadVersionFirst,
            iters,
        ),
    })
}

/// Renders the figure as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Fig. 7a — transfer latency: remote reads vs LightSABRes vs no-speculation",
        &[
            "size(B)",
            "remote read",
            "LightSABRes",
            "no-spec",
            "no-spec penalty",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.size.to_string(),
            fmt_ns(p.read_ns),
            fmt_ns(p.sabre_ns),
            fmt_ns(p.nospec_ns),
            format!("{:+.0}%", (p.nospec_ns / p.sabre_ns - 1.0) * 100.0),
        ]);
    }
    t
}
