//! Fig. 7a: microbenchmark end-to-end transfer latency — plain remote
//! reads vs. LightSABRes vs. the non-speculative strawman.
//!
//! One thread issues synchronous operations over 64 B–8 KB memory-resident
//! targets. Expected shape (paper): LightSABRes match plain reads at every
//! size (diverging slightly above 2 KB, where a SABRe is pinned to one
//! R2P2 while plain reads balance per block); the no-speculation variant
//! pays the serialized version read — up to ≈40% extra on two-block
//! transfers — until transfer time dominates at large sizes.

use sabre_core::SpecMode;
use sabre_rack::workloads::SyncReader;
use sabre_rack::{Cluster, ClusterConfig, ReadMechanism};
use sabre_sim::Time;

use super::common::{raw_targets, TRANSFER_SIZES};
use crate::table::fmt_ns;
use crate::{RunOpts, Table};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Transfer size in bytes.
    pub size: u32,
    /// Mean plain-read latency (ns).
    pub read_ns: f64,
    /// Mean LightSABRes latency (ns).
    pub sabre_ns: f64,
    /// Mean non-speculative SABRe latency (ns).
    pub nospec_ns: f64,
}

fn measure(size: u32, mech: ReadMechanism, spec: SpecMode, iters: u64) -> f64 {
    let mut cfg = ClusterConfig::default();
    cfg.lightsabres.spec_mode = spec;
    let mut cluster = Cluster::new(cfg);
    let targets = raw_targets(&mut cluster, 1, size);
    let reader = SyncReader::endless(1, targets, size, mech);
    // Cap the reader via time, not iterations, and average the transfer
    // phase; drop nothing (single reader, no contention, no warmup needed
    // beyond the LLC fills that memory residency makes rare anyway).
    let mut reader = reader;
    reader = match mech {
        ReadMechanism::Raw | ReadMechanism::Sabre => reader,
        _ => unreachable!("fig7a compares raw transfers"),
    };
    cluster.add_workload(0, 0, Box::new(reader));
    // Enough simulated time for `iters` back-to-back ops at <10 us each.
    cluster.run_for(Time::from_us(10 * iters));
    let m = cluster.metrics(0, 0);
    assert!(m.ops >= iters / 2, "too few ops completed: {}", m.ops);
    m.latency.mean().expect("ops completed")
}

/// Runs the sweep.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(100, 10);
    TRANSFER_SIZES
        .iter()
        .map(|&size| Point {
            size,
            read_ns: measure(size, ReadMechanism::Raw, SpecMode::Speculative, iters),
            sabre_ns: measure(size, ReadMechanism::Sabre, SpecMode::Speculative, iters),
            nospec_ns: measure(
                size,
                ReadMechanism::Sabre,
                SpecMode::ReadVersionFirst,
                iters,
            ),
        })
        .collect()
}

/// Renders the figure as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Fig. 7a — transfer latency: remote reads vs LightSABRes vs no-speculation",
        &[
            "size(B)",
            "remote read",
            "LightSABRes",
            "no-spec",
            "no-spec penalty",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.size.to_string(),
            fmt_ns(p.read_ns),
            fmt_ns(p.sabre_ns),
            fmt_ns(p.nospec_ns),
            format!("{:+.0}%", (p.nospec_ns / p.sabre_ns - 1.0) * 100.0),
        ]);
    }
    t
}
