//! Fig. 9b: FaRM key-value store application throughput, 15 reader
//! threads — baseline vs. LightSABRes.
//!
//! Expected shape (paper): +30–60% depending on object size.

use sabre_farm::{FarmCosts, FarmReader, KvStore, ScenarioStoreExt, StoreLayout};
use sabre_rack::ScenarioBuilder;
use sabre_sim::Time;

use super::OBJECT_SIZES;
use crate::table::fmt_gbps;
use crate::{RunOpts, Table};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Object payload size.
    pub size: u32,
    /// Baseline throughput (GB/s).
    pub percl_gbps: f64,
    /// LightSABRes throughput (GB/s).
    pub sabre_gbps: f64,
}

impl Point {
    /// Relative throughput improvement.
    pub fn improvement(&self) -> f64 {
        self.sabre_gbps / self.percl_gbps - 1.0
    }
}

/// The paper uses 15 FaRM reader threads (one core runs FaRM's service).
pub const READERS: usize = 15;

fn measure(size: u32, layout: StoreLayout, duration: Time) -> f64 {
    let (scenario, store) = ScenarioBuilder::new().store(1, layout, size, None);
    scenario
        .readers(0, 0..READERS, move |_, _| {
            let kv = KvStore::new(store.clone(), 100_000);
            // Verification is host-side-expensive at 15 threads × long runs.
            Box::new(FarmReader::endless(kv, FarmCosts::default()).without_verify())
        })
        .run_for(duration)
        .gbps(0)
}

/// Runs the sweep.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let duration = Time::from_us(opts.pick(200, 30));
    opts.sweep(OBJECT_SIZES).map(|&size| Point {
        size,
        percl_gbps: measure(size, StoreLayout::PerCl, duration),
        sabre_gbps: measure(size, StoreLayout::Clean, duration),
    })
}

/// Renders the figure as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Fig. 9b — FaRM KV throughput, 15 readers (GB/s)",
        &["size(B)", "perCL versions", "LightSABRes", "improvement"],
    );
    for p in data(opts) {
        t.row(vec![
            p.size.to_string(),
            fmt_gbps(p.percl_gbps),
            fmt_gbps(p.sabre_gbps),
            format!("{:+.0}%", p.improvement() * 100.0),
        ]);
    }
    t
}
