//! Fig. 2: the reader-writer race that motivates the design.
//!
//! A two-block object is read remotely while a local writer updates it.
//! With plain (per-block-atomic) remote reads, some reads return *torn*
//! objects — new bytes in one block, old bytes in the other — exactly the
//! undetected violation of Fig. 2. With SABRes, every read the hardware
//! reports atomic verifies clean, and the races surface as aborts instead.

use std::sync::{Arc, Mutex};

use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_mem::Addr;
use sabre_rack::workloads::{verify_payload, Writer, WriterLayout};
use sabre_rack::{CoreApi, ReadMechanism, ScenarioBuilder, Workload};
use sabre_sim::Time;
use sabre_sonuma::CqEntry;
use sabre_sw::layout::CleanLayout;

use crate::{RunOpts, Table};

/// Outcome of the race demonstration.
#[derive(Debug, Clone, Copy)]
pub struct RaceOutcome {
    /// Plain-read attempts.
    pub raw_reads: u64,
    /// Plain reads that returned torn objects (undetected violations!).
    pub raw_torn: u64,
    /// SABRe reads reported atomic.
    pub sabre_ok: u64,
    /// SABRe reads reported failed (detected conflicts).
    pub sabre_aborts: u64,
    /// SABRe reads reported atomic that were actually torn (must be 0).
    pub sabre_torn: u64,
}

/// Counters shared between the experiment and its reader (workloads are
/// `Send` — shards may run on worker threads — so shared state is
/// `Arc<Mutex<…>>`; the mutex is uncontended within one cluster run).
#[derive(Debug, Default)]
struct Counters {
    ok: u64,
    torn: u64,
    aborts: u64,
}

/// A reader that checks every returned object against the writer pattern.
struct VerifyingReader {
    mech: ReadMechanism,
    object: Addr,
    obj_id: u64,
    payload: u32,
    counters: Arc<Mutex<Counters>>,
    t0: Time,
}

impl VerifyingReader {
    fn new(
        mech: ReadMechanism,
        object: Addr,
        obj_id: u64,
        payload: u32,
        counters: Arc<Mutex<Counters>>,
    ) -> Self {
        VerifyingReader {
            mech,
            object,
            obj_id,
            payload,
            counters,
            t0: Time::ZERO,
        }
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        Addr::new(api.config().memory_bytes as u64 / 2)
    }

    fn wire(&self) -> u32 {
        CleanLayout::object_bytes(self.payload as usize) as u32
    }

    fn issue(&mut self, api: &mut CoreApi<'_>) {
        let buf = self.buf(api);
        self.t0 = api.now();
        let wire = self.wire();
        api.issue(self.mech.op(), 1, self.object, buf, wire, 0);
    }
}

impl Workload for VerifyingReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.issue(api);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        let mut c = self.counters.lock().expect("counters poisoned");
        if cq.success {
            let image = api.read_local(self.buf(api), self.wire() as usize);
            let payload = CleanLayout::payload_of(&image, self.payload as usize);
            if verify_payload(self.obj_id, payload).is_some() {
                c.ok += 1;
            } else {
                c.torn += 1;
            }
        } else {
            c.aborts += 1;
        }
        drop(c);
        let latency = api.now() - self.t0;
        api.metrics().record_success(self.payload as u64, latency);
        self.issue(api);
    }
}

fn run_side(mech: ReadMechanism, duration: Time) -> (u64, u64, u64) {
    // One clean-layout object of 112 B payload = 2 cache blocks, matching
    // the figure's two-block example.
    let (scenario, store) =
        ScenarioBuilder::new().warmed_store(1, StoreLayout::Clean, 112, Some(1));
    let counters = Arc::new(Mutex::new(Counters::default()));
    let reader_counters = Arc::clone(&counters);
    let object = store.object_addr(0);
    let entries = store.object_entries();
    scenario
        .reader(0, 0, move |_| {
            Box::new(VerifyingReader::new(mech, object, 0, 112, reader_counters))
        })
        .workload(
            1,
            0,
            Box::new(Writer::new(entries, 112, WriterLayout::Clean, Time::ZERO)),
        )
        .run_for(duration);
    let c = counters.lock().expect("counters poisoned");
    (c.ok, c.torn, c.aborts)
}

/// Runs both sides of the demonstration.
pub fn data(opts: RunOpts) -> RaceOutcome {
    let duration = Time::from_us(opts.pick(400, 80));
    let sides = opts
        .sweep([ReadMechanism::Raw, ReadMechanism::Sabre])
        .map(|&mech| run_side(mech, duration));
    let (raw_ok, raw_torn, _) = sides[0];
    let (sabre_ok, sabre_torn, sabre_aborts) = sides[1];
    RaceOutcome {
        raw_reads: raw_ok + raw_torn,
        raw_torn,
        sabre_ok,
        sabre_aborts,
        sabre_torn,
    }
}

/// Renders the demonstration as a table.
pub fn run(opts: RunOpts) -> Table {
    let o = data(opts);
    let mut t = Table::new(
        "Fig. 2 — reader-writer race on a 2-block object (1 writer racing 1 reader)",
        &[
            "mechanism",
            "reads",
            "torn (undetected)",
            "aborts (detected)",
        ],
    );
    t.row(vec![
        "plain remote read".into(),
        o.raw_reads.to_string(),
        o.raw_torn.to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "SABRe".into(),
        (o.sabre_ok + o.sabre_aborts).to_string(),
        o.sabre_torn.to_string(),
        o.sabre_aborts.to_string(),
    ]);
    t
}
