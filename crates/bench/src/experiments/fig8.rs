//! Fig. 8: conflict sensitivity — application throughput as the writer
//! count (and hence the conflict probability) grows.
//!
//! 16 reader threads on node 0 read 100 LLC-resident objects on node 1
//! uniformly at random; 0–16 writer threads on node 1 continuously update
//! disjoint subsets (CREW). Readers retry immediately on atomicity
//! failure. Expected shape (paper): throughput declines with writers for
//! both mechanisms; LightSABRes lead per-CL versions by ≈15%→3% (128 B,
//! gap shrinks), ≈30%→41% (1 KB) and ≈87%→97% (8 KB, gap grows), because
//! the software check's cost scales with object size while the hardware
//! failure notification does not.

use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_rack::workloads::{Writer, WriterLayout};
use sabre_rack::{spec, ScenarioBuilder};
use sabre_sim::Time;

use crate::table::fmt_gbps;
use crate::{RunOpts, Table};

/// Object sizes of the figure.
pub const SIZES: [u32; 3] = [128, 1024, 8192];

/// One measured cell.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Object payload size.
    pub size: u32,
    /// Writer threads.
    pub writers: usize,
    /// LightSABRes application throughput (GB/s).
    pub sabre_gbps: f64,
    /// Per-CL-versions application throughput (GB/s).
    pub percl_gbps: f64,
    /// LightSABRes abort (retry) rate.
    pub sabre_abort_rate: f64,
    /// Per-CL check-failure (retry) rate.
    pub percl_abort_rate: f64,
}

const N_OBJECTS: u64 = 100;

fn measure(size: u32, writers: usize, layout: StoreLayout, duration: Time) -> (f64, f64) {
    // "We limit the number of objects to 100, making all accesses LLC
    // resident."
    let (scenario, store) = ScenarioBuilder::new().warmed_store(1, layout, size, Some(N_OBJECTS));

    let mech = layout.mechanism(size);
    let readers = scenario.config().cores_per_node;
    let wire = layout.object_bytes(size as usize) as u32;
    let mut scenario = scenario.readers_spec(
        0,
        0..readers,
        spec()
            .store(1)
            .payload(size)
            .mechanism(mech)
            .consume()
            .wire(wire),
    );
    if writers > 0 {
        let wl = match layout {
            StoreLayout::Clean => WriterLayout::Clean,
            StoreLayout::PerCl => WriterLayout::PerCl,
            StoreLayout::Checksum => WriterLayout::Checksum,
            StoreLayout::WfRegister => WriterLayout::WfRegister,
        };
        // CREW: partition the objects across writers round-robin so every
        // writer owns ⌈100/N⌉ or ⌊100/N⌋ objects (a contiguous-chunk split
        // can leave one writer a single object that it then rewrites
        // continuously, an artificial hot spot).
        let entries = store.object_entries();
        for w in 0..writers {
            let owned: Vec<_> = entries.iter().copied().skip(w).step_by(writers).collect();
            scenario = scenario.workload(1, w, Box::new(Writer::new(owned, size, wl, Time::ZERO)));
        }
    }
    let report = scenario.run_for(duration);
    let m = report.node(0);
    (report.gbps(0), m.abort_rate())
}

/// Runs the sweep: the full {size × writer-count} grid, one parallel sweep
/// point per cell.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let duration = Time::from_us(opts.pick(150, 25));
    let writer_counts: Vec<usize> = opts.pick(vec![0, 2, 4, 8, 12, 16], vec![0, 4, 16]);
    let grid: Vec<(u32, usize)> = SIZES
        .iter()
        .flat_map(|&size| writer_counts.iter().map(move |&w| (size, w)))
        .collect();
    opts.sweep(grid).map(|&(size, writers)| {
        let (sabre_gbps, sabre_abort_rate) = measure(size, writers, StoreLayout::Clean, duration);
        let (percl_gbps, percl_abort_rate) = measure(size, writers, StoreLayout::PerCl, duration);
        Point {
            size,
            writers,
            sabre_gbps,
            percl_gbps,
            sabre_abort_rate,
            percl_abort_rate,
        }
    })
}

/// Renders the figure as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Fig. 8 — app throughput vs #writers (GB/s), 16 readers, 100 LLC-resident objects",
        &[
            "size(B)",
            "writers",
            "LightSABRes",
            "perCL versions",
            "gap",
            "sabre aborts",
            "perCL aborts",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.size.to_string(),
            p.writers.to_string(),
            fmt_gbps(p.sabre_gbps),
            fmt_gbps(p.percl_gbps),
            format!("{:+.0}%", (p.sabre_gbps / p.percl_gbps - 1.0) * 100.0),
            format!("{:.1}%", p.sabre_abort_rate * 100.0),
            format!("{:.1}%", p.percl_abort_rate * 100.0),
        ]);
    }
    t
}
