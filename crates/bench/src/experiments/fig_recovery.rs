//! fig_recovery: replica catch-up after a correlated whole-leaf outage —
//! write logs, guarded reads, and the staleness window.
//!
//! The fourth beyond-paper scenario family.
//! [`fig_failover`](super::fig_failover) crashes one
//! store node under *software* crash semantics, where the site's local
//! writer keeps the image current and failover back needs no catch-up.
//! This experiment kills a whole fat-tree leaf — two of the three replica
//! sites at once, writers and all — so the restored images genuinely miss
//! every update of the outage window. Each site runs a
//! [`RecoveringWriter`] maintaining a per-site [`WriteLog`]; on
//! restoration the stale sites pull the log over the real fabric
//! ([`sabre_sonuma::OpKind::CatchUpPull`]), bounce off each other's
//! equally-stale guards onto the surviving cross-leaf replica, and replay
//! the missed range through the deterministic writer path.
//!
//! Three rows: **no outage** (baseline availability, all recovery
//! counters zero), **refuse** (the epoch/seq guard turns readers away
//! while a site catches up) and **serve stale**
//! ([`sabre_rack::ClusterConfig::serve_stale`]: availability first,
//! staleness counted). Readers are the adaptive failover kind with
//! hop-triggered re-placement, plus one reader pinned to a leaf-2 replica
//! whose reads *must* meet the guard — so the refusal/stale columns are
//! deterministic rather than probe-timing lottery. Columns quantify the
//! trade: rack ops (availability), p99 (where refusal retries and
//! failover timeouts surface), catch-up traffic (pulls served, sibling
//! bounces, updates replayed), the guarded-reads split
//! (refused/stale-served) and the total staleness window.
//!
//! Deterministic like every figure: drops are a pure function of the
//! static [`FaultPlan`], catch-up is request/burst-reply over the ordered
//! fabric, and the fault-determinism tests pin this very construction
//! bit-identical across shards × threads.

use sabre_farm::{replica_sites, RecoveringWriter, ScenarioStoreExt, StoreLayout, WriteLog};
use sabre_mem::Addr;
use sabre_rack::workloads::WriterLayout;
use sabre_rack::{spec, FaultPlan, ReadMechanism, RecoveryReport, ScenarioBuilder};
use sabre_sim::Time;

use crate::table::fmt_ns;
use crate::{RunOpts, Table};

/// Rack size: four reader + four store nodes on a radix-2 fat tree, so
/// leaf 2 ({4, 5}) holds two of the three replica sites.
pub const NODES: usize = 8;

/// Replication factor.
pub const REPLICATION: usize = 3;

/// Clean-layout object payload (bytes).
pub const PAYLOAD: u32 = 208;

/// Objects per replica.
pub const OBJECTS: u64 = 8;

/// Write-log ring capacity (records) — far above the longest outage's
/// missed-update count.
pub const LOG_CAP: u64 = 2048;

const LOG_BASE: u64 = 1 << 20;
const PULL_BUF: u64 = 2 << 20;

/// The guard policy rows of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fault-free baseline: every recovery counter stays zero.
    NoOutage,
    /// Catch-up guard refuses reads; readers retry at the next replica.
    Refuse,
    /// Catch-up guard serves reads anyway, counting them stale.
    ServeStale,
}

impl Mode {
    /// All rows in presentation order.
    pub const ALL: [Mode; 3] = [Mode::NoOutage, Mode::Refuse, Mode::ServeStale];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::NoOutage => "no outage",
            Mode::Refuse => "refuse",
            Mode::ServeStale => "serve stale",
        }
    }
}

/// One row's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The guard policy.
    pub mode: Mode,
    /// Successful reads across the rack (the availability signal).
    pub ops: u64,
    /// 99th-percentile read latency (ns).
    pub p99_ns: u64,
    /// The rack-wide recovery ledger (catch-up, refusal and staleness
    /// counters from both protocol sides).
    pub recovery: RecoveryReport,
    /// Replica-binding migrations (failover + hop-triggered re-placement).
    pub migrations: u64,
}

/// Measures one guard-policy row with explicit event-loop shard and
/// worker-thread knobs. Public so the fault-determinism equivalence tests
/// can certify that *this* construction — not a copy of it — is
/// bit-identical at every `shards` × `threads` setting.
pub fn measure_threaded(mode: Mode, iters: u64, shards: usize, threads: Option<usize>) -> Point {
    let horizon = Time::from_us(40 * iters);
    let serve_stale = mode == Mode::ServeStale;
    let builder = ScenarioBuilder::new()
        .seed(7)
        .nodes(NODES)
        .fat_tree(2, 2)
        .shards(shards)
        .configure(move |cfg| {
            cfg.threads = threads;
            cfg.serve_stale = serve_stale;
        });
    let rack = builder.config().fabric.topology;
    let topo = builder.config().topology.clone();
    let sites = replica_sites(&topo.store_nodes(), REPLICATION, rack);
    assert_eq!(sites, vec![4, 6, 5], "leaf-spread placement changed");
    let builder = if mode == Mode::NoOutage {
        builder
    } else {
        // Leaf 2 — replica sites 4 and 5 together — dies for the second
        // quarter of the run.
        builder.fault(FaultPlan::new().leaf_outage(
            rack,
            2,
            Time::from_ps(horizon.as_ps() / 4),
            Time::from_ps(horizon.as_ps() / 2),
        ))
    };
    let (mut scenario, store) =
        builder.replicated_store(&sites, StoreLayout::Clean, PAYLOAD, OBJECTS);
    let wire = store.slot_bytes() as u32;
    for &rnode in &topo.reader_nodes() {
        scenario = scenario.reader_spec(
            rnode,
            0,
            spec()
                .payload(PAYLOAD)
                .mechanism(ReadMechanism::Raw)
                .wire(wire)
                .replicas(store.view_for(rnode, rack))
                .failover_timeout(Time::from_us(10))
                .replace_on_hops(2.0),
        );
    }
    // The pinned reader: a single-replica view on a leaf-2 site, so the
    // guard columns don't depend on the roaming readers' probe cadence.
    let pinned: Vec<_> = store
        .view_for(0, rack)
        .into_iter()
        .filter(|&(site, _)| site == sites[0])
        .collect();
    scenario = scenario.reader_spec(
        0,
        1,
        spec()
            .payload(PAYLOAD)
            .mechanism(ReadMechanism::Raw)
            .wire(wire)
            .replicas(pinned)
            .failover_timeout(Time::from_us(10)),
    );
    let log = WriteLog::new(Addr::new(LOG_BASE), LOG_CAP);
    for &site in &sites {
        let peers = sites
            .iter()
            .filter(|&&p| p != site)
            .map(|&p| p as u8)
            .collect();
        scenario = scenario.workload(
            site,
            0,
            Box::new(RecoveringWriter::new(
                store.object_entries(),
                PAYLOAD,
                WriterLayout::Clean,
                Time::from_ns(500),
                log,
                peers,
                Addr::new(PULL_BUF),
                8,
            )),
        );
    }
    let report = scenario.run_for(horizon);
    let m = report.rack_metrics();
    Point {
        mode,
        ops: m.ops,
        p99_ns: m.p99_ns().expect("readers completed ops"),
        recovery: report.recovery(),
        migrations: m.migrations,
    }
}

/// One row with the shipped configuration: one shard per node.
pub fn measure(mode: Mode, iters: u64) -> Point {
    measure_threaded(mode, iters, NODES, None)
}

/// Runs all three guard-policy rows.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(10, 3);
    opts.sweep(Mode::ALL)
        .map(|&mode| measure_threaded(mode, iters, NODES, opts.threads))
}

/// Renders the recovery sweep as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "fig_recovery — whole-leaf outage, catch-up, and the staleness window (k=3, 8-node fat tree)",
        &[
            "mode",
            "ops",
            "p99",
            "pulls",
            "bounces",
            "replays",
            "refused",
            "stale served",
            "staleness window",
            "migrations",
        ],
    );
    for p in data(opts) {
        let r = p.recovery;
        t.row(vec![
            p.mode.label().to_string(),
            p.ops.to_string(),
            format!("{} ns", p.p99_ns),
            r.catch_up_pulls.to_string(),
            r.catch_up_refused.to_string(),
            r.replays_applied.to_string(),
            r.stale_refusals.to_string(),
            r.stale_served.to_string(),
            fmt_ns(r.catch_up_ns as f64),
            p.migrations.to_string(),
        ]);
    }
    t
}
