//! Table 2: the simulated system's parameters, printed from the live
//! configuration so the reproduction's defaults are auditable against the
//! paper's table.

use sabre_rack::ClusterConfig;

use crate::{RunOpts, Table};

/// Renders the configuration against the paper's Table 2.
pub fn run(_opts: RunOpts) -> Table {
    let cfg = ClusterConfig::default();
    let ls = &cfg.lightsabres;
    let mut t = Table::new(
        "Table 2 — system parameters (paper vs this simulation)",
        &["component", "paper", "this simulation"],
    );
    let rows: Vec<(&str, String, String)> = vec![
        (
            "Cores",
            "16x ARM Cortex-A57-like, 2GHz, OoO".into(),
            format!(
                "{} cores/node, {} cost-modeled",
                cfg.cores_per_node,
                1.0 / cfg.cpu.clock.period().as_ns()
            ) + " GHz",
        ),
        (
            "LLC",
            "Shared NUCA, 2MB, 16-way, 6-cycle".into(),
            format!(
                "{} MB, {}-way, {} ns end-to-end",
                cfg.llc_bytes / (1024 * 1024),
                cfg.llc_ways,
                cfg.mem_timing.llc_latency.as_ns()
            ),
        ),
        (
            "Coherence",
            "Directory-based non-inclusive MESI".into(),
            "invalidation broadcast to integrated snoopers".into(),
        ),
        (
            "Memory",
            "50ns, 4x25.6 GBps DDR4".into(),
            format!(
                "{} ns array (+{} ns on-chip), {}x{} GBps",
                cfg.mem_timing.dram_latency.as_ns(),
                cfg.mem_timing.dram_overhead.as_ns(),
                cfg.mem_timing.channels,
                cfg.mem_timing.channel_gbps
            ),
        ),
        (
            "RMC",
            "3 pipelines (RGP, RCP, R2P2) @ 1GHz, 4 backends".into(),
            format!(
                "{} backend pairs + R2P2s, {} GBps issue/R2P2",
                cfg.rmc_backends, cfg.r2p2_issue_gbps
            ),
        ),
        (
            "LightSABRes",
            "16 32-entry stream buffers per R2P2 (560 B SRAM)".into(),
            format!(
                "{} x {}-entry stream buffers ({} B SRAM)",
                ls.stream_buffers,
                ls.depth,
                ls.total_sram_bytes()
            ),
        ),
        (
            "Network",
            "fixed 35ns/hop, 100 GBps".into(),
            format!(
                "{} ns/hop, {} GBps, {} B headers",
                cfg.fabric.hop_latency.as_ns(),
                cfg.fabric.link_gbps,
                cfg.fabric.header_bytes
            ),
        ),
    ];
    for (component, paper, ours) in rows {
        t.row(vec![component.to_string(), paper, ours]);
    }
    t
}
