//! Fig. 7b: peak application throughput — 16 threads issuing asynchronous
//! remote reads vs. SABRes.
//!
//! Expected shape (paper): the two curves are identical — introducing
//! per-SABRe state at the R2P2s costs no throughput — and both saturate
//! the R2P2s' aggregate issue bandwidth (4 × 20 GBps) as the transfer size
//! grows.

use sabre_rack::{spec, ReadMechanism, ScenarioBuilder};
use sabre_sim::Time;

use super::TRANSFER_SIZES;
use crate::table::fmt_gbps;
use crate::{RunOpts, Table};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Transfer size in bytes.
    pub size: u32,
    /// Aggregate plain-read throughput (GB/s).
    pub read_gbps: f64,
    /// Aggregate SABRe throughput (GB/s).
    pub sabre_gbps: f64,
}

fn measure(size: u32, mech: ReadMechanism, duration: Time) -> f64 {
    let scenario = ScenarioBuilder::new().raw_region(1, size);
    let threads = 0..scenario.config().cores_per_node;
    scenario
        .readers_spec(
            0,
            threads,
            spec().store(1).payload(size).mechanism(mech).window(4),
        )
        .run_for(duration)
        .gbps(0)
}

/// Runs the sweep.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let duration = Time::from_us(opts.pick(200, 30));
    opts.sweep(TRANSFER_SIZES).map(|&size| Point {
        size,
        read_gbps: measure(size, ReadMechanism::Raw, duration),
        sabre_gbps: measure(size, ReadMechanism::Sabre, duration),
    })
}

/// Renders the figure as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Fig. 7b — peak throughput, 16 threads async (GB/s)",
        &["size(B)", "remote reads", "LightSABRes"],
    );
    for p in data(opts) {
        t.row(vec![
            p.size.to_string(),
            fmt_gbps(p.read_gbps),
            fmt_gbps(p.sabre_gbps),
        ]);
    }
    t
}
