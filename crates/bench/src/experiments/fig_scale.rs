//! fig_scale: the first beyond-paper scenario family — rack scaling.
//!
//! The paper evaluates a two-node rack; here the Table-1 workload (1 KB
//! objects, uncontended readers) is distributed over N-node racks: half
//! the nodes read, half host store shards, the fabric is a rack-level 2D
//! mesh (one 35 ns hop per Manhattan step), and every reader node is
//! paired round-robin with a store shard. The event loop runs fully
//! sharded — one shard per node — which the equivalence tests pin
//! bit-identical to the single-shard run.
//!
//! Expected shape: aggregate goodput scales with the reader count (each
//! reader pair is an independent point-to-point stream), while per-op
//! latency rises only by the extra mesh hops between a reader and its
//! shard — atomicity (SABRe or software) costs no more at 8 nodes than at
//! 2.

use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_rack::{spec, ReadMechanism, ScenarioBuilder};
use sabre_sim::Time;

use crate::table::{fmt_gbps, fmt_ns};
use crate::{RunOpts, Table};

/// The object payload (the Table-1 comparison object).
pub const PAYLOAD: u32 = 1024;

/// Reader cores per reader node (a slice of the chip, so an 8-node sweep
/// point stays cheap to simulate).
pub const CORES_PER_READER_NODE: usize = 2;

/// Objects per store shard.
pub const OBJECTS_PER_SHARD: u64 = 128;

/// The node counts swept.
pub const NODE_COUNTS: [usize; 4] = [2, 4, 6, 8];

/// The read mechanisms compared at every node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Plain one-sided reads, no atomicity (the scaling baseline).
    Raw,
    /// Hardware SABRes (destination OCC).
    Sabre,
    /// FaRM per-cache-line versions, validated on the reader CPU.
    PerCl,
    /// Pilaf checksums, validated on the reader CPU.
    Checksum,
}

impl Mechanism {
    /// All mechanisms in presentation order.
    pub const ALL: [Mechanism; 4] = [
        Mechanism::Raw,
        Mechanism::Sabre,
        Mechanism::PerCl,
        Mechanism::Checksum,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Raw => "raw read",
            Mechanism::Sabre => "SABRe",
            Mechanism::PerCl => "FaRM perCL",
            Mechanism::Checksum => "Pilaf CRC64",
        }
    }

    /// The store layout this mechanism reads.
    pub fn layout(self) -> StoreLayout {
        match self {
            Mechanism::Raw | Mechanism::Sabre => StoreLayout::Clean,
            Mechanism::PerCl => StoreLayout::PerCl,
            Mechanism::Checksum => StoreLayout::Checksum,
        }
    }

    /// The matching reader mechanism.
    pub fn read_mechanism(self) -> ReadMechanism {
        match self {
            Mechanism::Raw => ReadMechanism::Raw,
            Mechanism::Sabre => ReadMechanism::Sabre,
            Mechanism::PerCl => ReadMechanism::PerClValidate { payload: PAYLOAD },
            Mechanism::Checksum => ReadMechanism::ChecksumValidate { payload: PAYLOAD },
        }
    }
}

/// One sweep point's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Rack size in nodes.
    pub nodes: usize,
    /// The read mechanism.
    pub mech: Mechanism,
    /// Mean end-to-end latency over every reader core (ns).
    pub latency_ns: f64,
    /// Aggregate rack goodput (GB/s).
    pub total_gbps: f64,
    /// Slowest reader node's goodput (GB/s) — placement imbalance floor.
    pub min_reader_gbps: f64,
    /// Fastest reader node's goodput (GB/s).
    pub max_reader_gbps: f64,
}

/// Measures one `(nodes, mechanism)` point with an explicit event-loop
/// shard count. Public (with the shard knob) so the equivalence tests can
/// certify that *this* construction — not a copy of it — is bit-identical
/// at every shard count.
pub fn measure_sharded(nodes: usize, mech: Mechanism, iters: u64, shards: usize) -> Point {
    measure_threaded(nodes, mech, iters, shards, None)
}

/// [`measure_sharded`] with an explicit worker-thread count driving the
/// shards (`None`: the cluster's default resolution) — the knob the
/// equivalence tests sweep to certify the shipped experiment is
/// bit-identical at every thread count too.
pub fn measure_threaded(
    nodes: usize,
    mech: Mechanism,
    iters: u64,
    shards: usize,
    threads: Option<usize>,
) -> Point {
    let builder = ScenarioBuilder::new()
        .nodes(nodes)
        .shards(shards)
        .configure(|cfg| cfg.threads = threads);
    let topo = builder.config().topology.clone();
    let (builder, store_shards) = builder.sharded_store(
        topo.store_nodes(),
        mech.layout(),
        PAYLOAD,
        OBJECTS_PER_SHARD,
    );
    let readers = topo.reader_nodes();
    let placements: Vec<(usize, usize)> = readers
        .iter()
        .flat_map(|&node| (0..CORES_PER_READER_NODE).map(move |core| (node, core)))
        .collect();
    let reader_index: std::collections::HashMap<usize, usize> = readers
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, i))
        .collect();
    let report = builder
        .readers_grid_spec(placements, move |node, _core, _targets| {
            let shard = &store_shards[reader_index[&node] % store_shards.len()];
            spec()
                .store(shard.node() as usize)
                .payload(PAYLOAD)
                .mechanism(mech.read_mechanism())
                .wire(shard.slot_bytes() as u32)
                .objects(shard.object_addrs())
        })
        .run_for(Time::from_us(20 * iters));

    let mut latencies = Vec::new();
    for &node in &readers {
        for core in 0..CORES_PER_READER_NODE {
            let m = report.core(node, core);
            assert!(m.ops > 0, "reader {node}.{core} completed no ops");
            latencies.push(m.latency.mean().expect("ops completed"));
        }
    }
    let per_node = report.node_reports();
    let reader_gbps: Vec<f64> = per_node
        .iter()
        .filter(|n| n.role == sabre_rack::NodeRole::Reader)
        .map(|n| n.gbps)
        .collect();
    Point {
        nodes,
        mech,
        latency_ns: latencies.iter().sum::<f64>() / latencies.len() as f64,
        total_gbps: report.total_gbps(),
        min_reader_gbps: reader_gbps.iter().copied().fold(f64::INFINITY, f64::min),
        max_reader_gbps: reader_gbps.iter().copied().fold(0.0, f64::max),
    }
}

/// [`measure_sharded`] with the shipped configuration: one event-loop
/// shard per node.
pub fn measure(nodes: usize, mech: Mechanism, iters: u64) -> Point {
    measure_sharded(nodes, mech, iters, nodes)
}

/// Runs the full sweep: node count × mechanism.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(25, 3);
    let points: Vec<(usize, Mechanism)> = NODE_COUNTS
        .iter()
        .flat_map(|&n| Mechanism::ALL.iter().map(move |&m| (n, m)))
        .collect();
    // `--threads` (or `SABRES_THREADS`) caps the in-cluster shard workers
    // the same way it caps the sweep pool; results are identical either
    // way, which the golden/equivalence tests pin down.
    opts.sweep(points)
        .map(|&(nodes, mech)| measure_threaded(nodes, mech, iters, nodes, opts.threads))
}

/// Renders the scaling sweep as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "fig_scale — rack scaling beyond the paper's pair (1 KB objects, mesh fabric)",
        &[
            "nodes",
            "mechanism",
            "mean latency",
            "rack goodput",
            "per-reader-node GB/s",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.nodes.to_string(),
            p.mech.label().to_string(),
            fmt_ns(p.latency_ns),
            fmt_gbps(p.total_gbps),
            format!("{:.2}..{:.2}", p.min_reader_gbps, p.max_reader_gbps),
        ]);
    }
    t
}
