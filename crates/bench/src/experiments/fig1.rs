//! Fig. 1: end-to-end latency breakdown of an atomic remote object read
//! using FaRM's per-cache-line-versions software mechanism over soNUMA.
//!
//! The motivating figure: the transfer itself scales sublinearly with
//! object size (soNUMA's fabric is fast), while the software atomicity
//! check scales linearly — from ≈10% of end-to-end latency at 128 B to
//! ≈50% at 8 KB.

use sabre_farm::{FarmCosts, FarmReader, KvStore, ScenarioStoreExt, StoreLayout};
use sabre_rack::{Phase, ScenarioBuilder};
use sabre_sim::Time;

use super::OBJECT_SIZES;
use crate::table::fmt_ns;
use crate::{RunOpts, Table};

/// One sweep point: the three stacked components of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Object payload size.
    pub size: u32,
    /// soNUMA transfer time (ns).
    pub transfer_ns: f64,
    /// Framework + application time (ns).
    pub framework_app_ns: f64,
    /// Version stripping + atomicity check time (ns).
    pub strip_ns: f64,
    /// End-to-end mean latency (ns).
    pub e2e_ns: f64,
}

impl Point {
    /// Fraction of end-to-end latency spent in the software check.
    pub fn strip_share(&self) -> f64 {
        self.strip_ns / self.e2e_ns
    }
}

/// Runs the sweep: one FaRM reader, per-CL store, memory-resident objects.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(100, 10);
    opts.sweep(OBJECT_SIZES).map(|&size| {
        let (scenario, store) = ScenarioBuilder::new().store(1, StoreLayout::PerCl, size, None);
        let report = scenario
            .reader(0, 0, move |_| {
                let kv = KvStore::new(store, 100_000);
                Box::new(FarmReader::endless(kv, FarmCosts::default()))
            })
            .run_for(Time::from_us(12 * iters));
        let m = report.core(0, 0);
        assert!(m.ops >= iters / 2, "too few lookups: {}", m.ops);
        let transfer = m.phase_mean_ns(Phase::Transfer).unwrap_or(0.0);
        let framework = m.phase_mean_ns(Phase::Framework).unwrap_or(0.0)
            + m.phase_mean_ns(Phase::App).unwrap_or(0.0);
        let strip = m.phase_mean_ns(Phase::Strip).unwrap_or(0.0);
        Point {
            size,
            transfer_ns: transfer,
            framework_app_ns: framework,
            strip_ns: strip,
            e2e_ns: m.latency.mean().expect("ops completed"),
        }
    })
}

/// Renders the figure as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Fig. 1 — E2E latency breakdown, per-CL versions on FaRM/soNUMA",
        &[
            "size(B)",
            "transfer",
            "framework+app",
            "stripping",
            "E2E",
            "strip share",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.size.to_string(),
            fmt_ns(p.transfer_ns),
            fmt_ns(p.framework_app_ns),
            fmt_ns(p.strip_ns),
            fmt_ns(p.e2e_ns),
            format!("{:.0}%", p.strip_share() * 100.0),
        ]);
    }
    t
}
