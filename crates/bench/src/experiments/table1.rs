//! Table 1: the design space for one-sided atomic object reads —
//! {source, destination} × {locking, OCC} — exercised end to end.
//!
//! One reader per quadrant reads 1 KB objects from remote memory:
//!
//! * **source locking** (DrTM): remote CAS roundtrip, then the data read,
//!   then an asynchronous unlock — ≈2 roundtrips of latency;
//! * **source OCC** (FaRM / Pilaf): one roundtrip plus the post-transfer
//!   software check (strip or CRC) on the CPU;
//! * **destination locking** (SABRes, locking mode): one roundtrip; the
//!   R2P2 acquires a shared reader lock at the data;
//! * **destination OCC** (SABRes, the paper's configuration): one
//!   roundtrip, version-checked in hardware.

use sabre_core::CcMode;
use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_rack::{spec, ReadMechanism, ScenarioBuilder};
use sabre_sim::Time;

use crate::table::fmt_ns;
use crate::{RunOpts, Table};

/// The four quadrants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quadrant {
    /// DrTM-style remote locking.
    SourceLocking,
    /// FaRM-style per-CL versions (source OCC).
    SourceOccPerCl,
    /// Pilaf-style checksums (source OCC).
    SourceOccChecksum,
    /// SABRes in destination-locking mode.
    DestLocking,
    /// SABRes in destination-OCC mode (the paper's proposal).
    DestOcc,
}

impl Quadrant {
    /// All quadrants in presentation order.
    pub const ALL: [Quadrant; 5] = [
        Quadrant::SourceLocking,
        Quadrant::SourceOccPerCl,
        Quadrant::SourceOccChecksum,
        Quadrant::DestLocking,
        Quadrant::DestOcc,
    ];

    fn label(self) -> &'static str {
        match self {
            Quadrant::SourceLocking => "source locking (DrTM)",
            Quadrant::SourceOccPerCl => "source OCC (FaRM perCL)",
            Quadrant::SourceOccChecksum => "source OCC (Pilaf CRC64)",
            Quadrant::DestLocking => "destination locking (SABRe)",
            Quadrant::DestOcc => "destination OCC (SABRe)",
        }
    }

    fn roundtrips(self) -> &'static str {
        match self {
            Quadrant::SourceLocking => "2 (+async unlock)",
            _ => "1",
        }
    }
}

/// One quadrant's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The quadrant.
    pub quadrant: Quadrant,
    /// Mean atomic-read latency for a 1 KB object (ns).
    pub latency_ns: f64,
}

/// The object payload used for the comparison.
pub const PAYLOAD: u32 = 1024;

/// Measures one quadrant. Public so the scenario equivalence test
/// certifies *this* construction, not a copy of it.
pub fn measure(quadrant: Quadrant, iters: u64) -> f64 {
    let layout = match quadrant {
        Quadrant::SourceOccPerCl => StoreLayout::PerCl,
        Quadrant::SourceOccChecksum => StoreLayout::Checksum,
        _ => StoreLayout::Clean,
    };
    let (scenario, _store) = ScenarioBuilder::new()
        .configure(|cfg| {
            if quadrant == Quadrant::DestLocking {
                cfg.lightsabres.cc_mode = CcMode::Locking;
            }
        })
        .store(1, layout, PAYLOAD, Some(512));
    let report = scenario
        .reader(0, 0, move |objects| -> Box<dyn sabre_rack::Workload> {
            let base = spec().store(1).payload(PAYLOAD);
            match quadrant {
                Quadrant::SourceLocking => base.source_locking(),
                Quadrant::SourceOccPerCl => {
                    base.mechanism(ReadMechanism::PerClValidate { payload: PAYLOAD })
                }
                Quadrant::SourceOccChecksum => {
                    base.mechanism(ReadMechanism::ChecksumValidate { payload: PAYLOAD })
                }
                Quadrant::DestLocking | Quadrant::DestOcc => base
                    .mechanism(ReadMechanism::Sabre)
                    .wire(StoreLayout::Clean.object_bytes(PAYLOAD as usize) as u32),
            }
            .build(objects)
        })
        .run_for(Time::from_us(20 * iters));
    let m = report.core(0, 0);
    assert!(
        m.ops >= iters / 2,
        "too few ops for {quadrant:?}: {}",
        m.ops
    );
    m.latency.mean().expect("ops completed")
}

/// Runs all quadrants.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(100, 10);
    opts.sweep(Quadrant::ALL).map(|&quadrant| Point {
        quadrant,
        latency_ns: measure(quadrant, iters),
    })
}

/// Renders the design-space comparison as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "Table 1 — design space for one-sided atomic object reads (1 KB, uncontended)",
        &["mechanism", "roundtrips", "mean latency"],
    );
    for p in data(opts) {
        t.row(vec![
            p.quadrant.label().to_string(),
            p.quadrant.roundtrips().to_string(),
            fmt_ns(p.latency_ns),
        ]);
    }
    t
}
