//! fig_failover: availability under crash faults — replicated stores,
//! reader failover, and replica-placement policy.
//!
//! The third beyond-paper scenario family. The paper's evaluation keeps
//! every node alive; this experiment asks what a SABRe-based object store
//! costs to keep *available* when store nodes crash. The Table-1 workload
//! (1 KB objects) runs on an 8-node two-leaf fat tree with a 1:1 role
//! split; each object set is replicated on three of the four store nodes
//! ([`replica_sites`] spreads the sites across both leaves), and mid-run
//! the [`FaultPlan`] crashes the leaf-0 primary for
//! a quarter of the run. Crashed nodes drop every packet to, from, or
//! already addressed to them, so a read in flight at the crash instant
//! simply never completes — the reader's failover timer is the only way
//! forward.
//!
//! Two axes sweep: the read **mechanism** (raw / SABRe / FaRM per-CL /
//! Pilaf CRC64, all over the same replicated placement) and the
//! **replica-selection policy** — static round-robin (no failure memory:
//! during the outage every k-th operation eats a timeout) against the
//! adaptive binding (one timeout per affected core, then leaf-local
//! failover, then a probe migrates back after recovery). Expected shape:
//! identical op counts and latencies *across mechanisms* up to their usual
//! validation overheads, and across policies a large failover-count gap —
//! static pays one per rotation hit, adaptive pays a handful total — which
//! is what the `migrations` column and the p99 gap quantify.
//!
//! Everything here is deterministic: drops are a pure function of the
//! static plan, timers are per-core events, and the percentile columns
//! come from the merged integer histogram, so the table is bit-identical
//! at every shards × threads setting (pinned by the fault-determinism
//! equivalence tests) and golden-diffable.

use sabre_farm::{replica_sites, ScenarioStoreExt};
use sabre_rack::{spec, FaultPlan, ScenarioBuilder, Topology};
use sabre_sim::Time;

use crate::experiments::fig_scale::{Mechanism, CORES_PER_READER_NODE, OBJECTS_PER_SHARD, PAYLOAD};
use crate::table::fmt_ns;
use crate::{RunOpts, Table};

/// Rack size: four store + four reader nodes on a two-leaf fat tree.
pub const NODES: usize = 8;

/// Replication factor: three of the four store nodes hold each object.
pub const REPLICATION: usize = 3;

/// The failover timer: comfortably above every mechanism's healthy
/// closed-loop latency, so only genuinely lost reads trip it.
pub const FAILOVER_TIMEOUT: Time = Time::from_us(10);

/// The replica-selection policies compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Round-robin over the replica list, no failure memory.
    Static,
    /// Bind to the nearest replica, migrate on failure, probe back.
    Adaptive,
}

impl Policy {
    /// Both policies in presentation order.
    pub const ALL: [Policy; 2] = [Policy::Static, Policy::Adaptive];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Static => "static rr",
            Policy::Adaptive => "adaptive",
        }
    }
}

/// One sweep point's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The read mechanism.
    pub mech: Mechanism,
    /// The replica-selection policy.
    pub policy: Policy,
    /// Successful operations across the rack (the availability signal:
    /// ops lost to the outage never come back).
    pub ops: u64,
    /// Mean end-to-end latency over every reader core (ns), timeouts
    /// included.
    pub latency_ns: f64,
    /// 99th-percentile latency (ns) from the merged integer histogram —
    /// where the failover timeouts surface.
    pub p99_ns: u64,
    /// Attempts abandoned to a failover timer across the rack.
    pub failovers: u64,
    /// Replica-binding migrations (adaptive policy only; static stays 0).
    pub migrations: u64,
}

/// Measures one `(mechanism, policy)` point with explicit event-loop
/// shard and worker-thread knobs. Public so the fault-determinism
/// equivalence tests can certify that *this* construction — not a copy of
/// it — is bit-identical at every `shards` × `threads` setting.
pub fn measure_threaded(
    mech: Mechanism,
    policy: Policy,
    iters: u64,
    shards: usize,
    threads: Option<usize>,
) -> Point {
    let horizon = Time::from_us(20 * iters);
    let builder = ScenarioBuilder::new()
        .topology(Topology::skewed(4, 1))
        .fat_tree(4, 2)
        .shards(shards)
        .configure(|cfg| cfg.threads = threads);
    let cfg = builder.config().clone();
    assert_eq!(cfg.nodes, NODES, "the sweep is pinned to the 8-node rack");
    let topo = cfg.topology.clone();
    let rack = cfg.fabric.topology;
    let sites = replica_sites(&topo.store_nodes(), REPLICATION, rack);
    // Crash the leaf-0 primary for the second quarter of the run: reads
    // already in flight are lost, leaf-0 readers fail over, and the
    // adaptive policy migrates back once its probe finds the node again.
    let crash_site = sites[0];
    let builder = builder.fault(FaultPlan::new().crash_restore(
        crash_site,
        Time::from_ps(horizon.as_ps() / 4),
        Time::from_ps(horizon.as_ps() / 2),
    ));
    let (builder, store) =
        builder.replicated_store(&sites, mech.layout(), PAYLOAD, OBJECTS_PER_SHARD);
    let readers = topo.reader_nodes();
    let placements: Vec<(usize, usize)> = readers
        .iter()
        .flat_map(|&node| (0..CORES_PER_READER_NODE).map(move |core| (node, core)))
        .collect();
    let wire = store.slot_bytes() as u32;
    let report = builder
        .readers_grid_spec(placements, move |node, _core, _targets| {
            spec()
                .replicas(store.view_for(node, rack))
                .payload(PAYLOAD)
                .mechanism(mech.read_mechanism())
                .wire(wire)
                .failover_timeout(FAILOVER_TIMEOUT)
                .migrate(policy == Policy::Adaptive)
        })
        .run_for(horizon);

    let mut latencies = Vec::new();
    for &node in &readers {
        for core in 0..CORES_PER_READER_NODE {
            let m = report.core(node, core);
            assert!(m.ops > 0, "reader {node}.{core} completed no ops");
            latencies.push(m.latency.mean().expect("ops completed"));
        }
    }
    let m = report.rack_metrics();
    Point {
        mech,
        policy,
        ops: m.ops,
        latency_ns: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p99_ns: m.p99_ns().expect("ops recorded"),
        failovers: m.failovers,
        migrations: m.migrations,
    }
}

/// [`measure_threaded`] with the cluster's default thread resolution.
pub fn measure_sharded(mech: Mechanism, policy: Policy, iters: u64, shards: usize) -> Point {
    measure_threaded(mech, policy, iters, shards, None)
}

/// One point with the shipped configuration: one shard per node.
pub fn measure(mech: Mechanism, policy: Policy, iters: u64) -> Point {
    measure_sharded(mech, policy, iters, NODES)
}

/// Runs the full sweep: mechanism × policy.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(25, 3);
    let points: Vec<(Mechanism, Policy)> = Mechanism::ALL
        .iter()
        .flat_map(|&m| Policy::ALL.iter().map(move |&p| (m, p)))
        .collect();
    opts.sweep(points)
        .map(|&(mech, policy)| measure_threaded(mech, policy, iters, NODES, opts.threads))
}

/// Renders the failover sweep as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "fig_failover — availability under a store crash (k=3 replicas, 8-node fat tree)",
        &[
            "mechanism",
            "policy",
            "ops",
            "mean latency",
            "p99",
            "failovers",
            "migrations",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.mech.label().to_string(),
            p.policy.label().to_string(),
            p.ops.to_string(),
            fmt_ns(p.latency_ns),
            format!("{} ns", p.p99_ns),
            p.failovers.to_string(),
            p.migrations.to_string(),
        ]);
    }
    t
}
