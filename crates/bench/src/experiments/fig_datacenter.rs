//! fig_datacenter: the third beyond-paper scenario family — from one rack
//! to a datacenter row.
//!
//! `fig_scale` grew the paper's pair into an 8-node rack and
//! `fig_placement` showed what fabric geometry costs inside one rack; this
//! experiment crosses the next boundary. The Table-1 workload (1 KB
//! objects, uncontended readers) runs on 2–8 racks of a two-level
//! [`Datacenter`](sabre_rack::ScenarioBuilder::datacenter) fabric: each
//! rack is a radix-4 fat tree (16 nodes — one store and three readers per
//! leaf), racks are joined by an inter-rack spine whose 350 ns
//! per-crossing latency dwarfs the 35 ns intra-rack hop, and the spine
//! uplinks are oversubscribed once more on top of the leaf level.
//!
//! Three axes sweep:
//!
//! * **racks** — 2, 4 and 8 (32 to 128 nodes), the largest points far
//!   beyond anything earlier figures touch;
//! * **mechanism** — plain one-sided reads against hardware SABRes, so the
//!   atomicity-is-free claim is re-checked across the spine;
//! * **placement** — round-robin reader→shard pairing against
//!   [`NearestShard`](sabre_rack::PlacementPolicy::NearestShard). The
//!   skewed role split puts one store on every leaf, so nearest-shard
//!   placement can keep *every* reader rack-local while round-robin drags
//!   most reads across the spine.
//!
//! Expected shape: round-robin's cross-spine hop share sits near the
//! `(racks-1)/racks` random-target floor and its latency carries the spine
//! crossing twice (request + reply, ≈ 700 ns over rack-local); nearest
//! keeps the spine share at zero and its latency flat as racks grow.
//! Goodput scales with the reader count for both mechanisms — SABRes stay
//! as free across the spine as inside the rack.

use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_rack::{spec, PlacementPolicy, ReadMechanism, ScenarioBuilder, Topology};
use sabre_sim::Time;

use crate::table::{fmt_gbps, fmt_ns};
use crate::{RunOpts, Table};

/// The object payload (the Table-1 comparison object).
pub const PAYLOAD: u32 = 1024;

/// Reader cores per reader node (one — the big points have 96 reader
/// nodes, so a single core per node is already a 96-reader sweep point).
pub const CORES_PER_READER_NODE: usize = 1;

/// Objects per store shard.
pub const OBJECTS_PER_SHARD: u64 = 64;

/// Downlinks per leaf: 16-node racks of 4 leaves, one store + three
/// readers per leaf (the skewed split below aligns cohorts with leaves).
pub const RADIX: u8 = 4;

/// Spine/leaf uplink oversubscription.
pub const OVERSUBSCRIPTION: u8 = 2;

/// The rack counts swept.
pub const RACK_COUNTS: [u8; 3] = [2, 4, 8];

/// The read mechanisms compared at every rack count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Plain one-sided reads, no atomicity (the scaling baseline).
    Raw,
    /// Hardware SABRes (destination OCC).
    Sabre,
}

impl Mechanism {
    /// Both mechanisms in presentation order.
    pub const ALL: [Mechanism; 2] = [Mechanism::Raw, Mechanism::Sabre];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Raw => "raw read",
            Mechanism::Sabre => "SABRe",
        }
    }

    /// The matching reader mechanism.
    pub fn read_mechanism(self) -> ReadMechanism {
        match self {
            Mechanism::Raw => ReadMechanism::Raw,
            Mechanism::Sabre => ReadMechanism::Sabre,
        }
    }
}

/// The reader→shard policies swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The historical default pairing (ignores rack geometry).
    RoundRobin,
    /// Geometry-aware pairing
    /// ([`PlacementPolicy::NearestShard`]): with one store per leaf it
    /// keeps every reader rack-local.
    Nearest,
}

impl Placement {
    /// Both policies in presentation order.
    pub const ALL: [Placement; 2] = [Placement::RoundRobin, Placement::Nearest];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::Nearest => "nearest",
        }
    }

    /// The rack-level policy.
    pub fn policy(self) -> PlacementPolicy {
        match self {
            Placement::RoundRobin => PlacementPolicy::RoundRobin,
            Placement::Nearest => PlacementPolicy::NearestShard,
        }
    }
}

/// One sweep point's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Racks in the datacenter (16 nodes each).
    pub racks: u8,
    /// The read mechanism.
    pub mech: Mechanism,
    /// The reader→shard policy.
    pub placement: Placement,
    /// Mean end-to-end latency over every reader core (ns).
    pub latency_ns: f64,
    /// 99th-percentile end-to-end latency over every successful op (ns).
    pub p99_ns: u64,
    /// Aggregate goodput over every rack (GB/s).
    pub total_gbps: f64,
    /// Share of sent packets that crossed the inter-rack spine
    /// ([`sabre_sim::HopStats::spine_share`] over the whole fabric).
    pub spine_share: f64,
}

/// Nodes in a `racks`-rack datacenter point.
pub fn nodes_for(racks: u8) -> usize {
    racks as usize * (RADIX as usize) * (RADIX as usize)
}

/// Measures one `(racks, mechanism, placement)` point with explicit
/// event-loop shard and worker-thread knobs. Public so the equivalence and
/// invariant tests can certify that *this* construction — not a copy of it
/// — is bit-identical at every `shards` × `threads` setting.
pub fn measure_threaded(
    racks: u8,
    mech: Mechanism,
    placement: Placement,
    iters: u64,
    shards: usize,
    threads: Option<usize>,
) -> Point {
    let nodes = nodes_for(racks);
    // One store followed by three readers per leaf: cohorts align with
    // the radix-4 leaves, so NearestShard has a rack-local (indeed
    // leaf-local) shard to pick for every reader.
    let builder = ScenarioBuilder::new()
        .topology(Topology::skewed(nodes / 4, 3).with_placement(placement.policy()))
        .datacenter(racks, RADIX, OVERSUBSCRIPTION)
        .shards(shards)
        .configure(|cfg| {
            cfg.threads = threads;
            // 64 one-KB objects per shard fit comfortably in 2 MB; the
            // default 16 MB per node would cost the 128-node points two
            // gigabytes of host memory each.
            cfg.memory_bytes = 2 * 1024 * 1024;
        });
    let cfg = builder.config().clone();
    assert_eq!(cfg.nodes, nodes, "every split must fill its racks");
    let topo = cfg.topology.clone();
    let store_nodes = topo.store_nodes();
    let (builder, store_shards) = builder.sharded_store(
        store_nodes.clone(),
        StoreLayout::Clean,
        PAYLOAD,
        OBJECTS_PER_SHARD,
    );
    let readers = topo.reader_nodes();
    let placements: Vec<(usize, usize)> = readers
        .iter()
        .flat_map(|&node| (0..CORES_PER_READER_NODE).map(move |core| (node, core)))
        .collect();
    let reader_index: std::collections::HashMap<usize, usize> = readers
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, i))
        .collect();
    let report = builder
        .readers_grid_spec(placements, move |node, _core, _targets| {
            let store = cfg.store_for_reader(reader_index[&node]);
            let shard_pos = store_nodes
                .iter()
                .position(|&s| s == store)
                .expect("placement returns a store node");
            let shard = &store_shards[shard_pos];
            spec()
                .store(shard.node() as usize)
                .payload(PAYLOAD)
                .mechanism(mech.read_mechanism())
                .wire(shard.slot_bytes() as u32)
                .objects(shard.object_addrs())
        })
        .run_for(Time::from_us(10 * iters));

    let mut latencies = Vec::new();
    for &node in &readers {
        for core in 0..CORES_PER_READER_NODE {
            let m = report.core(node, core);
            assert!(m.ops > 0, "reader {node}.{core} completed no ops");
            latencies.push(m.latency.mean().expect("ops completed"));
        }
    }
    let (_, p99, _) = report.latency_percentiles().expect("readers completed ops");
    Point {
        racks,
        mech,
        placement,
        latency_ns: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p99_ns: p99,
        total_gbps: report.total_gbps(),
        spine_share: report.hop_stats().spine_share(),
    }
}

/// [`measure_threaded`] with the shipped configuration: one event-loop
/// shard per node, serial worker resolution.
pub fn measure(racks: u8, mech: Mechanism, placement: Placement, iters: u64) -> Point {
    measure_threaded(racks, mech, placement, iters, nodes_for(racks), None)
}

/// Runs the full sweep: rack count × mechanism × placement.
pub fn data(opts: RunOpts) -> Vec<Point> {
    let iters = opts.pick(10, 2);
    let points: Vec<(u8, Mechanism, Placement)> = RACK_COUNTS
        .iter()
        .flat_map(|&r| {
            Mechanism::ALL
                .iter()
                .flat_map(move |&m| Placement::ALL.iter().map(move |&p| (r, m, p)))
        })
        .collect();
    opts.sweep(points).map(|&(racks, mech, placement)| {
        measure_threaded(
            racks,
            mech,
            placement,
            iters,
            nodes_for(racks),
            opts.threads,
        )
    })
}

/// Renders the datacenter sweep as a table.
pub fn run(opts: RunOpts) -> Table {
    let mut t = Table::new(
        "fig_datacenter — two-level spine scaling (16-node racks, 1 KB SABRes)",
        &[
            "racks",
            "mechanism",
            "placement",
            "mean latency",
            "p99",
            "goodput",
            "spine share",
        ],
    );
    for p in data(opts) {
        t.row(vec![
            p.racks.to_string(),
            p.mech.label().to_string(),
            p.placement.label().to_string(),
            fmt_ns(p.latency_ns),
            fmt_ns(p.p99_ns as f64),
            fmt_gbps(p.total_gbps),
            format!("{:.2}", p.spine_share),
        ]);
    }
    t
}
