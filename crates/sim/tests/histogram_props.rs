//! The deterministic latency histogram's algebraic contract: merging is
//! an exact element-wise bucket sum, so it must be associative and
//! commutative, and any partition of a sample stream across histograms
//! must merge back to the histogram of the whole stream — the property
//! that makes per-core (and per-shard) accumulation order irrelevant to
//! every reported percentile.

use proptest::prelude::*;

use sabre_sim::LatencyHistogram;

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &ns in samples {
        h.record(ns);
    }
    h
}

fn fingerprint(h: &LatencyHistogram) -> (u64, String, Vec<Option<u64>>) {
    (
        h.count(),
        h.dump(),
        vec![h.p50(), h.p99(), h.p999(), h.min_ns(), h.max_ns()],
    )
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..2_000_000, 0..100),
        b in proptest::collection::vec(0u64..2_000_000, 0..100),
        c in proptest::collection::vec(0u64..2_000_000, 0..100),
    ) {
        // (a ∪ b) ∪ c
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        // a ∪ (b ∪ c)
        let mut right_tail = hist_of(&b);
        right_tail.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&right_tail);
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
        // c ∪ b ∪ a
        let mut rev = hist_of(&c);
        rev.merge(&hist_of(&b));
        rev.merge(&hist_of(&a));
        prop_assert_eq!(fingerprint(&left), fingerprint(&rev));
    }

    #[test]
    fn any_partition_merges_to_the_whole(
        samples in proptest::collection::vec(0u64..10_000_000, 1..200),
        cut_a in any::<usize>(),
        cut_b in any::<usize>(),
    ) {
        // Split the stream at two arbitrary points — the three parts are
        // "cores"; merging them must reproduce recording everything into
        // one histogram, bucket for bucket.
        let whole = hist_of(&samples);
        let (lo, hi) = {
            let a = cut_a % (samples.len() + 1);
            let b = cut_b % (samples.len() + 1);
            (a.min(b), a.max(b))
        };
        let mut merged = hist_of(&samples[..lo]);
        merged.merge(&hist_of(&samples[lo..hi]));
        merged.merge(&hist_of(&samples[hi..]));
        prop_assert_eq!(fingerprint(&whole), fingerprint(&merged));
    }

    #[test]
    fn quantiles_respect_the_resolution_bound(
        samples in proptest::collection::vec(1u64..100_000_000, 1..100),
        q in 0.0f64..1.0,
    ) {
        // Every reported quantile is the upper edge of a bucket that
        // actually contains samples, clamped to the true max: never more
        // than 6.25% above a recorded value, never below the minimum.
        let h = hist_of(&samples);
        let v = h.quantile(q).unwrap();
        let max = *samples.iter().max().unwrap();
        let min = *samples.iter().min().unwrap();
        prop_assert!(v <= max, "quantile {v} above true max {max}");
        prop_assert!(v >= min, "quantile {v} below true min {min}");
        let covered = samples.iter().any(|&s| s <= v && v as f64 <= s as f64 * 1.0625);
        prop_assert!(covered, "quantile {v} not within 6.25% above any sample");
    }
}
