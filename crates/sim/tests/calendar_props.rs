//! The calendar queue's ordering contract, pinned against [`EventQueue`]:
//! for any interleaving of schedules and pops, both queues must yield the
//! exact same `(time, event)` sequence — the property that makes them
//! interchangeable inside the deterministic event loop.

use proptest::prelude::*;

use sabre_sim::{CalendarQueue, EventQueue, Time};

type Popped = Vec<(Time, u32)>;

/// Drives both queues through the same schedule/pop script. Scheduled
/// times are derived from the running "now" (the last popped timestamp)
/// plus a pseudo-random offset, mimicking a simulation loop that never
/// schedules into the past; offsets span the calendar's current window,
/// its live buckets, and its overflow heap.
fn run_script(width_ns: u64, ops: &[(bool, u64)]) -> (Popped, Popped) {
    let mut heap = EventQueue::new();
    let mut cal = CalendarQueue::new(Time::from_ns(width_ns));
    let (mut heap_out, mut cal_out) = (Vec::new(), Vec::new());
    let mut now = Time::ZERO;
    let mut id = 0u32;
    for &(is_pop, sel) in ops {
        if is_pop {
            let h = heap.pop();
            let c = cal.pop();
            assert_eq!(
                h.map(|(t, _)| t),
                c.map(|(t, _)| t),
                "pop times diverged at event {id}"
            );
            if let Some((t, e)) = h {
                now = t;
                heap_out.push((t, e));
            }
            if let Some((t, e)) = c {
                cal_out.push((t, e));
            }
        } else {
            // Offsets hit all three storage regions: dense near-window
            // work, bucketed near future, sparse far future.
            let offset = match sel % 5 {
                0 => sel % width_ns,                          // current window
                1..=3 => sel % (width_ns * 40),               // live buckets
                _ => width_ns * 100 + sel % (width_ns * 500), // overflow
            };
            let at = now + Time::from_ns(offset);
            heap.schedule(at, id);
            cal.schedule(at, id);
            id += 1;
        }
    }
    // Drain what's left.
    while let Some(e) = heap.pop() {
        heap_out.push(e);
    }
    while let Some(e) = cal.pop() {
        cal_out.push(e);
    }
    (heap_out, cal_out)
}

proptest! {
    #[test]
    fn calendar_replays_event_queue_bit_for_bit(
        width in 1u64..100,
        script in proptest::collection::vec((any::<bool>(), any::<u64>()), 1..400),
    ) {
        let (heap_out, cal_out) = run_script(width, &script);
        prop_assert_eq!(heap_out, cal_out);
    }

    #[test]
    fn calendar_preserves_fifo_under_timestamp_collisions(
        width in 1u64..50,
        collisions in proptest::collection::vec(0u64..4, 1..200),
    ) {
        // Many events on few distinct timestamps: the hardest case for
        // FIFO-at-equal-times. Expected order is schedule order within
        // each timestamp, which EventQueue defines.
        let script: Vec<(bool, u64)> = collisions.iter().map(|&c| (false, c * width)).collect();
        let (heap_out, cal_out) = run_script(width, &script);
        prop_assert_eq!(heap_out, cal_out);
    }
}
