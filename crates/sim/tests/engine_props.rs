//! Property tests of the simulation engine: event ordering against a
//! sort-based model, histogram quantiles against exact order statistics,
//! and server work conservation.

use proptest::prelude::*;

use sabre_sim::{EventQueue, FifoServer, Histogram, Time};

proptest! {
    #[test]
    fn event_queue_is_a_stable_sort(
        times in proptest::collection::vec(0u64..1000, 1..300),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(t), i);
        }
        // Model: stable sort by time of (time, index).
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, _)| t);
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_ps() / 1000, i));
        }
        prop_assert_eq!(popped, expected);
    }

    #[test]
    fn histogram_quantiles_within_bucket_error(
        samples in proptest::collection::vec(1.0f64..1e6, 10..500),
        q in 0.01f64..0.99,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = h.quantile(q).unwrap();
        // Log-linear buckets with 4 sub-buckets: ≤ 25% relative error,
        // plus the max clamp.
        prop_assert!(
            approx <= sorted[sorted.len() - 1] * 1.25 && approx >= exact / 1.4,
            "q={q}: approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn fifo_server_is_work_conserving_and_ordered(
        arrivals in proptest::collection::vec((0u64..1000, 1u64..50), 1..100),
    ) {
        let mut server = FifoServer::new();
        // Feed in arrival order (monotone arrivals, as the DES guarantees).
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|&(a, _)| a);
        let mut last_start = Time::ZERO;
        let mut busy = Time::ZERO;
        for &(arrive, service) in &sorted {
            let start = server.admit(Time::from_ns(arrive), Time::from_ns(service));
            // FIFO: starts never reorder.
            prop_assert!(start >= last_start);
            // Work conservation: start at arrival or at previous finish.
            prop_assert!(start >= Time::from_ns(arrive));
            last_start = start;
            busy += Time::from_ns(service);
        }
        prop_assert_eq!(server.busy_total(), busy);
        prop_assert_eq!(server.served(), sorted.len() as u64);
    }
}
