//! An adaptive calendar (bucketed) event queue for windowed event loops.
//!
//! [`CalendarQueue`] implements the exact ordering contract of
//! [`EventQueue`](crate::EventQueue) — ascending timestamp, FIFO among
//! events scheduled for the same instant — but organizes pending events
//! into fixed-width time buckets instead of one binary heap. A loop that
//! advances in lookahead-sized windows (the sharded rack event loop) then
//! drains each window as **one sorted batch**: scheduling into a future
//! bucket is an O(1) push, and the per-event comparison cost of a heap is
//! paid once per bucket as a single sort of a small contiguous batch.
//!
//! Events beyond the bucketed horizon (sparse far-future work: long
//! sleeps, think time) fall back to a binary heap and migrate into
//! buckets as the calendar rolls forward, so a handful of distant events
//! cannot force a huge bucket array.
//!
//! **Adaptivity.** Bucketing only pays off when windows are dense; a
//! mostly-idle queue (one or two in-flight events, the ping-pong pattern)
//! would pay a calendar roll per event — measured at ~4× the heap's cost
//! on the synthetic one-event churn benchmark. The queue therefore tracks
//! its occupancy and switches representation with hysteresis: below
//! [`HEAP_OCCUPANCY_MAX`] pending events it *is* a plain binary heap (all
//! events live in the overflow heap); climbing past the threshold it
//! spreads the backlog into buckets, and draining back below
//! [`BUCKET_OCCUPANCY_MIN`] it folds the remnant into the heap again.
//! Both representations order by the same `(timestamp, schedule order)`
//! key, so the popped sequence — and therefore every simulation result —
//! is bit-identical whatever the mode history (pinned by the
//! `calendar_props` equivalence proptests).
//!
//! # Example
//!
//! ```
//! use sabre_sim::{CalendarQueue, Time};
//!
//! let mut q = CalendarQueue::new(Time::from_ns(35));
//! q.schedule(Time::from_ns(10), 'b');
//! q.schedule(Time::from_ns(10), 'c');
//! q.schedule(Time::from_ns(1), 'a');
//! let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, vec!['a', 'b', 'c']);
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Time;

/// Buckets kept live ahead of the current window. With the rack's 35 ns
/// fabric lookahead as the bucket width this spans ~2.2 us of dense
/// near-future work; anything later waits in the fallback heap.
const LIVE_BUCKETS: usize = 64;

/// Occupancy above which the queue leaves plain-heap mode and spreads its
/// backlog into buckets (dense windows amortize the roll's batch sort).
pub const HEAP_OCCUPANCY_MAX: usize = 32;

/// Occupancy below which a bucketed queue folds back into a plain heap
/// (each roll would touch only a handful of events). Kept well under
/// [`HEAP_OCCUPANCY_MAX`] so the representations cannot thrash.
pub const BUCKET_OCCUPANCY_MIN: usize = 8;

/// Which representation currently holds the pending events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Everything lives in the overflow heap (cheap at low occupancy).
    Heap,
    /// Events are spread over the current batch, the bucket ring and the
    /// far-future overflow heap (cheap at high occupancy).
    Bucketed,
}

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic timestamped event queue bucketed by time window, with
/// an adaptive plain-heap mode for low occupancy (see the
/// [module docs](self)).
///
/// Semantically identical to [`EventQueue`](crate::EventQueue): events
/// come back in ascending `(timestamp, schedule order)`. The difference
/// is purely mechanical — the next `width` of virtual time is drained as
/// one pre-sorted batch when the queue is busy, or popped straight off a
/// binary heap when it is mostly idle — so the two are interchangeable
/// wherever the engine's determinism contract is pinned.
///
/// Like `EventQueue`, scheduling "into the past" (earlier than the last
/// popped event) is the caller's bug; the engine layer asserts event
/// times never run backwards.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Bucket width in ps; `cur_start` stays a multiple of it.
    width: u64,
    /// Start of the span the current batch covers: `[cur_start,
    /// cur_start + width)`.
    cur_start: u64,
    /// The current window's events, sorted ascending; popped from the
    /// front, mid-window schedules are merge-inserted.
    current: VecDeque<Entry<E>>,
    /// `buckets[i]` holds (unsorted) events in
    /// `[cur_start + (i+1)*width, cur_start + (i+2)*width)`.
    buckets: VecDeque<Vec<Entry<E>>>,
    /// Bit `i` set iff `buckets[i]` is non-empty — rolling to the next
    /// populated span is a `trailing_zeros`, not a scan.
    occupied: u64,
    /// Events beyond the bucketed horizon, in heap order — and, in
    /// [`Mode::Heap`], *every* pending event.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    mode: Mode,
    seq: u64,
    len: usize,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty calendar with the given bucket width — for a
    /// windowed loop, its lookahead.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: Time) -> Self {
        assert!(width > Time::ZERO, "bucket width must be positive");
        CalendarQueue {
            width: width.as_ps(),
            cur_start: 0,
            current: VecDeque::new(),
            buckets: (0..LIVE_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: 0,
            overflow: BinaryHeap::new(),
            mode: Mode::Heap,
            seq: 0,
            len: 0,
        }
    }

    /// End (exclusive) of the bucketed horizon.
    fn horizon(&self) -> u64 {
        self.cur_start
            .saturating_add(self.width * (LIVE_BUCKETS as u64 + 1))
    }

    /// Schedules `event` for delivery at time `at`.
    ///
    /// In heap mode (the mostly-idle common case) this is one heap push
    /// touching no calendar state, exactly like
    /// [`EventQueue::schedule`](crate::EventQueue::schedule).
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let e = Entry { at, seq, event };
        match self.mode {
            // In heap mode `len` is not maintained (the heap knows); the
            // fast path touches as little state as a plain EventQueue.
            Mode::Heap => {
                self.overflow.push(Reverse(e));
                if self.overflow.len() > HEAP_OCCUPANCY_MAX {
                    self.enter_bucketed();
                }
            }
            Mode::Bucketed => {
                self.len += 1;
                self.schedule_bucketed(e);
            }
        }
    }

    /// Bucketed-mode placement: current batch, bucket ring or far-future
    /// heap.
    fn schedule_bucketed(&mut self, e: Entry<E>) {
        let ps = e.at.as_ps();
        if ps < self.cur_start.saturating_add(self.width) {
            // Into the window being drained (or the past): merge-insert.
            // The new seq is the largest, so everything at `<= at` stays
            // in front — FIFO at equal timestamps is preserved.
            let i = self.current.partition_point(|x| x.at <= e.at);
            self.current.insert(i, e);
        } else if ps < self.horizon() {
            let idx = ((ps - self.cur_start) / self.width - 1) as usize;
            self.buckets[idx].push(e);
            self.occupied |= 1 << idx;
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// Leaves plain-heap mode: realigns the calendar to the backlog's
    /// earliest event and spreads every pending event over the current
    /// batch, the bucket ring and the (far-future) overflow heap. Entries
    /// keep their original sequence numbers, so the popped order is
    /// untouched.
    #[cold]
    #[inline(never)]
    fn enter_bucketed(&mut self) {
        debug_assert!(self.mode == Mode::Heap);
        debug_assert!(self.current.is_empty() && self.occupied == 0);
        self.mode = Mode::Bucketed;
        let mut entries: Vec<Entry<E>> = std::mem::take(&mut self.overflow)
            .into_iter()
            .map(|Reverse(e)| e)
            .collect();
        self.len = entries.len(); // bucketed mode maintains the count
        let Some(min_ps) = entries.iter().map(|e| e.at.as_ps()).min() else {
            return;
        };
        self.cur_start = min_ps / self.width * self.width;
        entries.sort_unstable();
        let window_end = self.cur_start.saturating_add(self.width);
        let horizon = self.horizon();
        for e in entries {
            let ps = e.at.as_ps();
            if ps < window_end {
                self.current.push_back(e); // sorted order preserved
            } else if ps < horizon {
                let idx = ((ps - self.cur_start) / self.width - 1) as usize;
                self.buckets[idx].push(e);
                self.occupied |= 1 << idx;
            } else {
                self.overflow.push(Reverse(e));
            }
        }
    }

    /// Folds a drained-down calendar back into plain-heap mode: the few
    /// remaining batch/bucket entries join the overflow heap, which then
    /// holds everything. Entries keep their sequence numbers.
    #[cold]
    #[inline(never)]
    fn enter_heap(&mut self) {
        debug_assert!(self.mode == Mode::Bucketed);
        self.mode = Mode::Heap;
        for e in self.current.drain(..) {
            self.overflow.push(Reverse(e));
        }
        for bucket in &mut self.buckets {
            for e in bucket.drain(..) {
                self.overflow.push(Reverse(e));
            }
        }
        self.occupied = 0;
    }

    /// Rolls the calendar forward to the next non-empty span and sorts it
    /// into the current batch. Must only be called with the current batch
    /// exhausted and the queue non-empty.
    fn roll(&mut self) {
        debug_assert!(self.current.is_empty() && self.len > 0);
        // The next span is the earlier of: the first non-empty bucket,
        // and the overflow minimum's (bucket-aligned) span.
        let bucket_span = (self.occupied != 0)
            .then(|| self.cur_start + self.width * (self.occupied.trailing_zeros() as u64 + 1));
        let overflow_span = self
            .overflow
            .peek()
            .map(|Reverse(e)| e.at.as_ps() / self.width * self.width);
        let next_span = match (bucket_span, overflow_span) {
            (Some(b), Some(o)) => b.min(o),
            (Some(b), None) => b,
            (None, Some(o)) => o,
            (None, None) => unreachable!("non-empty queue with no next event"),
        };
        debug_assert!(next_span > self.cur_start);
        // The batch recycles the exhausted window's allocation.
        let mut batch: Vec<Entry<E>> = Vec::from(std::mem::take(&mut self.current));
        batch.clear();
        let shift = (next_span - self.cur_start) / self.width;
        if shift <= LIVE_BUCKETS as u64 {
            // Rotate the (empty) skipped buckets to the back and swap the
            // target bucket's contents into the batch.
            for _ in 0..shift - 1 {
                let b = self.buckets.pop_front().expect("fixed ring");
                debug_assert!(b.is_empty(), "skipped a non-empty bucket");
                self.buckets.push_back(b);
            }
            let mut b = self.buckets.pop_front().expect("fixed ring");
            std::mem::swap(&mut batch, &mut b);
            self.buckets.push_back(b);
            // shift == 64 (the last live bucket) must clear, not wrap.
            self.occupied = self.occupied.checked_shr(shift as u32).unwrap_or(0);
        } else {
            // Far jump over an all-empty ring (the overflow holds the next
            // event): the buckets keep their (empty) allocations.
            debug_assert!(self.occupied == 0);
        }
        self.cur_start = next_span;
        // Migrate overflow events that now fall under the horizon.
        let horizon = self.horizon();
        let window_end = self.cur_start.saturating_add(self.width);
        while let Some(Reverse(e)) = self.overflow.peek() {
            let ps = e.at.as_ps();
            if ps >= horizon {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            if ps < window_end {
                batch.push(e);
            } else {
                let idx = ((ps - self.cur_start) / self.width - 1) as usize;
                self.buckets[idx].push(e);
                self.occupied |= 1 << idx;
            }
        }
        debug_assert!(!batch.is_empty(), "rolled to an empty span");
        batch.sort_unstable();
        self.current = VecDeque::from(batch);
    }

    /// Removes and returns the earliest event, or `None` when empty.
    ///
    /// Like [`CalendarQueue::schedule`], the heap-mode fast path is one
    /// heap pop touching no calendar state.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        match self.mode {
            Mode::Heap => {
                let Reverse(e) = self.overflow.pop()?;
                Some((e.at, e.event))
            }
            Mode::Bucketed => self.pop_bucketed(),
        }
    }

    /// Bucketed-mode pop: roll to the next span if the batch is drained,
    /// pop the front, fold back to heap mode below the low-water mark.
    fn pop_bucketed(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        if self.current.is_empty() {
            self.roll();
        }
        let e = self.current.pop_front().expect("rolled to an event");
        self.len -= 1;
        if self.len < BUCKET_OCCUPANCY_MIN {
            self.enter_heap();
        }
        Some((e.at, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    ///
    /// Takes `&mut self` (unlike [`EventQueue`](crate::EventQueue)):
    /// peeking may roll the calendar forward to the next non-empty span.
    pub fn peek_time(&mut self) -> Option<Time> {
        match self.mode {
            Mode::Heap => self.overflow.peek().map(|Reverse(e)| e.at),
            Mode::Bucketed => {
                if self.len == 0 {
                    return None;
                }
                if self.current.is_empty() {
                    self.roll();
                }
                self.current.front().map(|e| e.at)
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self.mode {
            Mode::Heap => self.overflow.len(),
            Mode::Bucketed => self.len,
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> CalendarQueue<u32> {
        CalendarQueue::new(Time::from_ns(35))
    }

    #[test]
    fn orders_by_time_across_buckets() {
        let mut q = q();
        // One event per region: current window, a live bucket, overflow.
        q.schedule(Time::from_us(500), 3); // overflow
        q.schedule(Time::from_ns(100), 2); // bucket
        q.schedule(Time::from_ns(1), 1); // current
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Time::from_ns(1), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(100), 2)));
        assert_eq!(q.pop(), Some((Time::from_us(500), 3)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = q();
        for i in 0..100 {
            q.schedule(Time::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time::from_ns(7), i)));
        }
    }

    #[test]
    fn mid_window_schedule_merges_in_order() {
        let mut q = q();
        q.schedule(Time::from_ns(1), 1);
        q.schedule(Time::from_ns(20), 4);
        assert_eq!(q.pop(), Some((Time::from_ns(1), 1)));
        // Scheduled *while draining* the window, earlier than the rest.
        q.schedule(Time::from_ns(10), 2);
        q.schedule(Time::from_ns(10), 3);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(10), 3)));
        assert_eq!(q.pop(), Some((Time::from_ns(20), 4)));
    }

    #[test]
    fn overflow_migrates_into_buckets() {
        let mut q = q();
        // Two far-future events in the same eventual window, scheduled
        // out of order: the fallback heap must hand them back sorted.
        let far = Time::from_us(1000);
        q.schedule(far + Time::from_ns(1), 8);
        q.schedule(far, 7);
        q.schedule(Time::from_us(999), 6);
        assert_eq!(q.pop(), Some((Time::from_us(999), 6)));
        assert_eq!(q.pop(), Some((far, 7)));
        assert_eq!(q.pop(), Some((far + Time::from_ns(1), 8)));
    }

    #[test]
    fn peek_rolls_and_agrees_with_pop() {
        let mut q = q();
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_us(3), 1);
        assert_eq!(q.peek_time(), Some(Time::from_us(3)));
        assert_eq!(q.pop(), Some((Time::from_us(3), 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn adaptive_modes_preserve_global_order() {
        // Drive the queue through heap -> bucketed -> heap -> bucketed
        // transitions; the popped sequence must be the plain (time, seq)
        // order throughout.
        let mut q = q();
        let mut expected: Vec<(Time, u32)> = Vec::new();
        let mut id = 0u32;
        let mut push = |q: &mut CalendarQueue<u32>, expected: &mut Vec<(Time, u32)>, t: u64| {
            q.schedule(Time::from_ns(t), id);
            expected.push((Time::from_ns(t), id));
            id += 1;
        };
        // Burst far past the heap threshold (forces bucketing), with
        // timestamp collisions to stress FIFO across the migration.
        for i in 0..(3 * HEAP_OCCUPANCY_MAX as u64) {
            push(&mut q, &mut expected, (i * 13) % 240);
        }
        // Drain below the bucket minimum (forces the fold back to heap).
        expected.sort_by_key(|&(t, _)| t); // stable: FIFO within a timestamp
        let mut popped = Vec::new();
        while q.len() > 2 {
            popped.push(q.pop().unwrap());
        }
        // Trickle in heap mode, then burst again.
        for i in 0..(2 * HEAP_OCCUPANCY_MAX as u64) {
            push(&mut q, &mut expected, 240 + (i * 7) % 100);
        }
        expected.sort_by_key(|&(t, _)| t);
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, expected);
        assert_eq!(q.scheduled_total(), id as u64);
    }

    #[test]
    fn low_occupancy_ping_pong_stays_consistent() {
        // The mostly-idle pattern the adaptive heap mode exists for: one
        // event in flight at a time, never reaching the bucket threshold.
        let mut q = q();
        q.schedule(Time::ZERO, 0);
        let mut now = Time::ZERO;
        for i in 1..1000u32 {
            let (t, e) = q.pop().expect("seeded");
            assert!(t >= now, "time went backwards");
            assert_eq!(e, i - 1);
            now = t;
            q.schedule(now + Time::from_ns((i as u64 * 13) % 97), i);
        }
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn quiet_stretches_are_skipped_in_one_roll() {
        let mut q = q();
        q.schedule(Time::from_ns(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        // Nothing for a long stretch, then a burst far beyond the horizon.
        for i in 0..10 {
            q.schedule(Time::from_us(10_000) + Time::from_ns(i), i as u32);
        }
        for i in 0..10 {
            assert_eq!(
                q.pop(),
                Some((Time::from_us(10_000) + Time::from_ns(i), i as u32))
            );
        }
    }
}
