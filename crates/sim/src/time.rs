//! Virtual time and clock-frequency arithmetic.
//!
//! All simulated time is kept in integer **picoseconds** so that mixed-clock
//! systems (2 GHz cores, 1 GHz RMC pipelines, DDR4 channels) can be composed
//! without rounding drift. A picosecond granularity supports simulations of
//! up to ~106 days of virtual time in a `u64`, far beyond anything the
//! experiments need.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in integer picoseconds.
///
/// `Time` is used both as an absolute timestamp and as a duration; the
/// arithmetic impls (`+`, `-`, scalar `*` / `/`) cover both uses. The zero
/// value is the simulation epoch.
///
/// # Example
///
/// ```
/// use sabre_sim::Time;
///
/// let t = Time::from_ns(35) + Time::from_ns(15);
/// assert_eq!(t.as_ns(), 50.0);
/// assert_eq!(t, Time::from_ps(50_000));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "unreachable" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from integer picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from integer nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from integer microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time from a (non-negative, finite) fractional nanosecond
    /// count, rounding to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative, NaN, or too large for the representation.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns} ns");
        let ps = (ns * 1_000.0).round();
        assert!(ps <= u64::MAX as f64, "duration overflows Time: {ns} ns");
        Time(ps as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed in fractional microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - rhs`, or [`Time::ZERO`] if `rhs`
    /// is later than `self`.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction, `None` on underflow.
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        self.0.checked_sub(rhs.0).map(Time)
    }

    /// The later of `self` and `other`.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of `self` and `other`.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.as_ns())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else {
            write!(f, "{:.3}ns", self.as_ns())
        }
    }
}

/// A clock frequency, used to convert cycle counts to [`Time`].
///
/// # Example
///
/// ```
/// use sabre_sim::{Freq, Time};
///
/// let cpu = Freq::ghz(2.0);
/// assert_eq!(cpu.cycles(4), Time::from_ns(2));
/// assert_eq!(cpu.period(), Time::from_ps(500));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq {
    period_ps: u64,
}

impl Freq {
    /// A frequency given in gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "invalid frequency: {ghz} GHz");
        let period_ps = (1_000.0 / ghz).round() as u64;
        assert!(period_ps > 0, "frequency too high: {ghz} GHz");
        Freq { period_ps }
    }

    /// A frequency given in megahertz.
    pub fn mhz(mhz: f64) -> Self {
        Freq::ghz(mhz / 1_000.0)
    }

    /// The clock period.
    pub fn period(self) -> Time {
        Time::from_ps(self.period_ps)
    }

    /// The duration of `n` cycles at this frequency.
    pub fn cycles(self, n: u64) -> Time {
        Time::from_ps(self.period_ps * n)
    }

    /// How many *whole* cycles fit in `t`.
    pub fn cycles_in(self, t: Time) -> u64 {
        t.as_ps() / self.period_ps
    }

    /// The duration of a fractional cycle count, rounded to the nearest
    /// picosecond. Used by CPU cost models that charge e.g. 0.5 cycles/byte.
    pub fn cycles_f64(self, n: f64) -> Time {
        Time::from_ns_f64(n * self.period_ps as f64 / 1_000.0)
    }
}

/// Converts a byte count and a bandwidth in GB/s to the serialization time.
///
/// Uses decimal gigabytes (1 GBps = 10^9 bytes/s), matching how the paper
/// quotes link and memory bandwidths.
///
/// # Example
///
/// ```
/// use sabre_sim::time::transfer_time;
/// use sabre_sim::Time;
///
/// // 100 bytes over a 100 GBps link: 1 ns.
/// assert_eq!(transfer_time(100, 100.0), Time::from_ns(1));
/// ```
pub fn transfer_time(bytes: u64, gbps: f64) -> Time {
    assert!(gbps > 0.0, "bandwidth must be positive");
    // bytes / (gbps * 1e9 B/s) seconds = bytes / gbps * 1e-9 s = bytes/gbps ns
    Time::from_ns_f64(bytes as f64 / gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ns_f64(1.5), Time::from_ps(1_500));
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(3);
        assert_eq!(a + b, Time::from_ns(13));
        assert_eq!(a - b, Time::from_ns(7));
        assert_eq!(a * 3, Time::from_ns(30));
        assert_eq!(a / 2, Time::from_ns(5));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.checked_sub(b), Some(Time::from_ns(7)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn time_min_max_sum() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(3);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total, Time::from_ns(16));
    }

    #[test]
    fn freq_cycle_conversions() {
        let rmc = Freq::ghz(1.0);
        assert_eq!(rmc.cycles(3), Time::from_ns(3));
        let cpu = Freq::ghz(2.0);
        assert_eq!(cpu.cycles(3), Time::from_ps(1_500));
        assert_eq!(cpu.cycles_in(Time::from_ns(2)), 4);
        assert_eq!(cpu.cycles_f64(0.5), Time::from_ps(250));
    }

    #[test]
    fn transfer_time_examples() {
        // 64-byte block over 25.6 GBps DDR4 channel: 2.5 ns.
        assert_eq!(transfer_time(64, 25.6), Time::from_ps(2_500));
        // 8 KB over the 100 GBps fabric: 81.92 ns.
        assert_eq!(transfer_time(8192, 100.0), Time::from_ps(81_920));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Time::from_ns(5).to_string(), "5.000ns");
        assert_eq!(Time::from_us(2).to_string(), "2.000us");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        let _ = Time::from_ns_f64(-1.0);
    }
}
