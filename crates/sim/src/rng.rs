//! Deterministic random-number generation for workloads.
//!
//! All randomness in the simulation flows through [`SimRng`], a thin wrapper
//! over a seeded [`rand::rngs::StdRng`]. Components derive child RNGs with
//! [`SimRng::fork`] so that adding a new consumer of randomness does not
//! perturb the streams seen by existing ones.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub use rand::distr::Zipf;

/// A seeded, forkable random-number generator.
///
/// # Example
///
/// ```
/// use sabre_sim::SimRng;
/// use rand::RngCore;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    base: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            base: seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator identified by `stream`.
    ///
    /// Forks with distinct `stream` values produce statistically independent
    /// sequences; the same `(parent seed, stream)` pair always produces the
    /// same child, regardless of how much the parent has been used.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the stream id into a fresh seed via SplitMix64 so that nearby
        // stream ids do not produce correlated child states.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ self.base;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed(z ^ (z >> 31))
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let parent = SimRng::seed(99);
        let mut c1 = parent.fork(0);
        let mut c1_again = parent.fork(0);
        let mut c2 = parent.fork(1);
        let first = c1.next_u64();
        assert_eq!(first, c1_again.next_u64());
        assert_ne!(first, c2.next_u64());
    }

    #[test]
    fn fork_is_insensitive_to_parent_consumption() {
        let mut parent = SimRng::seed(5);
        let before = parent.fork(3).next_u64();
        let _ = parent.next_u64();
        let after = parent.fork(3).next_u64();
        assert_eq!(before, after);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
