//! Measurement primitives used by the experiment harness.

use std::fmt;

use crate::time::Time;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sabre_sim::Counter;
///
/// let mut c = Counter::default();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean / min / max of a stream of samples (Welford-free: the
/// experiments only need mean and extremes, so a simple sum suffices).
#[derive(Debug, Clone, Default)]
pub struct MeanTracker {
    sum: f64,
    n: u64,
    min: f64,
    max: f64,
}

impl MeanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MeanTracker::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.sum += x;
        self.n += 1;
    }

    /// Records a [`Time`] sample in nanoseconds.
    pub fn record_time(&mut self, t: Time) {
        self.record(t.as_ns());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// A log-linear histogram of nanosecond-scale latencies.
///
/// Buckets are power-of-two ranges subdivided linearly (4 sub-buckets per
/// octave), giving ~19% worst-case relative error on quantile estimates —
/// plenty for latency reporting — with O(1) recording.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

const SUBBUCKETS: usize = 4;
const OCTAVES: usize = 40; // up to 2^40 ns ≈ 18 minutes; beyond any latency

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; OCTAVES * SUBBUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    fn index_of(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        let v = value.min(f64::MAX);
        let octave = (v.log2().floor() as usize).min(OCTAVES - 1);
        let lower = (1u64 << octave) as f64;
        let frac = ((v - lower) / lower * SUBBUCKETS as f64) as usize;
        octave * SUBBUCKETS + frac.min(SUBBUCKETS - 1)
    }

    fn bucket_value(index: usize) -> f64 {
        let octave = index / SUBBUCKETS;
        let sub = index % SUBBUCKETS;
        let lower = (1u64 << octave) as f64;
        lower + lower * (sub as f64 + 0.5) / SUBBUCKETS as f64
    }

    /// Records one latency sample (nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or NaN.
    pub fn record(&mut self, ns: f64) {
        assert!(ns >= 0.0, "negative latency sample: {ns}");
        self.buckets[Self::index_of(ns)] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Records a [`Time`] sample.
    pub fn record_time(&mut self, t: Time) {
        self.record(t.as_ns());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (exact, not bucketed).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket midpoint estimate).
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(Self::bucket_value(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Exact maximum of the recorded samples.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Accumulates (bytes, completion time) pairs and reports goodput.
///
/// The experiments report *application throughput*: clean payload bytes
/// successfully delivered per unit of simulated time.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    bytes: u64,
    ops: u64,
    first: Option<Time>,
    last: Time,
}

impl Throughput {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Throughput::default()
    }

    /// Records an operation that delivered `bytes` at time `at`.
    pub fn record(&mut self, at: Time, bytes: u64) {
        self.bytes += bytes;
        self.ops += 1;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = self.last.max(at);
    }

    /// Total payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Goodput in decimal GB/s over `[0, horizon]`.
    ///
    /// Using the full horizon (rather than first→last sample) avoids
    /// overestimating throughput for short runs.
    pub fn gbps(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.bytes as f64 / horizon.as_ns() // B/ns == GB/s
    }

    /// Operations per second over `[0, horizon]`.
    pub fn ops_per_sec(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.ops as f64 / horizon.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn mean_tracker_basic() {
        let mut m = MeanTracker::new();
        assert_eq!(m.mean(), None);
        m.record(1.0);
        m.record(3.0);
        assert_eq!(m.mean(), Some(2.0));
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(3.0));
        assert_eq!(m.count(), 2);
        m.record_time(Time::from_ns(8));
        assert_eq!(m.max(), Some(8.0));
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.25, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.25, "p99={p99}");
        assert_eq!(h.quantile(1.0), Some(1000.0));
        assert_eq!(h.mean(), Some(500.5));
    }

    #[test]
    fn histogram_handles_small_and_zero() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.5);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5).unwrap() <= 1.5);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn throughput_gbps() {
        let mut t = Throughput::new();
        // 100 ops of 1 KB each over 1 us => 100 KB / 1 us = 100 GB/s.
        for i in 0..100 {
            t.record(Time::from_ns(10 * (i + 1)), 1000);
        }
        let g = t.gbps(Time::from_us(1));
        assert!((g - 100.0).abs() < 1e-9, "{g}");
        assert_eq!(t.ops(), 100);
        assert_eq!(t.bytes(), 100_000);
        assert_eq!(Throughput::new().gbps(Time::ZERO), 0.0);
    }
}
