//! Measurement primitives used by the experiment harness.

use std::fmt;

use crate::time::Time;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sabre_sim::Counter;
///
/// let mut c = Counter::default();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean / min / max of a stream of samples (Welford-free: the
/// experiments only need mean and extremes, so a simple sum suffices).
#[derive(Debug, Clone, Default)]
pub struct MeanTracker {
    sum: f64,
    n: u64,
    min: f64,
    max: f64,
}

impl MeanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MeanTracker::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.sum += x;
        self.n += 1;
    }

    /// Records a [`Time`] sample in nanoseconds.
    pub fn record_time(&mut self, t: Time) {
        self.record(t.as_ns());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// A log-linear histogram of nanosecond-scale latencies.
///
/// Buckets are power-of-two ranges subdivided linearly (4 sub-buckets per
/// octave), giving ~19% worst-case relative error on quantile estimates —
/// plenty for latency reporting — with O(1) recording.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

const SUBBUCKETS: usize = 4;
const OCTAVES: usize = 40; // up to 2^40 ns ≈ 18 minutes; beyond any latency

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; OCTAVES * SUBBUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    fn index_of(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        let v = value.min(f64::MAX);
        let octave = (v.log2().floor() as usize).min(OCTAVES - 1);
        let lower = (1u64 << octave) as f64;
        let frac = ((v - lower) / lower * SUBBUCKETS as f64) as usize;
        octave * SUBBUCKETS + frac.min(SUBBUCKETS - 1)
    }

    fn bucket_value(index: usize) -> f64 {
        let octave = index / SUBBUCKETS;
        let sub = index % SUBBUCKETS;
        let lower = (1u64 << octave) as f64;
        lower + lower * (sub as f64 + 0.5) / SUBBUCKETS as f64
    }

    /// Records one latency sample (nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or NaN.
    pub fn record(&mut self, ns: f64) {
        assert!(ns >= 0.0, "negative latency sample: {ns}");
        self.buckets[Self::index_of(ns)] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Records a [`Time`] sample.
    pub fn record_time(&mut self, t: Time) {
        self.record(t.as_ns());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (exact, not bucketed).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket midpoint estimate).
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(Self::bucket_value(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Exact maximum of the recorded samples.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A deterministic HDR-style log-linear histogram of integer nanosecond
/// latencies, built for tail reporting that must stay **bit-identical**
/// across execution knobs (event-loop shard count, worker-thread count).
///
/// Unlike [`Histogram`] (which keeps float sums and is deliberately
/// per-core only), every field here is an exact integer, and
/// [`LatencyHistogram::merge`] is plain element-wise `u64` addition —
/// associative and commutative — so per-core histograms can be reduced in
/// any grouping (window barriers, node aggregation, whole-rack reports)
/// and always produce the same bucket counts.
///
/// # Resolution guarantees
///
/// The bucket scheme is fixed (no auto-resizing, so two histograms always
/// share the same bucket boundaries):
///
/// * values below 16 ns get one bucket per nanosecond (**exact**);
/// * every power-of-two octave `[2^k, 2^(k+1))` above that is split into
///   16 linear sub-buckets of width `2^(k-4)`, so a reported quantile is
///   at most one sub-bucket away from the true sample: **≤ 1/16 = 6.25 %
///   relative error**, at every magnitude up to `2^40` ns (≈ 18 minutes);
/// * values at or above `2^40` ns clamp into the last bucket (no latency
///   in these simulations gets anywhere close).
///
/// Quantiles return the **upper edge** of the bucket holding the rank
/// (clamped to the true maximum), so `p99()` never under-reports a tail
/// and identical bucket counts always yield identical quantiles.
///
/// # Example
///
/// ```
/// use sabre_sim::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in 1..=1000u64 {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 1000);
/// let p99 = h.quantile(0.99).unwrap();
/// assert!(p99 >= 990 && p99 <= 1000 + 1000 / 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
    min_ns: u64,
}

/// Linear sub-buckets per octave (and the size of the exact sub-16ns
/// region).
const SUB: usize = 16;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 4;
/// Highest octave: values reaching `2^LAST_OCTAVE` ns clamp.
const LAST_OCTAVE: u32 = 40;
/// Bucket count: the exact `[0, 16)` region plus 16 sub-buckets for each
/// octave `[2^4, 2^40)`.
const LAT_BUCKETS: usize = SUB + (LAST_OCTAVE as usize - SUB_BITS as usize) * SUB;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; LAT_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn index_of(ns: u64) -> usize {
        if ns < SUB as u64 {
            return ns as usize;
        }
        let octave = 63 - ns.leading_zeros();
        if octave >= LAST_OCTAVE {
            return LAT_BUCKETS - 1;
        }
        let sub = ((ns - (1u64 << octave)) >> (octave - SUB_BITS)) as usize;
        SUB + (octave - SUB_BITS) as usize * SUB + sub
    }

    /// The inclusive lower edge of bucket `index`, in ns.
    fn bucket_lower(index: usize) -> u64 {
        if index < SUB {
            return index as u64;
        }
        let octave = SUB_BITS + ((index - SUB) / SUB) as u32;
        let sub = ((index - SUB) % SUB) as u64;
        (1u64 << octave) + sub * (1u64 << (octave - SUB_BITS))
    }

    /// The inclusive upper edge of bucket `index`, in ns.
    fn bucket_upper(index: usize) -> u64 {
        if index < SUB {
            return index as u64;
        }
        if index == LAT_BUCKETS - 1 {
            return u64::MAX;
        }
        Self::bucket_lower(index + 1) - 1
    }

    /// Records one latency sample in integer nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Records a [`Time`] sample, truncated to whole nanoseconds.
    pub fn record_time(&mut self, t: Time) {
        self.record(t.as_ps() / 1_000);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in ns (saturating at `u64::MAX`; exact for any
    /// realistic latency stream).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Exact maximum sample, or `None` if empty.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Exact minimum sample, or `None` if empty.
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Quantile `q` in `[0, 1]` as the upper edge of the bucket holding
    /// that rank, clamped to the exact maximum; `None` when empty. The
    /// result is a deterministic function of the bucket counts (see the
    /// type-level resolution guarantees).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(Self::bucket_upper(i).min(self.max_ns));
            }
        }
        Some(self.max_ns)
    }

    /// Median (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Merges `other` into `self` by element-wise bucket addition — exact,
    /// associative and commutative, so any reduction grouping produces
    /// identical results.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// Renders every non-empty bucket as `lower..=upper  count` lines —
    /// the raw distribution behind the percentile summary, for experiment
    /// debugging and golden-style dumps.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                let upper = Self::bucket_upper(i).min(self.max_ns);
                writeln!(out, "{:>12}..={:<12} {}", Self::bucket_lower(i), upper, b)
                    .expect("write to String");
            }
        }
        out
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Exact, mergeable hop and queue accounting for fabric traffic — the
/// [`LatencyHistogram`] streaming pattern (integer fields only, merge by
/// element-wise addition, associative and commutative) applied to the
/// per-packet counters a datacenter-scale run can no longer afford to
/// keep per event. Sources accumulate into their own `HopStats` as they
/// send; any reduction grouping (per node, per shard, whole fabric)
/// produces bit-identical totals.
///
/// # Example
///
/// ```
/// use sabre_sim::HopStats;
///
/// let mut a = HopStats::default();
/// a.record(3, false);
/// let mut b = HopStats::default();
/// b.record(5, true);
/// a.merge(&b);
/// assert_eq!(a.packets, 2);
/// assert_eq!(a.mean_hops(), 4.0);
/// assert_eq!(a.spine_share(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopStats {
    /// Packets sent.
    pub packets: u64,
    /// Hops traversed by those packets, including queueing penalty hops.
    pub hops: u64,
    /// Packets that exceeded their leaf uplink's per-window budget.
    pub uplink_queued: u64,
    /// Packets that traversed an inter-rack spine.
    pub spine_crossings: u64,
    /// Packets that exceeded the spine bundle's per-window budget.
    pub spine_queued: u64,
}

impl HopStats {
    /// Records one sent packet that routed over `hops` hops,
    /// `crossed_spine` marking an inter-rack traversal. (Queueing counters
    /// are bumped directly by whoever models the queues.)
    pub fn record(&mut self, hops: u64, crossed_spine: bool) {
        self.packets += 1;
        self.hops += hops;
        if crossed_spine {
            self.spine_crossings += 1;
        }
    }

    /// Merges `other` into `self` by plain addition — exact, associative
    /// and commutative, so any reduction grouping produces identical
    /// results.
    pub fn merge(&mut self, other: &HopStats) {
        self.packets += other.packets;
        self.hops += other.hops;
        self.uplink_queued += other.uplink_queued;
        self.spine_crossings += other.spine_crossings;
        self.spine_queued += other.spine_queued;
    }

    /// Mean hops per packet (0 when nothing was sent).
    pub fn mean_hops(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.hops as f64 / self.packets as f64
        }
    }

    /// Fraction of packets that crossed an inter-rack spine (0 when
    /// nothing was sent) — the cross-spine hop share the datacenter
    /// experiments report.
    pub fn spine_share(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.spine_crossings as f64 / self.packets as f64
        }
    }
}

/// Accumulates (bytes, completion time) pairs and reports goodput.
///
/// The experiments report *application throughput*: clean payload bytes
/// successfully delivered per unit of simulated time.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    bytes: u64,
    ops: u64,
    first: Option<Time>,
    last: Time,
}

impl Throughput {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Throughput::default()
    }

    /// Records an operation that delivered `bytes` at time `at`.
    pub fn record(&mut self, at: Time, bytes: u64) {
        self.bytes += bytes;
        self.ops += 1;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = self.last.max(at);
    }

    /// Total payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Goodput in decimal GB/s over `[0, horizon]`.
    ///
    /// Using the full horizon (rather than first→last sample) avoids
    /// overestimating throughput for short runs.
    pub fn gbps(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.bytes as f64 / horizon.as_ns() // B/ns == GB/s
    }

    /// Operations per second over `[0, horizon]`.
    pub fn ops_per_sec(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.ops as f64 / horizon.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn mean_tracker_basic() {
        let mut m = MeanTracker::new();
        assert_eq!(m.mean(), None);
        m.record(1.0);
        m.record(3.0);
        assert_eq!(m.mean(), Some(2.0));
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(3.0));
        assert_eq!(m.count(), 2);
        m.record_time(Time::from_ns(8));
        assert_eq!(m.max(), Some(8.0));
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.25, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.25, "p99={p99}");
        assert_eq!(h.quantile(1.0), Some(1000.0));
        assert_eq!(h.mean(), Some(500.5));
    }

    #[test]
    fn histogram_handles_small_and_zero() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.5);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5).unwrap() <= 1.5);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn latency_histogram_is_exact_below_sixteen() {
        let mut h = LatencyHistogram::new();
        for ns in 0..16u64 {
            h.record(ns);
        }
        for q in [0.1, 0.5, 0.9] {
            let v = h.quantile(q).unwrap();
            let rank = (q * 16.0).ceil() as u64;
            assert_eq!(v, rank - 1, "q={q}");
        }
        assert_eq!(h.min_ns(), Some(0));
        assert_eq!(h.max_ns(), Some(15));
        assert_eq!(h.sum_ns(), (0..16).sum::<u64>());
    }

    #[test]
    fn latency_histogram_resolution_bound() {
        // Every sample's reported p100 bucket edge is within 1/16 of the
        // true value, at several magnitudes.
        for ns in [17u64, 1000, 65_537, 1 << 30, (1 << 35) + 12345] {
            let mut h = LatencyHistogram::new();
            h.record(ns);
            let q = h.quantile(0.5).unwrap();
            assert!(q >= ns, "upper edge must not under-report");
            assert!(
                q == ns,
                "single sample clamps to the exact max, got {q} for {ns}"
            );
            // Without the max clamp the bucket edge is still within 6.25%.
            let mut h2 = LatencyHistogram::new();
            h2.record(ns);
            h2.record(ns * 2); // push the max away
            let q = h2.quantile(0.5).unwrap();
            assert!(
                q >= ns && (q - ns) as f64 <= ns as f64 / 16.0,
                "{q} vs {ns}"
            );
        }
    }

    #[test]
    fn latency_histogram_merge_is_exact() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 5000;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        // And the other order.
        let mut merged_rev = b;
        merged_rev.merge(&a);
        assert_eq!(merged_rev, all);
    }

    #[test]
    fn latency_histogram_huge_values_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1 << 50);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn latency_histogram_empty_and_dump() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.p50(), None);
        assert!(h.dump().is_empty());
        let mut h = LatencyHistogram::new();
        h.record_time(Time::from_ns(250));
        h.record_time(Time::from_ps(1_500)); // truncates to 1 ns
        let dump = h.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("250"));
        assert_eq!(h.p999(), Some(250));
    }

    #[test]
    fn hop_stats_merge_is_exact_and_commutative() {
        let mut all = HopStats::default();
        let mut a = HopStats::default();
        let mut b = HopStats::default();
        for i in 0..100u64 {
            let hops = 1 + i % 5;
            let spine = hops == 5;
            all.record(hops, spine);
            let side = if i % 2 == 0 { &mut a } else { &mut b };
            side.record(hops, spine);
            if i % 7 == 0 {
                all.uplink_queued += 1;
                side.uplink_queued += 1;
            }
            if i % 13 == 0 {
                all.spine_queued += 1;
                side.spine_queued += 1;
            }
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, all);
        let mut merged_rev = b;
        merged_rev.merge(&a);
        assert_eq!(merged_rev, all);
        assert_eq!(all.packets, 100);
        assert_eq!(all.spine_crossings, 20);
        assert_eq!(all.spine_share(), 0.2);
        assert_eq!(all.mean_hops(), 3.0);
        assert_eq!(HopStats::default().mean_hops(), 0.0);
        assert_eq!(HopStats::default().spine_share(), 0.0);
    }

    #[test]
    fn throughput_gbps() {
        let mut t = Throughput::new();
        // 100 ops of 1 KB each over 1 us => 100 KB / 1 us = 100 GB/s.
        for i in 0..100 {
            t.record(Time::from_ns(10 * (i + 1)), 1000);
        }
        let g = t.gbps(Time::from_us(1));
        assert!((g - 100.0).abs() < 1e-9, "{g}");
        assert_eq!(t.ops(), 100);
        assert_eq!(t.bytes(), 100_000);
        assert_eq!(Throughput::new().gbps(Time::ZERO), 0.0);
    }
}
