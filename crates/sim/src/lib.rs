//! Deterministic discrete-event simulation engine.
//!
//! This crate is the bottom layer of the SABRes reproduction. It provides:
//!
//! * [`Time`] — virtual time in integer picoseconds, with frequency-aware
//!   cycle conversions ([`Freq`]).
//! * [`EventQueue`] — a stable (FIFO-within-same-timestamp) priority queue of
//!   timestamped events, generic over the event payload.
//! * [`CalendarQueue`] — the same contract bucketed by time window, so a
//!   windowed loop drains each lookahead span as one sorted batch.
//! * [`server`] — analytic queued servers used to model bandwidth-limited
//!   resources (memory channels, fabric links, pipelines).
//! * [`stats`] — counters, mean/max trackers, log-bucketed histograms and
//!   throughput meters used by the experiment harness.
//!
//! The engine is single-threaded and fully deterministic: identical inputs
//! (including RNG seeds) produce identical simulated histories, which the
//! test suite relies on.
//!
//! # Example
//!
//! ```
//! use sabre_sim::{EventQueue, Time};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Time::from_ns(5), "late");
//! q.schedule(Time::from_ns(1), "early");
//! let (t, ev) = q.pop().expect("two events were scheduled");
//! assert_eq!((t, ev), (Time::from_ns(1), "early"));
//! ```

pub mod calendar;
pub mod queue;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use calendar::CalendarQueue;
pub use queue::EventQueue;
pub use rng::{SimRng, Zipf};
pub use server::{BandwidthServer, FifoServer};
pub use stats::{Counter, Histogram, HopStats, LatencyHistogram, MeanTracker, Throughput};
pub use time::{Freq, Time};
