//! Analytic queued servers.
//!
//! These model bandwidth-limited, in-order resources — memory channels, NOC
//! and fabric links, pipeline issue slots — without simulating their internal
//! structure. A server tracks the instant it next becomes free; a request
//! arriving at `now` begins service at `max(now, next_free)`, occupies the
//! server for its service time, and completes after its latency.
//!
//! This is the standard transaction-level technique for modeling DDR
//! channels and links: it preserves both the *bandwidth ceiling* (requests
//! queue when offered load exceeds capacity) and the *unloaded latency*.

use crate::time::{transfer_time, Time};

/// An in-order single server with a fixed per-request service time model.
///
/// # Example
///
/// ```
/// use sabre_sim::{FifoServer, Time};
///
/// // A DDR4 channel: 2.5 ns occupancy per 64 B block.
/// let mut chan = FifoServer::new();
/// let occupancy = Time::from_ps(2_500);
/// let start0 = chan.admit(Time::ZERO, occupancy);
/// let start1 = chan.admit(Time::ZERO, occupancy);
/// assert_eq!(start0, Time::ZERO);
/// assert_eq!(start1, Time::from_ps(2_500)); // queued behind the first
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    next_free: Time,
    busy_total: Time,
    served: u64,
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Admits a request arriving at `now` that occupies the server for
    /// `service`. Returns the instant service *begins* (i.e. after any
    /// queueing delay); the request completes at `start + service` plus any
    /// downstream latency the caller adds.
    pub fn admit(&mut self, now: Time, service: Time) -> Time {
        let start = now.max(self.next_free);
        self.next_free = start + service;
        self.busy_total += service;
        self.served += 1;
        start
    }

    /// The instant the server next becomes free.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Total time spent busy.
    pub fn busy_total(&self) -> Time {
        self.busy_total
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, horizon]`, clamped to 1.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        (self.busy_total.as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
    }
}

/// A bandwidth-limited pipe (link or bus): occupancy per request is
/// `bytes / bandwidth`, and a fixed propagation latency is added on top.
///
/// Multiple back-to-back messages pipeline: the second message's bytes start
/// flowing as soon as the first's have been pushed into the link, while each
/// message still experiences the full propagation delay.
///
/// # Example
///
/// ```
/// use sabre_sim::{BandwidthServer, Time};
///
/// // The paper's inter-node fabric: 100 GBps, 35 ns per hop.
/// let mut link = BandwidthServer::new(100.0, Time::from_ns(35));
/// let arrive = link.transmit(Time::ZERO, 100); // 100 B: 1 ns serialization
/// assert_eq!(arrive, Time::from_ns(36));
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthServer {
    gbps: f64,
    latency: Time,
    server: FifoServer,
    bytes_total: u64,
}

impl BandwidthServer {
    /// Creates a pipe with the given bandwidth (decimal GB/s) and fixed
    /// propagation latency.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive.
    pub fn new(gbps: f64, latency: Time) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        BandwidthServer {
            gbps,
            latency,
            server: FifoServer::new(),
            bytes_total: 0,
        }
    }

    /// Transmits `bytes` starting no earlier than `now`; returns the arrival
    /// time at the far end (serialization + queueing + propagation).
    pub fn transmit(&mut self, now: Time, bytes: u64) -> Time {
        let ser = transfer_time(bytes, self.gbps);
        let start = self.server.admit(now, ser);
        self.bytes_total += bytes;
        start + ser + self.latency
    }

    /// Configured bandwidth in GB/s.
    pub fn gbps(&self) -> f64 {
        self.gbps
    }

    /// Configured propagation latency.
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// Total bytes pushed through the pipe.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Time) -> f64 {
        self.server.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_server_is_work_conserving() {
        let mut s = FifoServer::new();
        let svc = Time::from_ns(10);
        assert_eq!(s.admit(Time::from_ns(5), svc), Time::from_ns(5));
        // Arrives while busy: queued.
        assert_eq!(s.admit(Time::from_ns(7), svc), Time::from_ns(15));
        // Arrives after idle gap: starts immediately.
        assert_eq!(s.admit(Time::from_ns(100), svc), Time::from_ns(100));
        assert_eq!(s.served(), 3);
        assert_eq!(s.busy_total(), Time::from_ns(30));
    }

    #[test]
    fn fifo_utilization() {
        let mut s = FifoServer::new();
        s.admit(Time::ZERO, Time::from_ns(25));
        assert!((s.utilization(Time::from_ns(100)) - 0.25).abs() < 1e-12);
        assert_eq!(s.utilization(Time::ZERO), 0.0);
    }

    #[test]
    fn bandwidth_server_unloaded_latency() {
        let mut l = BandwidthServer::new(100.0, Time::from_ns(35));
        // 64 B: 0.64 ns serialization + 35 ns propagation.
        assert_eq!(l.transmit(Time::ZERO, 64), Time::from_ps(35_640));
    }

    #[test]
    fn bandwidth_server_pipelines_messages() {
        let mut l = BandwidthServer::new(100.0, Time::from_ns(35));
        let first = l.transmit(Time::ZERO, 1000); // 10 ns serialization
        let second = l.transmit(Time::ZERO, 1000); // queued behind first
        assert_eq!(first, Time::from_ns(45));
        assert_eq!(second, Time::from_ns(55));
        assert_eq!(l.bytes_total(), 2000);
    }

    #[test]
    fn sustained_throughput_matches_bandwidth() {
        // Push 1 MB through a 100 GBps link in 64 B packets; drain time
        // should be ~10 us (1 MB / 100 GBps), not dominated by the 35 ns
        // per-packet latency.
        let mut l = BandwidthServer::new(100.0, Time::from_ns(35));
        let packets = 1_000_000 / 64;
        let mut last = Time::ZERO;
        for _ in 0..packets {
            last = l.transmit(Time::ZERO, 64);
        }
        let expected_ns = 1_000_000.0 / 100.0 + 35.0;
        assert!((last.as_ns() - expected_ns).abs() < 1.0, "{last}");
    }
}
