//! The event queue at the heart of the discrete-event engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A deterministic priority queue of timestamped events.
///
/// Events with equal timestamps are returned in the order they were
/// scheduled. The queue is generic over the event payload so each layer of
/// the system (and each test) can use its own event enum.
///
/// # Example
///
/// ```
/// use sabre_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(10), 'b');
/// q.schedule(Time::from_ns(10), 'c');
/// q.schedule(Time::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct HeapEntry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` for delivery at time `at`.
    ///
    /// `at` may be in the "past" relative to events already popped; the
    /// engine layer is responsible for never doing that (and asserts so).
    pub fn schedule(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry { at, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(3), 3u32);
        q.schedule(Time::from_ns(1), 1u32);
        q.schedule(Time::from_ns(2), 2u32);
        assert_eq!(q.pop(), Some((Time::from_ns(1), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(2), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(Time::from_ns(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((Time::from_ns(7), i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ns(9), ());
        q.schedule(Time::from_ns(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(4)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_pop_preserves_determinism() {
        // Mimics a simulation loop that schedules new events while draining.
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(1), "a");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "a");
        q.schedule(t + Time::from_ns(1), "b");
        q.schedule(t + Time::from_ns(1), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
