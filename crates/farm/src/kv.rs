//! The key-value view over an object store.
//!
//! The evaluation's application is a read-only KV store on FaRM: every
//! lookup hashes a key, finds the object's location, and reads it with one
//! one-sided operation. We model the mapping with a multiplicative hash —
//! what matters for the experiments is that keys spread uniformly over
//! objects and that the lookup costs [`FarmCosts::lookup`] cycles.
//!
//! [`FarmCosts::lookup`]: crate::FarmCosts::lookup

use sabre_mem::Addr;

use crate::store::ObjectStore;

/// A keyspace mapped onto an [`ObjectStore`].
///
/// # Example
///
/// ```
/// use sabre_farm::{KvStore, ObjectStore, StoreLayout};
/// use sabre_mem::Addr;
///
/// let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 128, 100);
/// let kv = KvStore::new(store, 10_000);
/// let (obj, addr) = kv.locate(1234);
/// assert!(obj < 100);
/// assert_eq!(addr, kv.store().object_addr(obj));
/// ```
#[derive(Debug, Clone)]
pub struct KvStore {
    store: ObjectStore,
    keys: u64,
}

impl KvStore {
    /// Wraps `store` with a keyspace of `keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0`.
    pub fn new(store: ObjectStore, keys: u64) -> Self {
        assert!(keys > 0, "empty keyspace");
        KvStore { store, keys }
    }

    /// The underlying object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Size of the keyspace.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Hashes `key` to its object id and address (Fibonacci hashing — fast
    /// and uniform enough for workload generation).
    pub fn locate(&self, key: u64) -> (u64, Addr) {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let obj = h % self.store.n_objects();
        (obj, self.store.object_addr(obj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreLayout;

    fn kv() -> KvStore {
        KvStore::new(
            ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 128, 100),
            1_000_000,
        )
    }

    #[test]
    fn locate_is_deterministic_and_in_range() {
        let kv = kv();
        for key in [0u64, 1, 42, 99_999, u64::MAX] {
            let (a1, addr1) = kv.locate(key);
            let (a2, addr2) = kv.locate(key);
            assert_eq!((a1, addr1), (a2, addr2));
            assert!(a1 < 100);
        }
    }

    #[test]
    fn keys_spread_over_objects() {
        let kv = kv();
        let mut hit = [false; 100];
        for key in 0..10_000u64 {
            hit[kv.locate(key).0 as usize] = true;
        }
        let covered = hit.iter().filter(|&&h| h).count();
        assert!(covered > 95, "only {covered}/100 objects hit");
    }
}
