//! The object store: a registered region of fixed-size object slots.

use sabre_mem::{Addr, NodeMemory};
use sabre_rack::workloads::pattern_payload;
use sabre_sw::layout::{CleanLayout, PerClLayout};
use sabre_sw::{ChecksumLayout, WfRegisterLayout};

/// Which object layout the store uses — the choice the paper's evaluation
/// toggles between its baseline and SABRe configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreLayout {
    /// Clean layout: 16 B header + contiguous payload (SABRe variant;
    /// "unmodified object store" in Fig. 10).
    Clean,
    /// FaRM per-cache-line versions.
    PerCl,
    /// Pilaf checksums.
    Checksum,
    /// The wait-free multi-version register (Ianni et al.): a publish-word
    /// header block plus [`WfRegisterLayout::SLOTS`] version slots. Reads
    /// transfer only the header + the published slot, so the wire size is
    /// much smaller than the footprint. (Oh-RAM reads need no layout of
    /// their own — they run over [`StoreLayout::Clean`] objects.)
    WfRegister,
}

impl StoreLayout {
    /// In-memory footprint of one object with `payload` clean bytes,
    /// rounded up to whole blocks (slots are block-aligned).
    pub fn object_bytes(self, payload: usize) -> usize {
        match self {
            StoreLayout::Clean => CleanLayout::object_bytes(payload),
            StoreLayout::PerCl => PerClLayout::object_bytes(payload),
            StoreLayout::Checksum => ChecksumLayout::object_bytes(payload),
            StoreLayout::WfRegister => WfRegisterLayout::object_bytes(payload),
        }
    }

    /// Bytes a one-sided read of one object must transfer. Equal to the
    /// footprint for all layouts except the wait-free register, which
    /// keeps multiple versions in memory but ships only one.
    pub fn wire_bytes(self, payload: usize) -> usize {
        match self {
            StoreLayout::WfRegister => WfRegisterLayout::wire_bytes(payload),
            _ => self.object_bytes(payload),
        }
    }

    /// The matching reader mechanism for [`sabre_rack`] workloads.
    pub fn mechanism(self, payload: u32) -> sabre_rack::ReadMechanism {
        match self {
            StoreLayout::Clean => sabre_rack::ReadMechanism::Sabre,
            StoreLayout::PerCl => sabre_rack::ReadMechanism::PerClValidate { payload },
            StoreLayout::Checksum => sabre_rack::ReadMechanism::ChecksumValidate { payload },
            StoreLayout::WfRegister => sabre_rack::ReadMechanism::WfRegister { payload },
        }
    }
}

/// Descriptor of an object store region on one node.
///
/// # Example
///
/// ```
/// use sabre_farm::{ObjectStore, StoreLayout};
/// use sabre_mem::Addr;
///
/// let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 128, 100);
/// assert_eq!(store.object_addr(0), Addr::new(0));
/// assert_eq!(store.object_addr(1), Addr::new(192)); // 16 B header + 128 B, block-aligned
/// assert_eq!(store.region_bytes(), 192 * 100);
/// ```
#[derive(Debug, Clone)]
pub struct ObjectStore {
    node: u8,
    base: Addr,
    layout: StoreLayout,
    payload: u32,
    n_objects: u64,
}

impl ObjectStore {
    /// Describes a store of `n_objects` objects of `payload` clean bytes
    /// each, laid out contiguously from `base` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not block-aligned or the store is empty.
    pub fn new(node: u8, base: Addr, layout: StoreLayout, payload: u32, n_objects: u64) -> Self {
        assert!(base.is_block_aligned(), "stores are block-aligned");
        assert!(payload > 0 && n_objects > 0, "empty store");
        ObjectStore {
            node,
            base,
            layout,
            payload,
            n_objects,
        }
    }

    /// The node owning the region.
    pub fn node(&self) -> u8 {
        self.node
    }

    /// The store's layout.
    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// Clean payload bytes per object.
    pub fn payload(&self) -> u32 {
        self.payload
    }

    /// Number of objects.
    pub fn n_objects(&self) -> u64 {
        self.n_objects
    }

    /// Footprint of one object slot in bytes (block multiple). This is the
    /// object *spacing*; the read transfer size is
    /// [`ObjectStore::wire_bytes`], which differs for the wait-free
    /// register layout.
    pub fn slot_bytes(&self) -> u64 {
        self.layout.object_bytes(self.payload as usize) as u64
    }

    /// Bytes a one-sided read of one object transfers.
    pub fn wire_bytes(&self) -> u64 {
        self.layout.wire_bytes(self.payload as usize) as u64
    }

    /// Total region size in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.slot_bytes() * self.n_objects
    }

    /// Base address of object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn object_addr(&self, i: u64) -> Addr {
        assert!(i < self.n_objects, "object {i} out of range");
        self.base + i * self.slot_bytes()
    }

    /// All object addresses (for workload constructors).
    pub fn object_addrs(&self) -> Vec<Addr> {
        (0..self.n_objects).map(|i| self.object_addr(i)).collect()
    }

    /// `(id, addr)` pairs for writer constructors.
    pub fn object_entries(&self) -> Vec<(u64, Addr)> {
        (0..self.n_objects)
            .map(|i| (i, self.object_addr(i)))
            .collect()
    }

    /// Initializes every object in simulated memory with its id's pattern
    /// at sequence 0 (see
    /// [`pattern_payload`]).
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit in `mem`.
    pub fn init(&self, mem: &mut NodeMemory) {
        assert!(
            (self.base.raw() + self.region_bytes()) as usize <= mem.size(),
            "store region exceeds node memory"
        );
        for i in 0..self.n_objects {
            let payload = pattern_payload(i, 0, self.payload as usize);
            let addr = self.object_addr(i);
            match self.layout {
                StoreLayout::Clean => CleanLayout::init(mem, addr, &payload),
                StoreLayout::PerCl => PerClLayout::init(mem, addr, &payload),
                StoreLayout::Checksum => ChecksumLayout::init(mem, addr, &payload),
                StoreLayout::WfRegister => WfRegisterLayout::init(mem, addr, &payload),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_rack::workloads::verify_payload;

    #[test]
    fn slot_geometry_per_layout() {
        // 128 B payload: clean = 144 → 192; per-CL = 3 lines = 192;
        // checksum = 144 → 192.
        assert_eq!(StoreLayout::Clean.object_bytes(128), 192);
        assert_eq!(StoreLayout::PerCl.object_bytes(128), 192);
        assert_eq!(StoreLayout::Checksum.object_bytes(128), 192);
        // 8 KB payload: clean = 8256; per-CL = 9408.
        assert_eq!(StoreLayout::Clean.object_bytes(8192), 8256);
        assert_eq!(StoreLayout::PerCl.object_bytes(8192), 9408);
        // Wait-free register: footprint is 4 slots + header, but the wire
        // carries only the header + one slot.
        assert_eq!(StoreLayout::WfRegister.object_bytes(128), 64 + 4 * 192);
        assert_eq!(StoreLayout::WfRegister.wire_bytes(128), 64 + 192);
        assert_eq!(StoreLayout::Clean.wire_bytes(128), 192);
    }

    #[test]
    fn wf_register_init_round_trip() {
        use sabre_sw::WfRegisterLayout;
        let store = ObjectStore::new(0, Addr::new(0), StoreLayout::WfRegister, 100, 4);
        assert_eq!(store.wire_bytes(), 64 + 128);
        let mut mem = NodeMemory::new(store.region_bytes() as usize);
        store.init(&mut mem);
        for i in 0..4 {
            let base = store.object_addr(i);
            assert_eq!(WfRegisterLayout::unpack(mem.read_u64(base)), (0, 0));
            let slot0 = WfRegisterLayout::slot_addr(base, 0, 100);
            assert_eq!(verify_payload(i, &mem.read_vec(slot0 + 8, 100)), Some(0));
        }
    }

    #[test]
    fn init_produces_validatable_objects() {
        let store = ObjectStore::new(0, Addr::new(0), StoreLayout::PerCl, 200, 10);
        let mut mem = NodeMemory::new(store.region_bytes() as usize);
        store.init(&mut mem);
        for i in 0..10 {
            let image = mem.read_vec(store.object_addr(i), store.slot_bytes() as usize);
            let clean = PerClLayout::validate_and_strip(&image, 200).expect("fresh object");
            assert_eq!(verify_payload(i, &clean), Some(0));
        }
    }

    #[test]
    fn clean_init_round_trip() {
        let store = ObjectStore::new(0, Addr::new(64), StoreLayout::Clean, 100, 4);
        let mut mem = NodeMemory::new(64 + store.region_bytes() as usize);
        store.init(&mut mem);
        let image = mem.read_vec(store.object_addr(2), store.slot_bytes() as usize);
        assert_eq!(
            verify_payload(2, CleanLayout::payload_of(&image, 100)),
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn object_bounds_checked() {
        let store = ObjectStore::new(0, Addr::new(0), StoreLayout::Clean, 64, 2);
        let _ = store.object_addr(2);
    }

    #[test]
    #[should_panic(expected = "exceeds node memory")]
    fn region_must_fit() {
        let store = ObjectStore::new(0, Addr::new(0), StoreLayout::Clean, 1024, 1000);
        let mut mem = NodeMemory::new(4096);
        store.init(&mut mem);
    }
}
