//! Scenario-builder integration: declaring object-store regions.
//!
//! [`sabre_rack::ScenarioBuilder`] is store-agnostic (the rack crate sits
//! below this one); this extension trait teaches it FaRM object stores, so
//! experiments declare their store the same way they declare raw regions:
//!
//! ```
//! use sabre_farm::scenario::ScenarioStoreExt;
//! use sabre_farm::StoreLayout;
//! use sabre_rack::{spec, ReadMechanism, ScenarioBuilder};
//! use sabre_sim::Time;
//!
//! let (scenario, store) =
//!     ScenarioBuilder::new().store(1, StoreLayout::Clean, 1024, Some(64));
//! let report = scenario
//!     .reader_spec(
//!         0,
//!         0,
//!         spec()
//!             .store(1)
//!             .payload(1024)
//!             .mechanism(ReadMechanism::Sabre)
//!             .wire(store.slot_bytes() as u32),
//!     )
//!     .run_for(Time::from_us(30));
//! assert!(report.core(0, 0).ops > 0);
//! ```

use sabre_mem::Addr;
use sabre_rack::ScenarioBuilder;

use crate::replica::ReplicatedStore;
use crate::store::{ObjectStore, StoreLayout};

/// Declares FaRM object-store regions on a [`ScenarioBuilder`].
///
/// Each method returns the [`ObjectStore`] handle alongside the builder:
/// the handle is a cheap clone-able *description* (addresses, layout
/// geometry) usable immediately by workload factories, while the region's
/// memory initialization is deferred to scenario materialization. The
/// store's object addresses also join the scenario's target list, in
/// declaration order.
pub trait ScenarioStoreExt: Sized {
    /// Declares an object store of `payload`-byte objects in `layout` at
    /// address 0 of `node`, memory resident (≈16 MB of objects) unless
    /// `n_objects` pins the count.
    fn store(
        self,
        node: u8,
        layout: StoreLayout,
        payload: u32,
        n_objects: Option<u64>,
    ) -> (Self, ObjectStore);

    /// [`ScenarioStoreExt::store`] at an explicit base address with an
    /// explicit object count.
    fn store_at(
        self,
        node: u8,
        base: Addr,
        layout: StoreLayout,
        payload: u32,
        count: u64,
    ) -> (Self, ObjectStore);

    /// [`ScenarioStoreExt::store`] plus an LLC pre-warm over the whole
    /// region — the paper's "all accesses are LLC resident" setups.
    fn warmed_store(
        self,
        node: u8,
        layout: StoreLayout,
        payload: u32,
        n_objects: Option<u64>,
    ) -> (Self, ObjectStore);

    /// Declares one store shard per node in `nodes` (each at address 0 of
    /// its node, `objects_per_shard` objects of `payload` bytes in
    /// `layout`), returning the shard handles in the same order — the
    /// N-node rack's data placement, normally driven by the topology's
    /// [`store_nodes`](sabre_rack::Topology::store_nodes). The scenario's
    /// concatenated target list holds each shard's objects contiguously,
    /// in declaration order.
    fn sharded_store(
        self,
        nodes: impl IntoIterator<Item = usize>,
        layout: StoreLayout,
        payload: u32,
        objects_per_shard: u64,
    ) -> (Self, Vec<ObjectStore>);

    /// Declares one [`ReplicatedStore`]: `n_objects` objects of `payload`
    /// bytes in `layout`, initialized identically at address 0 of every
    /// node in `sites` (pick sites with
    /// [`replica_sites`](crate::replica_sites)). Only the *first* site's
    /// object addresses join the scenario's target list — readers address
    /// replicas through
    /// [`ReplicatedStore::view_for`] +
    /// `sabre_rack::WorkloadSpec::replicas`, not the flat target list.
    fn replicated_store(
        self,
        sites: &[usize],
        layout: StoreLayout,
        payload: u32,
        n_objects: u64,
    ) -> (Self, ReplicatedStore);
}

/// Memory-resident object count for a layout/payload: ≈16 MB of slots,
/// clamped exactly as the legacy harness scaffolding did.
fn resident_count(layout: StoreLayout, payload: u32) -> u64 {
    let slot = layout.object_bytes(payload as usize) as u64;
    (16 * 1024 * 1024 / slot).clamp(1, 16_384)
}

impl ScenarioStoreExt for ScenarioBuilder {
    fn store(
        self,
        node: u8,
        layout: StoreLayout,
        payload: u32,
        n_objects: Option<u64>,
    ) -> (Self, ObjectStore) {
        let count = n_objects.unwrap_or_else(|| resident_count(layout, payload));
        self.store_at(node, Addr::new(0), layout, payload, count)
    }

    fn store_at(
        self,
        node: u8,
        base: Addr,
        layout: StoreLayout,
        payload: u32,
        count: u64,
    ) -> (Self, ObjectStore) {
        let store = ObjectStore::new(node, base, layout, payload, count);
        let handle = store.clone();
        let scenario = self.prepare(move |cluster| {
            store.init(cluster.node_memory_mut(node as usize));
            store.object_addrs()
        });
        (scenario, handle)
    }

    fn warmed_store(
        self,
        node: u8,
        layout: StoreLayout,
        payload: u32,
        n_objects: Option<u64>,
    ) -> (Self, ObjectStore) {
        let (scenario, store) = self.store(node, layout, payload, n_objects);
        let scenario = scenario.warm_llc(node as usize, store.object_addr(0), store.region_bytes());
        (scenario, store)
    }

    fn sharded_store(
        self,
        nodes: impl IntoIterator<Item = usize>,
        layout: StoreLayout,
        payload: u32,
        objects_per_shard: u64,
    ) -> (Self, Vec<ObjectStore>) {
        let mut scenario = self;
        let mut shards = Vec::new();
        for node in nodes {
            let (next, shard) =
                scenario.store_at(node as u8, Addr::new(0), layout, payload, objects_per_shard);
            scenario = next;
            shards.push(shard);
        }
        assert!(
            !shards.is_empty(),
            "a sharded store needs at least one node"
        );
        (scenario, shards)
    }

    fn replicated_store(
        self,
        sites: &[usize],
        layout: StoreLayout,
        payload: u32,
        n_objects: u64,
    ) -> (Self, ReplicatedStore) {
        let store = ReplicatedStore::new(sites, Addr::new(0), layout, payload, n_objects);
        let handle = store.clone();
        let scenario = self.prepare(move |cluster| {
            for replica in store.replicas() {
                replica.init(cluster.node_memory_mut(replica.node() as usize));
            }
            store.replicas()[0].object_addrs()
        });
        (scenario, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_rack::{spec, ReadMechanism};
    use sabre_sim::Time;

    #[test]
    fn resident_count_matches_legacy_scaffolding() {
        // 1 KB clean objects: 1040-byte slots rounded to 1088; 16 MB / slot.
        let slot = StoreLayout::Clean.object_bytes(1024) as u64;
        assert_eq!(
            resident_count(StoreLayout::Clean, 1024),
            16 * 1024 * 1024 / slot
        );
        // Tiny objects clamp at 16384.
        assert_eq!(resident_count(StoreLayout::Clean, 48), 16_384);
    }

    #[test]
    fn declared_store_is_initialized_and_readable() {
        let (scenario, store) = ScenarioBuilder::new().store(1, StoreLayout::Clean, 112, Some(16));
        let wire = store.slot_bytes() as u32;
        let report = scenario
            .reader(0, 0, move |targets| {
                assert_eq!(targets.len(), 16, "store targets reach the factory");
                spec()
                    .store(1)
                    .payload(112)
                    .mechanism(ReadMechanism::Sabre)
                    .wire(wire)
                    .build(targets)
            })
            .run_for(Time::from_us(30));
        assert!(report.core(0, 0).ops > 0);
        assert_eq!(report.core(0, 0).retries, 0, "no writers, no conflicts");
    }

    #[test]
    fn sharded_store_places_one_shard_per_node() {
        let builder = ScenarioBuilder::new().nodes(6);
        let stores = builder.config().topology.store_nodes();
        assert_eq!(stores, vec![3, 4, 5]);
        let (scenario, shards) = builder.sharded_store(stores.clone(), StoreLayout::Clean, 128, 8);
        assert_eq!(shards.len(), 3);
        for (shard, &node) in shards.iter().zip(&stores) {
            assert_eq!(shard.node() as usize, node);
            assert_eq!(shard.n_objects(), 8);
        }
        // Every shard is initialized and remotely readable.
        let shard = shards[1].clone();
        let report = scenario
            .reader(0, 0, move |targets| {
                assert_eq!(targets.len(), 3 * 8, "all shards' objects reach factories");
                spec()
                    .store(shard.node() as usize)
                    .payload(128)
                    .mechanism(ReadMechanism::Sabre)
                    .wire(shard.slot_bytes() as u32)
                    .objects(shard.object_addrs())
                    .build(targets)
            })
            .run_for(Time::from_us(30));
        assert!(report.core(0, 0).ops > 0);
        let per_node = report.node_reports();
        assert!(per_node[4].r2p2.sabres_registered > 0, "shard node served");
        assert_eq!(per_node[3].r2p2.sabres_registered, 0, "unread shard idle");
    }

    #[test]
    fn warmed_store_pre_fills_the_llc() {
        let measure = |warmed: bool| {
            let b = ScenarioBuilder::new();
            let (scenario, store) = if warmed {
                b.warmed_store(1, StoreLayout::Clean, 1024, Some(64))
            } else {
                b.store(1, StoreLayout::Clean, 1024, Some(64))
            };
            scenario
                .reader_spec(
                    0,
                    0,
                    spec()
                        .store(1)
                        .payload(1024)
                        .mechanism(ReadMechanism::Sabre)
                        .wire(store.slot_bytes() as u32),
                )
                .run_for(Time::from_us(50))
                .mean_latency_ns(0, 0)
                .expect("ops completed")
        };
        assert!(
            measure(true) < measure(false),
            "LLC-resident reads must be faster than DRAM-resident ones"
        );
    }
}
