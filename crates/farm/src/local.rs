//! The FaRM *local* read path (Fig. 10).
//!
//! LightSABRes never touch local reads — but they *enable the clean object
//! layout*, and that is what Fig. 10 measures: a read-only KV lookup kernel
//! against local memory, with the store in the per-CL-versions layout
//! (every local read must validate + strip) versus the unmodified clean
//! layout (a plain streaming read).

use sabre_mem::Addr;
use sabre_rack::workloads::verify_payload;
use sabre_rack::{CoreApi, Workload};
use sabre_sim::Time;
use sabre_sw::cost::DataSource;
use sabre_sw::layout::{CleanLayout, PerClLayout};

use crate::costs::FarmCosts;
use crate::kv::KvStore;
use crate::store::StoreLayout;

/// A reader thread performing local-only key-value lookups.
#[derive(Debug)]
pub struct FarmLocalReader {
    kv: KvStore,
    costs: FarmCosts,
    remaining: Option<u64>,
    verify: bool,
    cur_obj: u64,
    cur_addr: Addr,
    t0: Time,
    busy: bool,
}

impl FarmLocalReader {
    /// A local reader that runs until the simulation ends.
    ///
    /// # Panics
    ///
    /// Panics if the store is on a different node than the reader will run
    /// on — callers are trusted to co-locate; the check happens at start.
    pub fn endless(kv: KvStore, costs: FarmCosts) -> Self {
        FarmLocalReader {
            kv,
            costs,
            remaining: None,
            verify: true,
            cur_obj: 0,
            cur_addr: Addr::new(0),
            t0: Time::ZERO,
            busy: false,
        }
    }

    /// A local reader performing exactly `n` successful lookups.
    pub fn iterations(kv: KvStore, costs: FarmCosts, n: u64) -> Self {
        let mut r = FarmLocalReader::endless(kv, costs);
        r.remaining = Some(n);
        r
    }

    /// Disables payload verification.
    pub fn without_verify(mut self) -> Self {
        self.verify = false;
        self
    }

    fn payload(&self) -> usize {
        self.kv.store().payload() as usize
    }

    /// Cost of one local lookup under the store's layout: KV lookup + the
    /// object's memory stream + (per-CL only) the exposed part of the
    /// validate+strip kernel.
    fn op_cost(&self, api: &CoreApi<'_>) -> Time {
        let wire = self.kv.store().layout().wire_bytes(self.payload());
        let read = api.cpu().read_time(wire, DataSource::Memory);
        let strip = match self.kv.store().layout() {
            StoreLayout::PerCl => {
                let nominal = api.cpu().strip_time(wire);
                sabre_sim::Time::from_ns_f64(nominal.as_ns() * self.costs.local_strip_exposed)
            }
            StoreLayout::Checksum => api.cpu().crc_time(self.payload()),
            // Clean and wait-free register need no post-processing: the
            // payload is contiguous in the (published) slot.
            StoreLayout::Clean | StoreLayout::WfRegister => Time::ZERO,
        };
        self.costs.lookup + read + strip
    }

    fn begin(&mut self, api: &mut CoreApi<'_>, new_key: bool) {
        if self.remaining == Some(0) {
            self.busy = false;
            return;
        }
        if new_key {
            let key = api.rng().below(self.kv.keys());
            let (obj, addr) = self.kv.locate(key);
            self.cur_obj = obj;
            self.cur_addr = addr;
        }
        self.t0 = api.now();
        self.busy = true;
        api.sleep(self.op_cost(api));
    }
}

impl Workload for FarmLocalReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        assert_eq!(
            self.kv.store().node() as usize,
            api.node(),
            "FarmLocalReader must be co-located with its store"
        );
        self.begin(api, true);
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        assert!(self.busy, "unexpected wake");
        let slot = self.kv.store().slot_bytes() as usize;
        let image = api.read_local(self.cur_addr, slot);
        let clean = match self.kv.store().layout() {
            StoreLayout::PerCl => PerClLayout::validate_and_strip(&image, self.payload()).ok(),
            StoreLayout::Checksum => sabre_sw::ChecksumLayout::validate(&image, self.payload())
                .ok()
                .map(<[u8]>::to_vec),
            StoreLayout::Clean => {
                // Local optimistic read: version must be even (no writer).
                let v = CleanLayout::version_of(&image);
                (!v.is_locked()).then(|| CleanLayout::payload_of(&image, self.payload()).to_vec())
            }
            StoreLayout::WfRegister => {
                // Follow the publish word to the current slot; the local
                // snapshot is instantaneous, so it is always consistent.
                use sabre_sw::WfRegisterLayout;
                let (_, slot) = WfRegisterLayout::published_of(&image);
                let start = WfRegisterLayout::HEADER_BYTES
                    + slot as usize * WfRegisterLayout::slot_bytes(self.payload())
                    + WfRegisterLayout::SLOT_HEADER_BYTES;
                Some(image[start..start + self.payload()].to_vec())
            }
        };
        match clean {
            Some(payload) => {
                if self.verify {
                    assert!(
                        verify_payload(self.cur_obj, &payload).is_some(),
                        "torn local read of object {}",
                        self.cur_obj
                    );
                }
                let latency = api.now() - self.t0;
                api.metrics().record_success(self.payload() as u64, latency);
                if let Some(n) = &mut self.remaining {
                    *n -= 1;
                }
                self.begin(api, true);
            }
            None => {
                api.metrics().record_retry();
                self.begin(api, false);
            }
        }
    }
}
