//! The FaRM remote read path (Figs. 9a/9b): lock-free single-object reads
//! over one-sided operations.
//!
//! Baseline (per-CL versions layout): lookup → one-sided read into a
//! *system* buffer → buffer management + validate + strip into the
//! application buffer → application consumes (from L1, where the strip
//! left it). SABRe variant (clean layout): lookup → SABRe straight into
//! the application buffer (zero-copy) → application consumes (from LLC,
//! where the NI's DMA left it). Atomicity failures retry the same key, as
//! FaRM does.

use sabre_mem::Addr;
use sabre_rack::workloads::verify_payload;
use sabre_rack::{CoreApi, Phase, Workload};
use sabre_sim::Time;
use sabre_sonuma::CqEntry;
use sabre_sw::cost::DataSource;
use sabre_sw::layout::{CleanLayout, PerClLayout};

use crate::costs::FarmCosts;
use crate::kv::KvStore;
use crate::store::StoreLayout;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Lookup,
    AwaitTransfer,
    PostProcess,
    Consume,
}

/// A FaRM reader thread performing random key-value lookups over
/// synchronous one-sided operations.
#[derive(Debug)]
pub struct FarmReader {
    kv: KvStore,
    costs: FarmCosts,
    remaining: Option<u64>,
    local_buf: Option<Addr>,
    /// Verify returned payloads against the writer pattern (soundness
    /// checking; keep on — the cost is host-side only).
    verify: bool,
    cur_obj: u64,
    cur_addr: Addr,
    t0: Time,
    state: State,
}

impl FarmReader {
    /// A reader that runs until the simulation ends.
    pub fn endless(kv: KvStore, costs: FarmCosts) -> Self {
        FarmReader {
            kv,
            costs,
            remaining: None,
            local_buf: None,
            verify: true,
            cur_obj: 0,
            cur_addr: Addr::new(0),
            t0: Time::ZERO,
            state: State::Idle,
        }
    }

    /// A reader performing exactly `n` successful lookups.
    pub fn iterations(kv: KvStore, costs: FarmCosts, n: u64) -> Self {
        let mut r = FarmReader::endless(kv, costs);
        r.remaining = Some(n);
        r
    }

    /// Disables payload verification (pure performance runs).
    pub fn without_verify(mut self) -> Self {
        self.verify = false;
        self
    }

    fn payload(&self) -> u32 {
        self.kv.store().payload()
    }

    fn wire(&self) -> u32 {
        self.kv.store().layout().wire_bytes(self.payload() as usize) as u32
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        self.local_buf.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 256 * 1024)
        })
    }

    fn begin_lookup(&mut self, api: &mut CoreApi<'_>, new_key: bool) {
        if self.remaining == Some(0) {
            self.state = State::Idle;
            return;
        }
        if new_key {
            let key = api.rng().below(self.kv.keys());
            let (obj, addr) = self.kv.locate(key);
            self.cur_obj = obj;
            self.cur_addr = addr;
        }
        self.t0 = api.now();
        self.state = State::Lookup;
        api.metrics()
            .record_phase(Phase::Framework, self.costs.lookup);
        api.sleep(self.costs.lookup);
    }

    fn issue_read(&mut self, api: &mut CoreApi<'_>) {
        let mech = self.kv.store().layout().mechanism(self.payload());
        let buf = self.buf(api);
        api.issue(
            mech.op(),
            self.kv.store().node(),
            self.cur_addr,
            buf,
            self.wire(),
            0,
        );
        self.state = State::AwaitTransfer;
    }

    fn success(&mut self, api: &mut CoreApi<'_>) {
        let latency = api.now() - self.t0;
        api.metrics().record_success(self.payload() as u64, latency);
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        self.begin_lookup(api, true);
    }

    fn retry(&mut self, api: &mut CoreApi<'_>) {
        api.metrics().record_retry();
        self.begin_lookup(api, false);
    }

    /// Validates the transferred image; returns the clean payload on
    /// success.
    fn validate(&self, api: &CoreApi<'_>) -> Option<Vec<u8>> {
        let image = api.read_local(self.buf(api), self.wire() as usize);
        match self.kv.store().layout() {
            StoreLayout::PerCl => {
                PerClLayout::validate_and_strip(&image, self.payload() as usize).ok()
            }
            StoreLayout::Checksum => {
                sabre_sw::ChecksumLayout::validate(&image, self.payload() as usize)
                    .ok()
                    .map(|p| p.to_vec())
            }
            StoreLayout::Clean => {
                Some(CleanLayout::payload_of(&image, self.payload() as usize).to_vec())
            }
            StoreLayout::WfRegister => Some(
                sabre_sw::WfRegisterLayout::payload_of(&image, self.payload() as usize).to_vec(),
            ),
        }
    }

    fn check_pattern(&self, payload: &[u8]) {
        if self.verify {
            assert!(
                verify_payload(self.cur_obj, payload).is_some(),
                "torn object {} delivered as atomic",
                self.cur_obj
            );
        }
    }
}

impl Workload for FarmReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.begin_lookup(api, true);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        assert_eq!(self.state, State::AwaitTransfer);
        let transfer = api.now() - self.t0;
        api.metrics().record_phase(Phase::Transfer, transfer);
        match self.kv.store().layout() {
            StoreLayout::Clean | StoreLayout::WfRegister => {
                if !cq.success {
                    self.retry(api);
                    return;
                }
                // Zero-copy: the object is already in the application
                // buffer (LLC-resident); lean framework + consume.
                let framework = self.costs.framework_sabre;
                let app = api
                    .cpu()
                    .read_time(self.payload() as usize, DataSource::Llc);
                api.metrics().record_phase(Phase::Framework, framework);
                api.metrics().record_phase(Phase::App, app);
                self.state = State::Consume;
                api.sleep(framework + app);
            }
            StoreLayout::PerCl => {
                let framework = self.costs.framework_baseline();
                let strip = api.cpu().strip_time(self.wire() as usize);
                api.metrics().record_phase(Phase::Framework, framework);
                api.metrics().record_phase(Phase::Strip, strip);
                self.state = State::PostProcess;
                api.sleep(framework + strip);
            }
            StoreLayout::Checksum => {
                let framework = self.costs.framework_baseline();
                let crc = api.cpu().crc_time(self.payload() as usize);
                api.metrics().record_phase(Phase::Framework, framework);
                api.metrics().record_phase(Phase::Strip, crc);
                self.state = State::PostProcess;
                api.sleep(framework + crc);
            }
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        match self.state {
            State::Lookup => self.issue_read(api),
            State::PostProcess => match self.validate(api) {
                Some(payload) => {
                    self.check_pattern(&payload);
                    // The strip left the clean object in the L1d; the
                    // application consumes it from there.
                    let app = api.cpu().read_time(payload.len(), DataSource::L1);
                    api.metrics().record_phase(Phase::App, app);
                    self.state = State::Consume;
                    api.sleep(app);
                }
                None => self.retry(api),
            },
            State::Consume => {
                let layout = self.kv.store().layout();
                if matches!(layout, StoreLayout::Clean | StoreLayout::WfRegister) && self.verify {
                    if let Some(payload) = self.validate(api) {
                        self.check_pattern(&payload);
                    }
                }
                self.success(api);
            }
            s => panic!("unexpected wake in {s:?}"),
        }
    }
}
