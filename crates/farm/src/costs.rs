//! The FaRM framework cost model.
//!
//! These constants put numbers on the software-path effects the paper
//! describes qualitatively in §7.3:
//!
//! * the KV **lookup** (hashing + index walk) is common to both variants;
//! * the baseline pays **intermediate-buffer management** — FaRM must land
//!   one-sided reads in a system buffer before stripping into the
//!   application's buffer, code the SABRe variant deletes entirely
//!   (zero-copy);
//! * the baseline's larger instruction working set (the paper measured
//!   40–50 KB against a 48 KB L1i, and a ≈7% reduction with SABRes) costs
//!   extra **frontend stalls** on the remote-read path;
//! * local strip kernels partially overlap their compute with the memory
//!   stream, so only a fraction of the nominal strip time is exposed.

use sabre_sim::Time;

/// Calibrated FaRM framework costs. See the module docs for what each
/// captures; EXPERIMENTS.md records the resulting fit against Figs. 1, 9
/// and 10.
#[derive(Debug, Clone)]
pub struct FarmCosts {
    /// Key-value lookup: hash, index walk, request setup.
    pub lookup: Time,
    /// Baseline only: intermediate transfer-buffer management.
    pub buffer_mgmt: Time,
    /// Baseline only: extra frontend stalls from the larger instruction
    /// footprint on the remote path.
    pub frontend_extra: Time,
    /// SABRe path: the (leaner) framework bookkeeping.
    pub framework_sabre: Time,
    /// Fraction of the strip kernel's time *not* hidden under the memory
    /// stream for local reads (Fig. 10).
    pub local_strip_exposed: f64,
}

impl Default for FarmCosts {
    fn default() -> Self {
        FarmCosts {
            lookup: Time::from_ns(200),
            buffer_mgmt: Time::from_ns(180),
            frontend_extra: Time::from_ns(100),
            framework_sabre: Time::from_ns(70),
            local_strip_exposed: 0.75,
        }
    }
}

impl FarmCosts {
    /// Total framework time on the baseline remote path (excl. strip).
    pub fn framework_baseline(&self) -> Time {
        self.buffer_mgmt + self.frontend_extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_framework_exceeds_sabre() {
        let c = FarmCosts::default();
        assert!(c.framework_baseline() > c.framework_sabre);
        assert!(c.local_strip_exposed > 0.0 && c.local_strip_exposed <= 1.0);
    }
}
