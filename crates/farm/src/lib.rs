//! A FaRM-like distributed object store and key-value store.
//!
//! FaRM ("Fast Remote Memory", NSDI'14) is the full software stack of the
//! paper's end-to-end evaluation (§6–§7.3): a transactional distributed
//! memory system whose fast path — lock-free, strictly serializable
//! single-object remote reads — is exactly what SABRes accelerate. This
//! crate reproduces the parts of FaRM the evaluation exercises:
//!
//! * [`store`] — the object store: fixed-size block-aligned object slots in
//!   a registered region, in either the **per-cache-line versions** layout
//!   (the FaRM baseline), the **clean** layout (the SABRe variant), or the
//!   **checksum** layout (the Pilaf comparison);
//! * [`kv`] — the key-value view: key → object mapping and lookup cost;
//! * [`costs`] — the FaRM framework cost model: KV lookup, the baseline's
//!   intermediate-buffer management, the leaner SABRe path (including the
//!   ≈7% instruction-footprint reduction the paper measures), and the
//!   overlap factor for local strip kernels;
//! * [`read_path`] — the [`FarmReader`] workload of Figs. 9a/9b: lookup →
//!   one-sided read → (baseline: validate + strip into the application
//!   buffer | SABRe: zero-copy) → application consume;
//! * [`local`] — the [`FarmLocalReader`] workload of Fig. 10: local-only
//!   key-value lookups against the two store layouts;
//! * [`write_path`] — writes over RPC (FaRM never writes remote memory
//!   one-sidedly): the [`RpcWriteServer`] applying updates at the owner and
//!   the [`RpcWriter`] client;
//! * [`replica`] — the [`ReplicatedStore`]: k identical copies of one
//!   object set across store nodes, leaf-aware site selection and the
//!   nearest-first replica views the rack's failover readers consume;
//! * [`scenario`] — the [`ScenarioStoreExt`] extension letting
//!   [`sabre_rack::ScenarioBuilder`] declare object-store regions.

pub mod costs;
pub mod kv;
pub mod local;
pub mod read_path;
pub mod recovery;
pub mod replica;
pub mod scenario;
pub mod store;
pub mod write_path;

pub use costs::FarmCosts;
pub use kv::KvStore;
pub use local::FarmLocalReader;
pub use read_path::FarmReader;
pub use recovery::{RecoveringWriter, ReplicaState, WriteLog};
pub use replica::{replica_sites, ReplicatedStore};
pub use scenario::ScenarioStoreExt;
pub use store::{ObjectStore, StoreLayout};
pub use write_path::{RpcWriteServer, RpcWriter};
