//! Replica catch-up recovery: per-site write logs, the replica state
//! machine, and the recovering writer that pulls missed updates from a
//! live peer after an outage.
//!
//! The base replication story (see [`crate::replica`]) keeps every site
//! current by running the same deterministic writer schedule everywhere —
//! a crashed site's *local* writer keeps going, so no catch-up is needed.
//! That models software crashes well but not *whole-machine* outages
//! (power-cycled chassis, a dead fat-tree leaf), where the site's writer
//! genuinely stops and the restored image is stale. This module closes
//! that gap:
//!
//! * [`WriteLog`]: a bounded ring of `(object, seq)` records plus a head
//!   block publishing the latest sequence number, maintained in each
//!   site's memory by its [`RecoveringWriter`] with ordinary paced local
//!   stores. The record for seq `s` is appended *before* the head bumps
//!   to `s`, and stores execute in issue order — so any image of the
//!   region whose head reads `s` contains every record `≤ s` intact,
//!   even if pulled while the owner keeps appending.
//! * [`RecoveringWriter`]: a drop-in local writer
//!   ([`Writer`](sabre_rack::workloads::Writer)-compatible schedule:
//!   round-robin objects, one pattern seq per update, one block store per
//!   [`writer_store_interval`](sabre_rack::ClusterConfig::writer_store_interval))
//!   that *freezes* at update boundaries while its own node is down,
//!   then walks the [`ReplicaState`] machine `Live → Down → CatchingUp →
//!   Live`: it pulls the nearest live peer's write-log region over the
//!   real fabric ([`OpKind::CatchUpPull`] — paying hops, uplink queueing
//!   and conservation accounting like any transfer), replays the missed
//!   updates through the exact deterministic update path, and re-pulls
//!   until the remaining lag is at most `converged_lag`.
//!
//! While a site catches up, the node's R2P2 pipelines hold the epoch/seq
//! guard ([`CoreApi::set_catching_up`]): reads are refused (the reader
//! retries at the next replica) or, under
//! [`serve_stale`](sabre_rack::ClusterConfig::serve_stale), served with a
//! staleness counter. Catch-up pulls are guarded too — and *always*
//! refused, even in serve-stale mode: a correlated whole-leaf outage
//! restores sibling sites together, and pulling a sibling's equally-stale
//! log would declare convergence far short of the live peers. A refused
//! puller strikes that peer off for the round and retries at its
//! next-nearest one, so two recovering sites bounce off each other and
//! both land on the surviving replica; refusals are answers, not hangs,
//! so no deadlock — if *every* peer refuses (or is down), the puller
//! sleeps briefly and retries the full list.
//!
//! Destination-locking experiments add one more recovery duty: a shared
//! reader lock still set on a restored site is *dead* — the reader's
//! fire-and-forget release was dropped with the outage — so the writer
//! clears its objects' lock words on entering catch-up (lease expiry),
//! instead of spinning forever on a lock nobody holds.
//!
//! Convergence requires the writer's `think` pause to be positive: replay
//! runs think-free at one store per interval, so it outpaces live peers
//! (who pay `think` per update) and the lag shrinks every round. A
//! `think`-free writer would produce updates exactly as fast as replay
//! consumes them.

use sabre_mem::{Addr, BLOCK_BYTES};
use sabre_rack::workloads::{update_chunks, WriterLayout};
use sabre_rack::{CoreApi, Workload};
use sabre_sim::Time;
use sabre_sonuma::{CqEntry, OpKind};
use sabre_sw::VersionWord;

/// Availability state of one replica site, as its writer walks it; see
/// [`RecoveringWriter::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Serving reads and applying its own update schedule.
    Live,
    /// Inside an outage window: the writer is frozen at an update
    /// boundary and the fabric drops the node's packets.
    Down,
    /// Restored but stale: pulling missed writes from a live peer while
    /// the epoch/seq guard refuses (or stale-marks) reads.
    CatchingUp,
}

/// Geometry of a per-site write log: one head block publishing the latest
/// sequence number, followed by a bounded ring of
/// [`RECORD_BYTES`](WriteLog::RECORD_BYTES)-byte `(object id, seq)`
/// records. Purely descriptive — the log lives in simulated node memory
/// and is written through [`CoreApi::store_local`] like any other data,
/// so log maintenance pays real store pacing and coherence traffic.
///
/// Identical geometry on every replica site (same base, same capacity),
/// mirroring how the object stores replicate; a catch-up pull can
/// therefore read a peer's region at its own local addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteLog {
    base: Addr,
    cap: u64,
}

impl WriteLog {
    /// Bytes per `(object id u64, seq u64)` record.
    pub const RECORD_BYTES: u64 = 16;

    /// Bytes of the head block (only the leading u64 — the latest
    /// published seq — is meaningful; the rest pads to a cache block so
    /// head stores never share a block with records).
    pub const HEADER_BYTES: u64 = BLOCK_BYTES as u64;

    /// A log at `base` holding the most recent `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not block-aligned or `cap` is zero.
    pub fn new(base: Addr, cap: u64) -> Self {
        assert_eq!(base.block_offset(), 0, "write log must be block-aligned");
        assert!(cap > 0, "write log needs capacity");
        WriteLog { base, cap }
    }

    /// The region's base address (= the head block).
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Ring capacity in records: a peer more than this many updates
    /// behind cannot catch up from the log (see
    /// [`WriteLog::parse_record`]).
    pub fn capacity(&self) -> u64 {
        self.cap
    }

    /// Address of the head word (latest published seq).
    pub fn head_addr(&self) -> Addr {
        self.base
    }

    /// Address of the record slot for 1-based update seq `s` — records
    /// never straddle block boundaries (4 per block, exactly).
    ///
    /// # Panics
    ///
    /// Panics on the reserved seq 0.
    pub fn record_addr(&self, seq: u64) -> Addr {
        self.base + Self::HEADER_BYTES + self.record_offset(seq)
    }

    fn record_offset(&self, seq: u64) -> u64 {
        assert!(seq > 0, "log seqs are 1-based");
        ((seq - 1) % self.cap) * Self::RECORD_BYTES
    }

    /// Total bytes of the region (head block + ring, rounded up to whole
    /// blocks) — what a catch-up pull transfers.
    pub fn region_bytes(&self) -> u32 {
        let ring =
            (self.cap * Self::RECORD_BYTES).div_ceil(BLOCK_BYTES as u64) * BLOCK_BYTES as u64;
        u32::try_from(Self::HEADER_BYTES + ring).expect("write log region exceeds u32 bytes")
    }

    /// The wire encoding of one record.
    pub fn encode_record(obj_id: u64, seq: u64) -> [u8; 16] {
        let mut rec = [0u8; 16];
        rec[..8].copy_from_slice(&obj_id.to_le_bytes());
        rec[8..].copy_from_slice(&seq.to_le_bytes());
        rec
    }

    /// The latest published seq in a pulled region image.
    pub fn parse_head(image: &[u8]) -> u64 {
        u64::from_le_bytes(image[..8].try_into().expect("head word"))
    }

    /// The `(object id, seq)` record stored for update `seq` in a pulled
    /// region image. The stored seq equaling the requested one proves the
    /// slot was not overwritten by a ring wrap; callers assert it.
    pub fn parse_record(&self, image: &[u8], seq: u64) -> (u64, u64) {
        let off = (Self::HEADER_BYTES + self.record_offset(seq)) as usize;
        let obj = u64::from_le_bytes(image[off..off + 8].try_into().expect("record obj"));
        let stored = u64::from_le_bytes(image[off + 8..off + 16].try_into().expect("record seq"));
        (obj, stored)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RwPhase {
    /// Between updates (think pause running).
    Idle,
    /// Version word locked; payload chunk `chunk` is the next store.
    Writing { chunk: usize },
    /// All data written; the publish store is next.
    Publishing,
    /// Published; the log record store is next.
    LogRecord,
    /// Record stored; the log head bump is next.
    LogHead,
    /// Sleeping out an own-node outage (or waiting to retry a pull when
    /// no peer was live).
    Frozen,
    /// A catch-up pull is in flight.
    AwaitPull,
    /// Waiting for readers to drain (locking-mode experiments).
    SpinningOnReaders,
}

/// A replica-site writer with crash/recovery semantics layered on the
/// deterministic [`Writer`](sabre_rack::workloads::Writer) schedule; see
/// the [module docs](self) for the protocol.
///
/// Updates follow the exact legacy schedule — update `n` (0-based)
/// touches `objects[n % k]` with pattern seq `n` — extended by two paced
/// stores per update maintaining the [`WriteLog`] (record, then head).
/// All sites run the same schedule, so replaying a peer's missed range
/// reproduces the site's own future updates bit-identically; after
/// convergence the site simply resumes the schedule from where replay
/// left it.
///
/// A permanent crash ([`FaultPlan::crash`](sabre_rack::FaultPlan::crash))
/// freezes the writer forever; a pull whose chosen peer dies mid-transfer
/// stalls the writer until the horizon (no timeout/retry on the pull
/// path — recovery scenarios pick outage geometries with a stable live
/// peer).
#[derive(Debug)]
pub struct RecoveringWriter {
    objects: Vec<(u64, Addr)>,
    payload: u32,
    layout: WriterLayout,
    think: Time,
    log: WriteLog,
    /// Fellow replica sites (own node excluded), catch-up sources.
    peers: Vec<u8>,
    /// Local scratch region the pulled log image lands in.
    pull_buf: Addr,
    /// Stop re-pulling once the remaining lag is at most this many
    /// updates; the tail is reproduced by resuming the own schedule.
    converged_lag: u64,
    /// Respect the shared reader-lock word before locking (destination-
    /// locking experiments), like
    /// [`Writer::respecting_reader_locks`](sabre_rack::workloads::Writer::respecting_reader_locks).
    respect_reader_locks: bool,
    // Runtime state.
    /// Completed updates — also the latest own log seq (1-based).
    applied: u64,
    locked_version: u64,
    state: ReplicaState,
    phase: RwPhase,
    /// `Some(target)`: replaying pulled updates up to log seq `target`.
    replay_until: Option<u64>,
    /// In-flight catch-up pull, matched against completions.
    pull_inflight: Option<u64>,
    /// The peer the in-flight pull targets.
    pull_peer: Option<u8>,
    /// Peers that refused this pull round (themselves catching up).
    refused_peers: Vec<u8>,
    /// When the current catch-up began (staleness-window accounting).
    catch_started: Time,
}

impl RecoveringWriter {
    /// Delay before re-checking for a live peer when every peer was down
    /// at pull time.
    const PEER_RETRY: Time = Time::from_us(1);

    /// Creates the writer for one replica site.
    ///
    /// # Panics
    ///
    /// Panics if `objects` or `peers` is empty, or `converged_lag` is not
    /// below the log capacity (the writer could then "converge" onto a
    /// wrapped — unrecoverable — range).
    #[allow(clippy::too_many_arguments)] // one knob per recovery concern
    pub fn new(
        objects: Vec<(u64, Addr)>,
        payload: u32,
        layout: WriterLayout,
        think: Time,
        log: WriteLog,
        peers: Vec<u8>,
        pull_buf: Addr,
        converged_lag: u64,
    ) -> Self {
        assert!(!objects.is_empty(), "a writer needs at least one object");
        assert!(!peers.is_empty(), "a recovering writer needs peers");
        assert!(
            converged_lag < log.capacity(),
            "converged lag must fit the log ring"
        );
        RecoveringWriter {
            objects,
            payload,
            layout,
            think,
            log,
            peers,
            pull_buf,
            converged_lag,
            respect_reader_locks: false,
            applied: 0,
            locked_version: 0,
            state: ReplicaState::Live,
            phase: RwPhase::Idle,
            replay_until: None,
            pull_inflight: None,
            pull_peer: None,
            refused_peers: Vec::new(),
            catch_started: Time::ZERO,
        }
    }

    /// Makes the writer wait for the shared reader lock to drain before
    /// each update (destination-locking mode), both live and during
    /// replay.
    pub fn respecting_reader_locks(mut self) -> Self {
        self.respect_reader_locks = true;
        self
    }

    /// Completed object updates (own schedule + replays).
    pub fn updates(&self) -> u64 {
        self.applied
    }

    /// Where in `Live → Down → CatchingUp → Live` the site currently is.
    pub fn state(&self) -> ReplicaState {
        self.state
    }

    /// The log-maintaining geometry this writer appends through.
    pub fn log(&self) -> WriteLog {
        self.log
    }

    fn obj(&self) -> (u64, Addr) {
        self.objects[(self.applied % self.objects.len() as u64) as usize]
    }

    /// The single-block stores of the current update, in protocol order.
    fn chunks(&self) -> Vec<(Addr, Vec<u8>)> {
        let (obj_id, base) = self.obj();
        update_chunks(
            self.layout,
            base,
            obj_id,
            self.applied,
            self.payload as usize,
            self.locked_version,
        )
    }

    /// The outage window covering `now` on this writer's own node, if any.
    fn own_outage_end(&self, api: &CoreApi<'_>) -> Option<Option<Time>> {
        let now = api.now();
        api.config()
            .fault
            .outages_for(api.node())
            .into_iter()
            .find(|o| o.covers(now))
            .map(|o| o.until)
    }

    /// Update boundary in Live mode: freeze if the own node is down,
    /// otherwise start the next update.
    fn begin(&mut self, api: &mut CoreApi<'_>) {
        match self.own_outage_end(api) {
            Some(Some(until)) => {
                // Service outage: local state survives, so just freeze
                // until restoration, then catch up.
                self.state = ReplicaState::Down;
                self.phase = RwPhase::Frozen;
                let now = api.now();
                api.sleep(until - now);
            }
            Some(None) => {
                // Permanent crash: never schedule again.
                self.state = ReplicaState::Down;
                self.phase = RwPhase::Frozen;
            }
            None => self.start_update(api),
        }
    }

    /// Locks the current object's version word and enters the chunk loop
    /// (identical to the legacy writer's `begin_update`).
    fn start_update(&mut self, api: &mut CoreApi<'_>) {
        if let Some(target) = self.replay_until {
            // Replaying: prove the pulled image really recorded this
            // update before reproducing it.
            let seq = self.applied + 1;
            let image = api.read_local(self.pull_buf, self.log.region_bytes() as usize);
            let (rec_obj, rec_seq) = self.log.parse_record(&image, seq);
            assert_eq!(
                rec_seq,
                seq,
                "write log wrapped under a catch-up (lag {} > capacity {})",
                target - self.applied,
                self.log.capacity()
            );
            assert_eq!(
                rec_obj,
                self.obj().0,
                "pulled record disagrees with schedule"
            );
        }
        let (_, base) = self.obj();
        if self.respect_reader_locks {
            let rlock = api.read_local(base + 8u64, 8);
            let readers = u64::from_le_bytes(rlock.try_into().expect("8 bytes"));
            if readers > 0 {
                self.phase = RwPhase::SpinningOnReaders;
                api.sleep(Time::from_ns(10));
                return;
            }
        }
        let va = self.layout.version_addr(base);
        let v = VersionWord::new(u64::from_le_bytes(
            api.read_local(va, 8).try_into().expect("8 bytes"),
        ));
        self.locked_version = v.raw();
        if self.layout.takes_lock() {
            api.store_local_u64(va, v.locked().raw());
        }
        self.phase = RwPhase::Writing { chunk: 0 };
        api.sleep(api.config().writer_store_interval);
    }

    /// An update (own or replayed) finished: continue replaying, re-pull,
    /// or rest.
    fn end_update(&mut self, api: &mut CoreApi<'_>) {
        if let Some(target) = self.replay_until {
            api.metrics().replays_applied += 1;
            if self.applied >= target {
                // Round done; re-pull to measure the fresh lag (peers
                // kept writing meanwhile).
                self.issue_pull(api);
            } else {
                self.start_update(api);
            }
        } else {
            self.phase = RwPhase::Idle;
            let interval = api.config().writer_store_interval;
            api.sleep(self.think.max(interval));
        }
    }

    /// Entering (or continuing) catch-up after an outage ended.
    fn resume_from_outage(&mut self, api: &mut CoreApi<'_>) {
        match self.own_outage_end(api) {
            // Back-to-back outage windows: stay frozen.
            Some(Some(until)) => {
                let now = api.now();
                api.sleep(until - now);
            }
            Some(None) => {}
            None => {
                if self.state != ReplicaState::CatchingUp {
                    self.state = ReplicaState::CatchingUp;
                    self.catch_started = api.now();
                    api.set_catching_up(true);
                    if self.respect_reader_locks {
                        // Lease expiry: a shared reader lock still set on
                        // a restored site is dead — its fire-and-forget
                        // release was dropped with the outage. Clear
                        // them, or the writer spins forever on a lock
                        // nobody holds and the site never catches up.
                        for i in 0..self.objects.len() {
                            let (_, base) = self.objects[i];
                            api.store_local_u64(base + 8u64, 0);
                        }
                    }
                }
                self.issue_pull(api);
            }
        }
    }

    /// Pulls the nearest live peer's write-log region, skipping peers that
    /// refused this round; retries later if no candidate is left.
    fn issue_pull(&mut self, api: &mut CoreApi<'_>) {
        let now = api.now();
        let topo = api.config().fabric.topology;
        let own = api.node();
        let peer = self
            .peers
            .iter()
            .copied()
            .filter(|&p| {
                !self.refused_peers.contains(&p)
                    && !api
                        .config()
                        .fault
                        .outages_for(p as usize)
                        .iter()
                        .any(|o| o.covers(now))
            })
            .min_by_key(|&p| (topo.hops(own, p as usize), p));
        let Some(peer) = peer else {
            // Every peer is down or itself catching up: sleep and retry
            // the full list (a sibling may have converged meanwhile).
            self.refused_peers.clear();
            self.phase = RwPhase::Frozen;
            api.sleep(Self::PEER_RETRY);
            return;
        };
        let wq_id = api.issue(
            OpKind::CatchUpPull,
            peer,
            self.log.base(),
            self.pull_buf,
            self.log.region_bytes(),
            0,
        );
        self.pull_inflight = Some(wq_id);
        self.pull_peer = Some(peer);
        self.phase = RwPhase::AwaitPull;
    }

    /// A pull completed: replay the missed range, or declare convergence
    /// and drop the guard.
    fn on_pull(&mut self, api: &mut CoreApi<'_>) {
        api.metrics().record_catch_up(0);
        let image = api.read_local(self.pull_buf, self.log.region_bytes() as usize);
        let latest = WriteLog::parse_head(&image);
        let lag = latest.saturating_sub(self.applied);
        if lag <= self.converged_lag {
            // Converged: the ≤ lag trailing updates are reproduced by
            // resuming the own (identical) schedule below.
            let window = api.now() - self.catch_started;
            api.metrics().record_catch_up_window(window);
            api.set_catching_up(false);
            self.state = ReplicaState::Live;
            self.replay_until = None;
            self.phase = RwPhase::Idle;
            let interval = api.config().writer_store_interval;
            api.sleep(self.think.max(interval));
        } else {
            self.replay_until = Some(latest);
            self.start_update(api);
        }
    }
}

impl Workload for RecoveringWriter {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.begin(api);
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        match self.phase {
            RwPhase::Idle => self.begin(api),
            RwPhase::Frozen => self.resume_from_outage(api),
            RwPhase::Writing { chunk } => {
                let chunks = self.chunks();
                if chunk < chunks.len() {
                    let (addr, data) = &chunks[chunk];
                    api.store_local(*addr, data);
                    self.phase = RwPhase::Writing { chunk: chunk + 1 };
                } else {
                    self.phase = RwPhase::Publishing;
                }
                api.sleep(api.config().writer_store_interval);
            }
            RwPhase::Publishing => {
                let (_, base) = self.obj();
                api.store_local_u64(
                    self.layout.version_addr(base),
                    self.layout.publish_word(self.locked_version),
                );
                self.phase = RwPhase::LogRecord;
                api.sleep(api.config().writer_store_interval);
            }
            RwPhase::LogRecord => {
                // Record first, head second: a concurrent pull seeing
                // head = s is guaranteed the record for s is complete.
                let seq = self.applied + 1;
                let (obj_id, _) = self.obj();
                api.store_local(
                    self.log.record_addr(seq),
                    &WriteLog::encode_record(obj_id, seq),
                );
                self.phase = RwPhase::LogHead;
                api.sleep(api.config().writer_store_interval);
            }
            RwPhase::LogHead => {
                self.applied += 1;
                api.store_local_u64(self.log.head_addr(), self.applied);
                self.end_update(api);
            }
            // Re-enter through `begin`, not `start_update`: a spin can
            // straddle an outage start, and the writer must freeze at
            // the boundary rather than keep polling a lock word no
            // reader can touch while the node is down.
            RwPhase::SpinningOnReaders => self.begin(api),
            RwPhase::AwaitPull => unreachable!("no sleeps while a pull is in flight"),
        }
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        assert_eq!(self.phase, RwPhase::AwaitPull, "only pulls are issued");
        assert_eq!(self.pull_inflight, Some(cq.wq_id), "unexpected completion");
        self.pull_inflight = None;
        let peer = self.pull_peer.take().expect("pull records its peer");
        if cq.refused {
            // That peer is itself catching up; strike it for this round
            // and try the next-nearest one.
            self.refused_peers.push(peer);
            self.issue_pull(api);
            return;
        }
        assert!(cq.success, "catch-up pulls cannot abort");
        self.refused_peers.clear();
        self.on_pull(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_geometry_wraps_and_packs() {
        let log = WriteLog::new(Addr::new(1024), 8);
        assert_eq!(log.head_addr(), Addr::new(1024));
        assert_eq!(log.record_addr(1), Addr::new(1024 + 64));
        assert_eq!(log.record_addr(4), Addr::new(1024 + 64 + 48));
        // Ring wrap: seq 9 reuses slot 0.
        assert_eq!(log.record_addr(9), log.record_addr(1));
        // 8 records = 2 blocks of ring + 1 head block.
        assert_eq!(log.region_bytes(), 192);
        // Records never straddle blocks.
        for s in 1..=16 {
            let a = log.record_addr(s);
            assert_eq!(a.block(), (a + 15u64).block(), "seq {s} straddles");
        }
    }

    #[test]
    fn region_rounds_partial_blocks_up() {
        // 6 records = 96 B of ring → 2 blocks.
        assert_eq!(WriteLog::new(Addr::new(0), 6).region_bytes(), 192);
        assert_eq!(WriteLog::new(Addr::new(0), 1).region_bytes(), 128);
    }

    #[test]
    fn records_round_trip_through_an_image() {
        let log = WriteLog::new(Addr::new(0), 8);
        let mut image = vec![0u8; log.region_bytes() as usize];
        let seq = 42u64;
        image[..8].copy_from_slice(&seq.to_le_bytes());
        let rec = WriteLog::encode_record(7, seq);
        let off = (WriteLog::HEADER_BYTES + ((seq - 1) % 8) * 16) as usize;
        image[off..off + 16].copy_from_slice(&rec);
        assert_eq!(WriteLog::parse_head(&image), 42);
        assert_eq!(log.parse_record(&image, 42), (7, 42));
        // A wrapped slot answers with the newer seq, exposing the wrap.
        assert_eq!(log.parse_record(&image, 34).1, 42);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_log_rejected() {
        let _ = WriteLog::new(Addr::new(8), 4);
    }

    #[test]
    #[should_panic(expected = "converged lag must fit")]
    fn converged_lag_must_fit_the_ring() {
        let _ = RecoveringWriter::new(
            vec![(0, Addr::new(0))],
            64,
            WriterLayout::Clean,
            Time::from_ns(100),
            WriteLog::new(Addr::new(4096), 8),
            vec![1],
            Addr::new(8192),
            8,
        );
    }
}
