//! Replicated object stores: k identical copies of one object set across
//! store nodes, with placement-aware site selection and reader-side
//! replica views.
//!
//! Replication here is for *availability under crash faults* (see
//! `sabre_rack::fault`), not durability: every replica site runs its own
//! local [`Writer`](sabre_rack::workloads::Writer) over the same objects
//! with identical parameters, so the deterministic (object, sequence)
//! update schedules coincide and each replica is independently a valid —
//! and never-torn — image of the store.
//!
//! Under *software* crash semantics a crashed site merely stops
//! *serving*; its local writer keeps the image current and failover back
//! needs no catch-up. Whole-machine outages (a dead fat-tree leaf, a
//! power-cycled chassis) are different: the site's writer genuinely
//! freezes and the restored image is stale. For those, place a
//! [`RecoveringWriter`](crate::recovery::RecoveringWriter) per site
//! instead — it logs every update in a per-site
//! [`WriteLog`](crate::recovery::WriteLog) and, on restoration, pulls a
//! live peer's log over the fabric and replays the missed range before
//! rejoining the serving set (see [`crate::recovery`]).
//!
//! Readers do not pick one site: [`ReplicatedStore::view_for`] hands the
//! rack's `FailoverReader` (via
//! `sabre_rack::WorkloadSpec::replicas`) the whole replica list sorted
//! nearest-first, so the common case is a leaf-local read and the crash
//! case is a timeout plus a retry one preference rank down.

use sabre_fabric::RackTopology;
use sabre_mem::Addr;

use crate::store::{ObjectStore, StoreLayout};

/// Picks `k` replica sites out of `store_nodes`, spreading them across
/// fat-tree leaves: one site per leaf round-robin until `k` are chosen, so
/// every leaf with a store node gets a replica before any leaf gets a
/// second one (maximal leaf coverage → most readers find a leaf-local
/// replica). Flat fabrics (direct, mesh) have no leaf structure; the first
/// `k` store nodes are used.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of store nodes.
pub fn replica_sites(store_nodes: &[usize], k: usize, rack: RackTopology) -> Vec<usize> {
    assert!(k > 0, "replication factor must be positive");
    assert!(
        k <= store_nodes.len(),
        "replication factor {k} exceeds {} store nodes",
        store_nodes.len()
    );
    if rack.leaf_of(0).is_none() {
        return store_nodes[..k].to_vec();
    }
    // Group store nodes by leaf, preserving declaration order.
    let mut leaves: Vec<(usize, Vec<usize>)> = Vec::new();
    for &node in store_nodes {
        let leaf = rack.leaf_of(node).expect("fat tree has leaves");
        match leaves.iter_mut().find(|(l, _)| *l == leaf) {
            Some((_, members)) => members.push(node),
            None => leaves.push((leaf, vec![node])),
        }
    }
    let mut sites = Vec::with_capacity(k);
    let mut round = 0;
    while sites.len() < k {
        for (_, members) in &leaves {
            if let Some(&node) = members.get(round) {
                sites.push(node);
                if sites.len() == k {
                    break;
                }
            }
        }
        round += 1;
    }
    sites
}

/// One logical object store materialized on several sites: identical
/// geometry (base, layout, payload, object count) on each, so object `i`
/// lives at the same address on every replica.
///
/// # Example
///
/// ```
/// use sabre_farm::{replica_sites, ReplicatedStore, StoreLayout};
/// use sabre_fabric::RackTopology;
/// use sabre_mem::Addr;
///
/// // Stores 0,2 sit on leaf 0 and 4,6 on leaf 1 of a radix-4 fat tree;
/// // three replicas cover both leaves before doubling up on leaf 0.
/// let rack = RackTopology::FatTree { radix: 4, oversubscription: 2 };
/// let sites = replica_sites(&[0, 2, 4, 6], 3, rack);
/// assert_eq!(sites, vec![0, 4, 2]);
///
/// let store = ReplicatedStore::new(&sites, Addr::new(0), StoreLayout::Clean, 128, 16);
/// // A reader on node 5 (leaf 1) prefers its leaf-local replica on 4.
/// let view = store.view_for(5, rack);
/// assert_eq!(view[0].0, 4);
/// assert_eq!(view[0].1.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedStore {
    replicas: Vec<ObjectStore>,
}

impl ReplicatedStore {
    /// Describes `n_objects` objects of `payload` clean bytes in `layout`,
    /// replicated at the same `base` address on every node in `sites`.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty, repeats a node, or a site exceeds the
    /// `u8` node range; plus everything [`ObjectStore::new`] panics on.
    pub fn new(
        sites: &[usize],
        base: Addr,
        layout: StoreLayout,
        payload: u32,
        n_objects: u64,
    ) -> Self {
        assert!(!sites.is_empty(), "a replicated store needs sites");
        for (i, &site) in sites.iter().enumerate() {
            assert!(site <= u8::MAX as usize, "site {site} out of node range");
            assert!(
                !sites[..i].contains(&site),
                "site {site} replicated onto itself"
            );
        }
        ReplicatedStore {
            replicas: sites
                .iter()
                .map(|&site| ObjectStore::new(site as u8, base, layout, payload, n_objects))
                .collect(),
        }
    }

    /// The per-site store descriptors, in site order.
    pub fn replicas(&self) -> &[ObjectStore] {
        &self.replicas
    }

    /// The replica sites, in declaration order.
    pub fn sites(&self) -> Vec<usize> {
        self.replicas.iter().map(|s| s.node() as usize).collect()
    }

    /// Number of replicas (k).
    pub fn replication_factor(&self) -> usize {
        self.replicas.len()
    }

    /// Clean payload bytes per object.
    pub fn payload(&self) -> u32 {
        self.replicas[0].payload()
    }

    /// The common layout.
    pub fn layout(&self) -> StoreLayout {
        self.replicas[0].layout()
    }

    /// Footprint of one object slot in bytes (identical on every site).
    pub fn slot_bytes(&self) -> u64 {
        self.replicas[0].slot_bytes()
    }

    /// Number of objects per replica.
    pub fn n_objects(&self) -> u64 {
        self.replicas[0].n_objects()
    }

    /// The replica list as a reader on `reader_node` should try it:
    /// `(site, object addresses)` sorted nearest-first by fabric hop count
    /// (ties keep site order, so all same-distance readers agree). This is
    /// exactly the shape `sabre_rack::WorkloadSpec::replicas` consumes.
    pub fn view_for(&self, reader_node: usize, rack: RackTopology) -> Vec<(usize, Vec<Addr>)> {
        let mut view: Vec<(usize, Vec<Addr>)> = self
            .replicas
            .iter()
            .map(|s| (s.node() as usize, s.object_addrs()))
            .collect();
        view.sort_by_key(|&(site, _)| {
            if site == reader_node {
                0
            } else {
                rack.hops(reader_node, site)
            }
        });
        view
    }

    /// `(id, addr)` writer entries — identical on every site; place one
    /// local [`Writer`](sabre_rack::workloads::Writer) per site with these
    /// and the schedules coincide (see the module docs).
    pub fn object_entries(&self) -> Vec<(u64, Addr)> {
        self.replicas[0].object_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FT4: RackTopology = RackTopology::FatTree {
        radix: 4,
        oversubscription: 2,
    };

    #[test]
    fn sites_interleave_across_leaves() {
        // Leaves {0,2} and {4,6}: coverage first, then depth.
        assert_eq!(replica_sites(&[0, 2, 4, 6], 1, FT4), vec![0]);
        assert_eq!(replica_sites(&[0, 2, 4, 6], 2, FT4), vec![0, 4]);
        assert_eq!(replica_sites(&[0, 2, 4, 6], 3, FT4), vec![0, 4, 2]);
        assert_eq!(replica_sites(&[0, 2, 4, 6], 4, FT4), vec![0, 4, 2, 6]);
    }

    #[test]
    fn flat_fabrics_take_the_first_k() {
        let mesh = RackTopology::Mesh { cols: 2 };
        assert_eq!(replica_sites(&[1, 3, 5, 7], 3, mesh), vec![1, 3, 5]);
        assert_eq!(replica_sites(&[1, 3], 2, RackTopology::Direct), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn k_cannot_exceed_store_nodes() {
        let _ = replica_sites(&[0, 2], 3, FT4);
    }

    #[test]
    fn view_prefers_the_leaf_local_replica() {
        let store = ReplicatedStore::new(&[0, 4, 2], Addr::new(0), StoreLayout::Clean, 64, 8);
        // Reader 1 shares leaf 0 with sites 0 and 2 (1 hop each, site
        // order breaks the tie); site 4 is across the spine (3 hops).
        let near: Vec<usize> = store.view_for(1, FT4).into_iter().map(|(s, _)| s).collect();
        assert_eq!(near, vec![0, 2, 4]);
        // Reader 5 sits on leaf 1: site 4 first.
        let far: Vec<usize> = store.view_for(5, FT4).into_iter().map(|(s, _)| s).collect();
        assert_eq!(far, vec![4, 0, 2]);
    }

    #[test]
    fn geometry_is_identical_across_sites() {
        let store = ReplicatedStore::new(&[1, 3], Addr::new(64), StoreLayout::PerCl, 200, 10);
        assert_eq!(store.replication_factor(), 2);
        assert_eq!(store.sites(), vec![1, 3]);
        let [a, b] = store.replicas() else {
            panic!("two replicas")
        };
        assert_eq!(a.object_addrs(), b.object_addrs());
        assert_eq!(store.slot_bytes(), a.slot_bytes());
    }

    #[test]
    #[should_panic(expected = "replicated onto itself")]
    fn duplicate_sites_rejected() {
        let _ = ReplicatedStore::new(&[1, 1], Addr::new(0), StoreLayout::Clean, 64, 8);
    }
}
