//! FaRM's write path: writes go to the data owner over an RPC (§2.1 —
//! "one-sided operations are only used for reads, while writes are sent to
//! the data owner over an RPC"; §6 — FaRM "uses one-sided reads to access
//! remote objects … while writes are always sent to the data owner").
//!
//! The server applies updates with the same block-at-a-time store sequence
//! as a local writer thread, so RPC writes race concurrent SABRes and
//! software-validated reads exactly like local writers do.

use std::collections::VecDeque;

use sabre_rack::workloads::{update_chunks, WriterLayout};
use sabre_rack::{CoreApi, Workload};
use sabre_sim::Time;
use sabre_sw::VersionWord;

use crate::kv::KvStore;
use crate::store::StoreLayout;

#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    src_node: u8,
    src_core: u8,
    tag: u64,
    obj: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerPhase {
    Idle,
    Writing { chunk: usize },
    Publishing,
}

/// The owner-side RPC write server: applies object updates requested by
/// remote [`RpcWriter`]s, one block store per
/// [`writer_store_interval`](sabre_rack::ClusterConfig::writer_store_interval).
#[derive(Debug)]
pub struct RpcWriteServer {
    kv: KvStore,
    queue: VecDeque<PendingWrite>,
    phase: ServerPhase,
    seq: u64,
    locked_version: u64,
    applied: u64,
}

impl RpcWriteServer {
    /// Creates a server for `kv`'s store (which must be local to the core
    /// this runs on).
    pub fn new(kv: KvStore) -> Self {
        RpcWriteServer {
            kv,
            queue: VecDeque::new(),
            phase: ServerPhase::Idle,
            seq: 1,
            locked_version: 0,
            applied: 0,
        }
    }

    /// Updates applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    fn layout(&self) -> WriterLayout {
        match self.kv.store().layout() {
            StoreLayout::Clean => WriterLayout::Clean,
            StoreLayout::PerCl => WriterLayout::PerCl,
            StoreLayout::Checksum => WriterLayout::Checksum,
            StoreLayout::WfRegister => WriterLayout::WfRegister,
        }
    }

    fn begin_next(&mut self, api: &mut CoreApi<'_>) {
        let Some(req) = self.queue.front().copied() else {
            self.phase = ServerPhase::Idle;
            return;
        };
        let layout = self.layout();
        let va = layout.version_addr(self.kv.store().object_addr(req.obj));
        let v = VersionWord::new(u64::from_le_bytes(
            api.read_local(va, 8).try_into().expect("8 bytes"),
        ));
        self.locked_version = v.raw();
        if layout.takes_lock() {
            api.store_local_u64(va, v.locked().raw());
        }
        self.phase = ServerPhase::Writing { chunk: 0 };
        api.sleep(api.config().writer_store_interval);
    }
}

impl Workload for RpcWriteServer {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        assert_eq!(
            self.kv.store().node() as usize,
            api.node(),
            "RpcWriteServer must own its store"
        );
    }

    fn on_rpc(&mut self, api: &mut CoreApi<'_>, src_node: u8, src_core: u8, tag: u64, _bytes: u32) {
        let (obj, _) = self.kv.locate(tag);
        self.queue.push_back(PendingWrite {
            src_node,
            src_core,
            tag,
            obj,
        });
        if self.phase == ServerPhase::Idle {
            self.begin_next(api);
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        let req = *self.queue.front().expect("woke with work pending");
        let base = self.kv.store().object_addr(req.obj);
        match self.phase {
            ServerPhase::Idle => unreachable!("idle server does not sleep"),
            ServerPhase::Writing { chunk } => {
                let chunks = update_chunks(
                    self.layout(),
                    base,
                    req.obj,
                    self.seq,
                    self.kv.store().payload() as usize,
                    self.locked_version,
                );
                if chunk < chunks.len() {
                    let (addr, data) = &chunks[chunk];
                    api.store_local(*addr, data);
                    self.phase = ServerPhase::Writing { chunk: chunk + 1 };
                } else {
                    self.phase = ServerPhase::Publishing;
                }
                api.sleep(api.config().writer_store_interval);
            }
            ServerPhase::Publishing => {
                let layout = self.layout();
                api.store_local_u64(
                    layout.version_addr(base),
                    layout.publish_word(self.locked_version),
                );
                self.applied += 1;
                self.seq += 1;
                self.queue.pop_front();
                api.reply_rpc(req.src_node, req.src_core, req.tag, 16);
                self.begin_next(api);
            }
        }
    }
}

/// A client thread sending write RPCs for random keys in a closed loop.
#[derive(Debug)]
pub struct RpcWriter {
    kv: KvStore,
    server_core: u8,
    think: Time,
    remaining: Option<u64>,
    t0: Time,
    next_tag: u64,
}

impl RpcWriter {
    /// A writer client that runs until the simulation ends, addressing the
    /// server on `server_core` of the store's node.
    pub fn endless(kv: KvStore, server_core: u8, think: Time) -> Self {
        RpcWriter {
            kv,
            server_core,
            think,
            remaining: None,
            t0: Time::ZERO,
            next_tag: 0,
        }
    }

    /// A writer client performing exactly `n` writes.
    pub fn iterations(kv: KvStore, server_core: u8, think: Time, n: u64) -> Self {
        let mut w = RpcWriter::endless(kv, server_core, think);
        w.remaining = Some(n);
        w
    }

    fn send_next(&mut self, api: &mut CoreApi<'_>) {
        if self.remaining == Some(0) {
            return;
        }
        let key = api.rng().below(self.kv.keys());
        self.next_tag = key;
        self.t0 = api.now();
        // Tag doubles as the key; payload travels in the RPC body.
        api.send_rpc(
            self.kv.store().node(),
            self.server_core,
            key,
            self.kv.store().payload() + 32,
        );
    }
}

impl Workload for RpcWriter {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.send_next(api);
    }

    fn on_rpc_reply(&mut self, api: &mut CoreApi<'_>, tag: u64, _bytes: u32) {
        assert_eq!(tag, self.next_tag, "out-of-order RPC reply");
        let latency = api.now() - self.t0;
        api.metrics()
            .record_success(self.kv.store().payload() as u64, latency);
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        if self.think == Time::ZERO {
            self.send_next(api);
        } else {
            api.sleep(self.think);
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        self.send_next(api);
    }
}
