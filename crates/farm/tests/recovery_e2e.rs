//! End-to-end replica catch-up: a whole-leaf outage takes down two of
//! three replica sites mid-run while writers keep updating; the restored
//! sites must pull the live peer's write log over the fabric, replay the
//! missed range, and rejoin — with the epoch/seq guard refusing (or
//! stale-marking) reads for exactly the catch-up window.

use sabre_farm::scenario::ScenarioStoreExt;
use sabre_farm::{replica_sites, RecoveringWriter, StoreLayout, WriteLog};
use sabre_mem::Addr;
use sabre_rack::workloads::WriterLayout;
use sabre_rack::{spec, FaultPlan, ReadMechanism, RecoveryReport, ScenarioBuilder};
use sabre_sim::Time;

const PAYLOAD: u32 = 208;
const OBJECTS: u64 = 8;
const LOG_CAP: u64 = 2048;
const LOG_BASE: u64 = 1 << 20;
const PULL_BUF: u64 = 2 << 20;

/// Three replicas on an 8-node radix-2 fat tree (stores 4..8 span leaves
/// 2 and 3); leaf 2 — holding replica sites 4 and 5 — dies for the middle
/// of the run. Returns the recovery ledger.
fn leaf_outage_run(serve_stale: bool) -> RecoveryReport {
    let builder = ScenarioBuilder::new()
        .seed(7)
        .nodes(8)
        .fat_tree(2, 2)
        .configure(move |cfg| cfg.serve_stale = serve_stale);
    let rack = builder.config().fabric.topology;
    let topo = builder.config().topology.clone();
    let sites = replica_sites(&topo.store_nodes(), 3, rack);
    assert_eq!(sites, vec![4, 6, 5], "leaf-spread placement changed");
    let builder =
        builder.fault(FaultPlan::new().leaf_outage(rack, 2, Time::from_us(40), Time::from_us(80)));
    let (mut scenario, store) =
        builder.replicated_store(&sites, StoreLayout::Clean, PAYLOAD, OBJECTS);
    for &rnode in &topo.reader_nodes() {
        scenario = scenario.reader_spec(
            rnode,
            0,
            spec()
                .payload(PAYLOAD)
                .mechanism(ReadMechanism::Raw)
                .wire(store.slot_bytes() as u32)
                .replicas(store.view_for(rnode, rack))
                .failover_timeout(Time::from_us(10))
                .replace_on_hops(2.0),
        );
    }
    // One reader holds a single-replica view pinned to a leaf-2 site: its
    // reads *must* meet the guard while that site catches up, making the
    // refusal (or stale-serve) counters independent of probe timing.
    let pinned: Vec<_> = store
        .view_for(0, rack)
        .into_iter()
        .filter(|&(site, _)| site == sites[0])
        .collect();
    scenario = scenario.reader_spec(
        0,
        1,
        spec()
            .payload(PAYLOAD)
            .mechanism(ReadMechanism::Raw)
            .wire(store.slot_bytes() as u32)
            .replicas(pinned)
            .failover_timeout(Time::from_us(10)),
    );
    let log = WriteLog::new(Addr::new(LOG_BASE), LOG_CAP);
    for &site in &sites {
        let peers = sites
            .iter()
            .filter(|&&p| p != site)
            .map(|&p| p as u8)
            .collect();
        scenario = scenario.workload(
            site,
            0,
            Box::new(RecoveringWriter::new(
                store.object_entries(),
                PAYLOAD,
                WriterLayout::Clean,
                // Replay runs think-free, so the convergence margin is the
                // think pause: 500 ns makes the lag floor (pull + replay
                // overhead, ~2 updates) sit well under converged_lag.
                Time::from_ns(500),
                log,
                peers,
                Addr::new(PULL_BUF),
                8,
            )),
        );
    }
    let report = scenario.run_for(Time::from_us(200));
    assert!(
        report.rack_metrics().ops > 100,
        "readers made no progress through the outage"
    );
    report.recovery()
}

#[test]
fn restored_sites_catch_up_and_refuse_reads_meanwhile() {
    let r = leaf_outage_run(false);
    // Both leaf-2 sites recovered: each pulled at least once (a probing
    // pull plus replay rounds) from the surviving peer.
    assert!(r.catch_up_ops >= 2, "missing catch-up rounds: {r:?}");
    assert_eq!(
        r.catch_up_ops, r.catch_up_pulls,
        "client and server disagree on pulls: {r:?}"
    );
    // Leaf 2 held two replica sites; restored together, each first asked
    // its 1-hop sibling, bounced off its guard, and re-aimed at the
    // surviving cross-leaf replica.
    assert!(r.catch_up_refused > 0, "siblings never bounced: {r:?}");
    // The outage spans ~150 missed updates per site; all were replayed.
    assert!(r.replays_applied > 100, "too few replays: {r:?}");
    // The staleness window is real and bounded by the run.
    assert!(r.catch_up_ns > 0, "no staleness window recorded: {r:?}");
    assert!(
        r.catch_up_ns < 2 * 200_000,
        "catch-up outlived the run: {r:?}"
    );
    // Readers bound to a catching-up replica were turned away (and each
    // client-side refusal stems from at least one refused request packet).
    assert!(r.stale_refusals > 0, "the guard never fired: {r:?}");
    assert!(r.reads_refused >= r.stale_refusals, "{r:?}");
    assert_eq!(r.stale_served, 0, "stale data served in refuse mode: {r:?}");
}

#[test]
fn serve_stale_trades_refusals_for_counted_stale_reads() {
    let r = leaf_outage_run(true);
    assert!(r.catch_up_ops >= 2, "missing catch-up rounds: {r:?}");
    assert!(r.replays_applied > 100, "too few replays: {r:?}");
    // Availability mode: nobody is refused, staleness is counted instead.
    assert_eq!(r.stale_refusals, 0, "refused despite serve_stale: {r:?}");
    assert_eq!(r.reads_refused, 0, "refused despite serve_stale: {r:?}");
    assert!(r.stale_served > 0, "no stale reads counted: {r:?}");
}
