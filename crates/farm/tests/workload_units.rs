//! Unit-level tests of the rack's workload programs and cluster plumbing
//! that the figure experiments do not isolate, declared through the
//! Scenario API.

use sabre_farm::{ScenarioStoreExt, StoreLayout};
use sabre_mem::Addr;
use sabre_rack::workloads::{pattern_payload, verify_payload, Writer, WriterLayout};
use sabre_rack::{spec, Phase, ReadMechanism, ScenarioBuilder};
use sabre_sim::Time;
use sabre_sw::layout::{CleanLayout, PerClLayout};

fn small_scenario() -> ScenarioBuilder {
    ScenarioBuilder::new().configure(|cfg| cfg.memory_bytes = 8 * 1024 * 1024)
}

#[test]
fn pattern_verify_round_trip_and_tear_detection() {
    for len in [4usize, 8, 16, 17, 100, 8192] {
        let p = pattern_payload(7, 42, len);
        assert_eq!(p.len(), len);
        if len >= 16 {
            assert_eq!(verify_payload(7, &p), Some(42));
            // Wrong object id is rejected.
            assert_eq!(verify_payload(8, &p), None);
        }
        if len >= 32 {
            // A mixed snapshot is rejected: keep this update's header but
            // splice in the *next* update's filler tail.
            let mut torn = p.clone();
            let newer = pattern_payload(7, 43, len);
            torn[3 * len / 4..].copy_from_slice(&newer[3 * len / 4..]);
            assert_eq!(verify_payload(7, &torn), None);
        }
    }
}

#[test]
fn writer_updates_publish_consistent_objects() {
    let (scenario, store) = small_scenario().store(1, StoreLayout::Clean, 480, Some(4));
    let entries = store.object_entries();
    let report = scenario
        .workload(
            1,
            0,
            Box::new(Writer::new(entries, 480, WriterLayout::Clean, Time::ZERO)),
        )
        .run_for(Time::from_us(50));
    // Whatever instant we stop at, at most one object is mid-update; the
    // rest must be consistent published versions.
    let mut locked = 0;
    for i in 0..4 {
        let image = report
            .cluster()
            .node_memory(1)
            .read_vec(store.object_addr(i), store.slot_bytes() as usize);
        if CleanLayout::version_of(&image).is_locked() {
            locked += 1;
        } else {
            let payload = CleanLayout::payload_of(&image, 480);
            assert!(
                verify_payload(i, payload).is_some(),
                "published object {i} is inconsistent"
            );
        }
    }
    assert!(locked <= 1, "a single writer can hold at most one object");
}

#[test]
fn percl_writer_keeps_store_validatable() {
    let (scenario, store) = small_scenario().store(1, StoreLayout::PerCl, 480, Some(3));
    let entries = store.object_entries();
    let report = scenario
        .workload(
            1,
            0,
            Box::new(Writer::new(
                entries,
                480,
                WriterLayout::PerCl,
                Time::from_ns(100),
            )),
        )
        .run_for(Time::from_us(60));
    let mut validated = 0;
    for i in 0..3 {
        let image = report
            .cluster()
            .node_memory(1)
            .read_vec(store.object_addr(i), store.slot_bytes() as usize);
        if let Ok(payload) = PerClLayout::validate_and_strip(&image, 480) {
            assert!(verify_payload(i, &payload).is_some());
            validated += 1;
        }
    }
    assert!(validated >= 2, "most objects must be in published state");
}

#[test]
fn async_reader_keeps_window_full() {
    let report = small_scenario()
        .raw_region_sized(1, 128, 1)
        .reader_spec(
            0,
            0,
            spec()
                .store(1)
                .payload(128)
                .mechanism(ReadMechanism::Sabre)
                .window(4),
        )
        .run_for(Time::from_us(50));
    let m = report.core(0, 0);
    // 4-deep pipelining must clearly beat what a synchronous reader could
    // do in the same time (ops ≈ window × time / latency).
    let sync_bound = 50_000 / 240; // ≈ one op per 240 ns
    assert!(
        m.ops > sync_bound,
        "async window not pipelining: {} ops",
        m.ops
    );
}

#[test]
fn sync_reader_phases_are_recorded() {
    let (scenario, _store) = small_scenario().store(1, StoreLayout::PerCl, 480, Some(8));
    let report = scenario
        .reader_spec(
            0,
            0,
            spec()
                .store(1)
                .payload(480)
                .mechanism(ReadMechanism::PerClValidate { payload: 480 })
                .local_buf(Addr::new(4 * 1024 * 1024))
                .iterations(20),
        )
        .run_for(Time::from_us(100));
    let m = report.core(0, 0);
    assert_eq!(m.ops, 20);
    assert!(m.phase_mean_ns(Phase::Transfer).unwrap() > 100.0);
    let strip = m.phase_mean_ns(Phase::Strip).unwrap();
    // 480 B payload → 9 lines → 576 wire bytes at 2 B/cycle = 144 ns.
    assert!((strip - 144.0).abs() < 1.0, "strip mean {strip}");
}

#[test]
fn checksum_reader_works_end_to_end() {
    let (scenario, store) = small_scenario().store(1, StoreLayout::Checksum, 480, Some(8));
    let report = scenario
        .reader_spec(
            0,
            0,
            spec()
                .store(1)
                .payload(480)
                .mechanism(ReadMechanism::ChecksumValidate { payload: 480 })
                .local_buf(Addr::new(4 * 1024 * 1024))
                .iterations(5)
                .wire(store.slot_bytes() as u32),
        )
        .run_for(Time::from_us(200));
    let m = report.core(0, 0);
    assert_eq!(m.ops, 5);
    assert_eq!(m.retries, 0);
    // CRC dominates: 480 B × 12 cycles/B = 2.88 µs.
    assert!(m.latency.mean().unwrap() > 2_880.0);
}

#[test]
fn node_metrics_aggregate_cores() {
    let report = small_scenario()
        .raw_region_sized(1, 64, 1)
        .readers(0, 0..3, |core, targets| {
            spec()
                .store(1)
                .payload(64)
                .local_buf(Addr::new((4 + core as u64) * 1024 * 1024))
                .iterations(10)
                .build(targets)
        })
        .run_for(Time::from_us(50));
    let agg = report.node(0);
    assert_eq!(agg.ops, 30);
    assert_eq!(agg.bytes, 30 * 64);
}

#[test]
#[should_panic(expected = "within one cache block")]
fn store_local_rejects_straddling_writes() {
    struct Bad;
    impl sabre_rack::Workload for Bad {
        fn on_start(&mut self, api: &mut sabre_rack::CoreApi<'_>) {
            api.store_local(Addr::new(60), &[0u8; 8]); // crosses a block
        }
    }
    small_scenario()
        .workload(0, 0, Box::new(Bad))
        .run_for(Time::from_ns(10));
}
