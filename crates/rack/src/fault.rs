//! Deterministic fault injection: scheduled node crashes and link outages.
//!
//! A [`FaultPlan`] is a *declarative schedule* — a list of outage windows
//! for nodes and links, fixed before the run starts — carried by
//! [`ClusterConfig`](crate::ClusterConfig). The cluster consults it at the
//! one place every cross-node packet already passes through: the window
//! barrier where shard outboxes are merged and delivered (see
//! [`cluster`](crate::cluster)). A packet is dropped iff, at its arrival
//! instant, its source node, destination node, or the link between them is
//! inside an outage window:
//!
//! * a **down destination** refuses service — inbound requests die on the
//!   floor, so the node completes no remote work while crashed;
//! * a **down source** loses its in-flight traffic — replies already
//!   emitted by a node that then crashed never reach the requester;
//! * a **down link** kills traffic both ways between its endpoints while
//!   leaving both nodes reachable through nothing (the fabric models
//!   logical reachability, not rerouting — a cut link is a partition of
//!   that pair).
//!
//! Because the drop decision is a *pure function* of the plan and the
//! packet's `(src, dst, arrival-time)` tuple — all of which are identical
//! at every shard × thread setting — fault injection preserves the event
//! loop's bit-identical replay guarantee. Dropped packets are counted per
//! destination node ([`packets_dropped`](crate::Cluster::packets_dropped)),
//! extending the packet-conservation invariant to
//! `sent == delivered + dropped`.
//!
//! Crashed nodes keep their local state: the model is a *service* outage
//! (power-cycled NIC, wedged OS, partitioned top-of-rack port), not disk
//! loss. A writer on a crashed store node keeps updating local memory; it
//! simply becomes unobservable until the outage ends. Readers detect dead
//! replicas by timeout on the one-sided path (no completion ever arrives)
//! and fail over — see
//! [`FailoverReader`](crate::workloads::FailoverReader).

use sabre_sim::Time;

/// A half-open outage window `[from, until)`. `until == None` means the
/// component never recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First instant the component is down.
    pub from: Time,
    /// First instant the component is back up (`None`: down forever).
    pub until: Option<Time>,
}

impl Outage {
    /// Whether the outage covers instant `t`.
    pub fn covers(self, t: Time) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// A deterministic schedule of node crashes and link outages; see the
/// [module docs](self) for the injection semantics.
///
/// # Example
///
/// ```
/// use sabre_rack::fault::FaultPlan;
/// use sabre_sim::Time;
///
/// let plan = FaultPlan::new()
///     .crash_restore(4, Time::from_us(10), Time::from_us(30))
///     .crash(5, Time::from_us(50))
///     .link_outage(0, 1, Time::from_us(5), Time::from_us(6));
/// assert!(plan.node_down_at(4, Time::from_us(20)));
/// assert!(!plan.node_down_at(4, Time::from_us(30)));
/// assert!(plan.node_down_at(5, Time::from_us(99)), "no recovery");
/// assert!(plan.drops_packet(0, 1, Time::from_us(5)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    node_outages: Vec<(usize, Outage)>,
    link_outages: Vec<(usize, usize, Outage)>,
}

impl FaultPlan {
    /// An empty plan: nothing ever fails.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crashes `node` at `at`, never to recover.
    pub fn crash(mut self, node: usize, at: Time) -> Self {
        self.node_outages.push((
            node,
            Outage {
                from: at,
                until: None,
            },
        ));
        self
    }

    /// Crashes `node` at `from` and restores it at `until`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`from >= until`).
    pub fn crash_restore(mut self, node: usize, from: Time, until: Time) -> Self {
        assert!(from < until, "empty crash window: {from:?} >= {until:?}");
        self.node_outages.push((
            node,
            Outage {
                from,
                until: Some(until),
            },
        ));
        self
    }

    /// Takes the (bidirectional) link between `a` and `b` down over
    /// `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints coincide or the window is empty.
    pub fn link_outage(mut self, a: usize, b: usize, from: Time, until: Time) -> Self {
        assert!(a != b, "a link connects two distinct nodes");
        assert!(from < until, "empty link outage: {from:?} >= {until:?}");
        self.link_outages.push((
            a.min(b),
            a.max(b),
            Outage {
                from,
                until: Some(until),
            },
        ));
        self
    }

    /// Cuts the link between `a` and `b` at `at`, never to heal.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints coincide.
    pub fn cut_link(mut self, a: usize, b: usize, at: Time) -> Self {
        assert!(a != b, "a link connects two distinct nodes");
        self.link_outages.push((
            a.min(b),
            a.max(b),
            Outage {
                from: at,
                until: None,
            },
        ));
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.node_outages.is_empty() && self.link_outages.is_empty()
    }

    /// Whether `node` is down at instant `t`.
    pub fn node_down_at(&self, node: usize, t: Time) -> bool {
        self.node_outages
            .iter()
            .any(|&(n, o)| n == node && o.covers(t))
    }

    /// Whether the link between `a` and `b` is down at instant `t`
    /// (link outages only — a crashed endpoint is
    /// [`FaultPlan::node_down_at`]'s business).
    pub fn link_down_at(&self, a: usize, b: usize, t: Time) -> bool {
        let (lo, hi) = (a.min(b), a.max(b));
        self.link_outages
            .iter()
            .any(|&(x, y, o)| x == lo && y == hi && o.covers(t))
    }

    /// Whether a `src → dst` packet arriving at instant `t` is dropped:
    /// either endpoint crashed, or the link between them cut.
    pub fn drops_packet(&self, src: usize, dst: usize, t: Time) -> bool {
        self.node_down_at(src, t) || self.node_down_at(dst, t) || self.link_down_at(src, dst, t)
    }

    /// The scheduled node outages, as declared.
    pub fn node_outages(&self) -> &[(usize, Outage)] {
        &self.node_outages
    }

    /// Validates the plan against a rack of `nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range endpoint found.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        for &(n, _) in &self.node_outages {
            if n >= nodes {
                return Err(format!(
                    "fault plan crashes node {n} of a {nodes}-node rack"
                ));
            }
        }
        for &(a, b, _) in &self.link_outages {
            if a >= nodes || b >= nodes {
                return Err(format!(
                    "fault plan cuts link {a}-{b} of a {nodes}-node rack"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_windows_are_half_open() {
        let o = Outage {
            from: Time::from_us(10),
            until: Some(Time::from_us(20)),
        };
        assert!(!o.covers(Time::from_ns(9_999)));
        assert!(o.covers(Time::from_us(10)));
        assert!(o.covers(Time::from_ns(19_999)));
        assert!(!o.covers(Time::from_us(20)));
        let forever = Outage {
            from: Time::from_us(10),
            until: None,
        };
        assert!(forever.covers(Time::from_us(1_000_000)));
    }

    #[test]
    fn node_and_link_queries() {
        let plan = FaultPlan::new()
            .crash_restore(3, Time::from_us(1), Time::from_us(2))
            .cut_link(5, 4, Time::from_us(7));
        assert!(plan.node_down_at(3, Time::from_us(1)));
        assert!(!plan.node_down_at(3, Time::from_us(2)));
        assert!(!plan.node_down_at(4, Time::from_us(1)));
        // Link order is normalized; both directions drop.
        assert!(plan.link_down_at(4, 5, Time::from_us(7)));
        assert!(plan.link_down_at(5, 4, Time::from_us(7)));
        assert!(!plan.link_down_at(4, 5, Time::from_ns(6_999)));
        assert!(plan.drops_packet(4, 5, Time::from_us(8)));
        assert!(plan.drops_packet(3, 0, Time::from_ns(1_500)), "src down");
        assert!(plan.drops_packet(0, 3, Time::from_ns(1_500)), "dst down");
        assert!(!plan.drops_packet(0, 1, Time::from_us(100)));
    }

    #[test]
    fn a_node_can_fail_repeatedly() {
        let plan = FaultPlan::new()
            .crash_restore(2, Time::from_us(1), Time::from_us(2))
            .crash_restore(2, Time::from_us(5), Time::from_us(6));
        assert!(plan.node_down_at(2, Time::from_ns(1_500)));
        assert!(!plan.node_down_at(2, Time::from_us(3)));
        assert!(plan.node_down_at(2, Time::from_ns(5_500)));
    }

    #[test]
    fn empty_plan_drops_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.drops_packet(0, 1, Time::from_us(1)));
        assert!(plan.validate(2).is_ok());
    }

    #[test]
    fn validation_checks_endpoints() {
        assert!(FaultPlan::new()
            .crash(7, Time::from_us(1))
            .validate(8)
            .is_ok());
        assert!(FaultPlan::new()
            .crash(8, Time::from_us(1))
            .validate(8)
            .is_err());
        assert!(FaultPlan::new()
            .cut_link(0, 9, Time::from_us(1))
            .validate(8)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "empty crash window")]
    fn empty_crash_window_rejected() {
        let _ = FaultPlan::new().crash_restore(0, Time::from_us(2), Time::from_us(2));
    }

    #[test]
    #[should_panic(expected = "two distinct nodes")]
    fn self_link_rejected() {
        let _ = FaultPlan::new().cut_link(3, 3, Time::from_us(1));
    }
}
