//! Deterministic fault injection: scheduled node crashes and link outages.
//!
//! A [`FaultPlan`] is a *declarative schedule* — a list of outage windows
//! for nodes and links, fixed before the run starts — carried by
//! [`ClusterConfig`](crate::ClusterConfig). The cluster consults it at the
//! one place every cross-node packet already passes through: the window
//! barrier where shard outboxes are merged and delivered (see
//! [`cluster`](crate::cluster)). A packet is dropped iff, at its arrival
//! instant, its source node, destination node, or the link between them is
//! inside an outage window:
//!
//! * a **down destination** refuses service — inbound requests die on the
//!   floor, so the node completes no remote work while crashed;
//! * a **down source** loses its in-flight traffic — replies already
//!   emitted by a node that then crashed never reach the requester;
//! * a **down link** kills traffic both ways between its endpoints while
//!   leaving both nodes reachable through nothing (the fabric models
//!   logical reachability, not rerouting — a cut link is a partition of
//!   that pair).
//!
//! Because the drop decision is a *pure function* of the plan and the
//! packet's `(src, dst, arrival-time)` tuple — all of which are identical
//! at every shard × thread setting — fault injection preserves the event
//! loop's bit-identical replay guarantee. Dropped packets are counted per
//! destination node ([`packets_dropped`](crate::Cluster::packets_dropped)),
//! extending the packet-conservation invariant to
//! `sent == delivered + dropped`.
//!
//! Crashed nodes keep their local state: the model is a *service* outage
//! (power-cycled NIC, wedged OS, partitioned top-of-rack port), not disk
//! loss. A writer on a crashed store node keeps updating local memory; it
//! simply becomes unobservable until the outage ends. Readers detect dead
//! replicas by timeout on the one-sided path (no completion ever arrives)
//! and fail over — see
//! [`FailoverReader`](crate::workloads::FailoverReader).

use sabre_fabric::RackTopology;
use sabre_sim::{SimRng, Time};

/// A half-open outage window `[from, until)`. `until == None` means the
/// component never recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First instant the component is down.
    pub from: Time,
    /// First instant the component is back up (`None`: down forever).
    pub until: Option<Time>,
}

impl Outage {
    /// Whether the outage covers instant `t`.
    pub fn covers(self, t: Time) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// A deterministic schedule of node crashes and link outages; see the
/// [module docs](self) for the injection semantics.
///
/// # Example
///
/// ```
/// use sabre_rack::fault::FaultPlan;
/// use sabre_sim::Time;
///
/// let plan = FaultPlan::new()
///     .crash_restore(4, Time::from_us(10), Time::from_us(30))
///     .crash(5, Time::from_us(50))
///     .link_outage(0, 1, Time::from_us(5), Time::from_us(6));
/// assert!(plan.node_down_at(4, Time::from_us(20)));
/// assert!(!plan.node_down_at(4, Time::from_us(30)));
/// assert!(plan.node_down_at(5, Time::from_us(99)), "no recovery");
/// assert!(plan.drops_packet(0, 1, Time::from_us(5)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    node_outages: Vec<(usize, Outage)>,
    link_outages: Vec<(usize, usize, Outage)>,
    /// Correlated whole-leaf outages, as declared (the member-node windows
    /// they expand into live in `node_outages`).
    leaf_outages: Vec<(usize, Outage)>,
    /// Correlated whole-rack outages, as declared (expanded the same way).
    rack_outages: Vec<(usize, Outage)>,
}

impl FaultPlan {
    /// An empty plan: nothing ever fails.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crashes `node` at `at`, never to recover.
    pub fn crash(mut self, node: usize, at: Time) -> Self {
        self.node_outages.push((
            node,
            Outage {
                from: at,
                until: None,
            },
        ));
        self
    }

    /// Crashes `node` at `from` and restores it at `until`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`from >= until`).
    pub fn crash_restore(mut self, node: usize, from: Time, until: Time) -> Self {
        assert!(from < until, "empty crash window: {from:?} >= {until:?}");
        self.node_outages.push((
            node,
            Outage {
                from,
                until: Some(until),
            },
        ));
        self
    }

    /// Takes the (bidirectional) link between `a` and `b` down over
    /// `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints coincide or the window is empty.
    pub fn link_outage(mut self, a: usize, b: usize, from: Time, until: Time) -> Self {
        assert!(a != b, "a link connects two distinct nodes");
        assert!(from < until, "empty link outage: {from:?} >= {until:?}");
        self.link_outages.push((
            a.min(b),
            a.max(b),
            Outage {
                from,
                until: Some(until),
            },
        ));
        self
    }

    /// Cuts the link between `a` and `b` at `at`, never to heal.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints coincide.
    pub fn cut_link(mut self, a: usize, b: usize, at: Time) -> Self {
        assert!(a != b, "a link connects two distinct nodes");
        self.link_outages.push((
            a.min(b),
            a.max(b),
            Outage {
                from: at,
                until: None,
            },
        ));
        self
    }

    /// Takes a whole fat-tree leaf down over `[from, until)`: every node
    /// attached to `leaf` crashes for the window, which also severs the
    /// leaf's uplink bundle (no member can send or receive, so no traffic
    /// crosses the uplinks either way). The correlated outage is recorded
    /// as such ([`FaultPlan::leaf_outages`]) and *expanded* into per-member
    /// node windows, so the drop decision at the merge point is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `rack` has no leaves (not a fat tree or datacenter) or
    /// the window is empty.
    pub fn leaf_outage(mut self, rack: RackTopology, leaf: usize, from: Time, until: Time) -> Self {
        let (RackTopology::FatTree { radix, .. } | RackTopology::Datacenter { radix, .. }) = rack
        else {
            panic!("leaf outages need a fat-tree or datacenter rack, got {rack:?}");
        };
        assert!(from < until, "empty leaf outage: {from:?} >= {until:?}");
        let radix = radix.max(1) as usize;
        self.leaf_outages.push((
            leaf,
            Outage {
                from,
                until: Some(until),
            },
        ));
        for node in leaf * radix..(leaf + 1) * radix {
            self = self.crash_restore(node, from, until);
        }
        self
    }

    /// Takes a whole datacenter rack down over `[from, until)`:
    /// [`FaultPlan::leaf_outage`] generalized one level up the tree. Every
    /// node of rack `rack_index` crashes for the window, which also severs
    /// the rack's spine uplinks — no member can send or receive, so no
    /// traffic crosses the spine either way. The correlated outage is
    /// recorded as such ([`FaultPlan::rack_outages`]) and *expanded* into
    /// per-member node windows, so the drop decision at the merge point —
    /// and with it the shard × thread bit-identity — is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is not a [`RackTopology::Datacenter`] or the
    /// window is empty.
    pub fn rack_outage(
        mut self,
        rack: RackTopology,
        rack_index: usize,
        from: Time,
        until: Time,
    ) -> Self {
        let RackTopology::Datacenter { radix, .. } = rack else {
            panic!("rack outages need a datacenter fabric, got {rack:?}");
        };
        assert!(from < until, "empty rack outage: {from:?} >= {until:?}");
        let per_rack = (radix as usize) * (radix as usize);
        self.rack_outages.push((
            rack_index,
            Outage {
                from,
                until: Some(until),
            },
        ));
        for node in rack_index * per_rack..(rack_index + 1) * per_rack {
            self = self.crash_restore(node, from, until);
        }
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.node_outages.is_empty() && self.link_outages.is_empty()
    }

    /// Whether `node` is down at instant `t`.
    pub fn node_down_at(&self, node: usize, t: Time) -> bool {
        self.node_outages
            .iter()
            .any(|&(n, o)| n == node && o.covers(t))
    }

    /// Whether the link between `a` and `b` is down at instant `t`
    /// (link outages only — a crashed endpoint is
    /// [`FaultPlan::node_down_at`]'s business).
    pub fn link_down_at(&self, a: usize, b: usize, t: Time) -> bool {
        let (lo, hi) = (a.min(b), a.max(b));
        self.link_outages
            .iter()
            .any(|&(x, y, o)| x == lo && y == hi && o.covers(t))
    }

    /// Whether a `src → dst` packet arriving at instant `t` is dropped:
    /// either endpoint crashed, or the link between them cut.
    pub fn drops_packet(&self, src: usize, dst: usize, t: Time) -> bool {
        self.node_down_at(src, t) || self.node_down_at(dst, t) || self.link_down_at(src, dst, t)
    }

    /// The scheduled node outages, as declared (leaf outages appear here
    /// expanded into their member nodes' windows).
    pub fn node_outages(&self) -> &[(usize, Outage)] {
        &self.node_outages
    }

    /// The correlated whole-leaf outages, as declared.
    pub fn leaf_outages(&self) -> &[(usize, Outage)] {
        &self.leaf_outages
    }

    /// The correlated whole-rack outages, as declared.
    pub fn rack_outages(&self) -> &[(usize, Outage)] {
        &self.rack_outages
    }

    /// All outage windows scheduled for `node`, in declaration order — the
    /// schedule a recovering workload consults to know when its own node
    /// goes dark and when it comes back.
    pub fn outages_for(&self, node: usize) -> Vec<Outage> {
        self.node_outages
            .iter()
            .filter(|&&(n, _)| n == node)
            .map(|&(_, o)| o)
            .collect()
    }

    /// Validates the plan against a rack of `nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range endpoint or
    /// inverted outage window found. (The builder methods already panic on
    /// inverted windows; the check here is a belt-and-braces guard for
    /// plans assembled programmatically.)
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        for &(n, o) in &self.node_outages {
            if n >= nodes {
                return Err(format!(
                    "fault plan crashes node {n} of a {nodes}-node rack"
                ));
            }
            if let Some(until) = o.until {
                if until <= o.from {
                    return Err(format!(
                        "inverted outage window for node {n}: [{:?}, {until:?})",
                        o.from
                    ));
                }
            }
        }
        for &(a, b, o) in &self.link_outages {
            if a >= nodes || b >= nodes {
                return Err(format!(
                    "fault plan cuts link {a}-{b} of a {nodes}-node rack"
                ));
            }
            if let Some(until) = o.until {
                if until <= o.from {
                    return Err(format!(
                        "inverted outage window for link {a}-{b}: [{:?}, {until:?})",
                        o.from
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A seeded MTBF/MTTR fault-schedule generator: each listed node fails
/// and recovers repeatedly over `[0, horizon)`, with exponentially
/// distributed up-times (mean [`FaultProfile::mtbf`]) and down-times (mean
/// [`FaultProfile::mttr`]) drawn from a per-node forked [`SimRng`] stream.
/// The same `(profile, seed)` pair always generates the same
/// [`FaultPlan`], so profile-driven runs keep the bit-identical replay
/// guarantee.
///
/// # Example
///
/// ```
/// use sabre_rack::fault::FaultProfile;
/// use sabre_sim::Time;
///
/// let profile = FaultProfile {
///     nodes: vec![4, 5],
///     mtbf: Time::from_us(40),
///     mttr: Time::from_us(10),
///     horizon: Time::from_us(200),
/// };
/// let plan = profile.generate(7);
/// assert_eq!(plan, profile.generate(7), "deterministic");
/// assert!(plan.validate(8).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// The nodes subject to crash/restore cycles.
    pub nodes: Vec<usize>,
    /// Mean time between failures (mean up-time before each crash).
    pub mtbf: Time,
    /// Mean time to repair (mean down-time per outage).
    pub mttr: Time,
    /// Crashes are only scheduled strictly before this instant (a final
    /// repair window may extend past it).
    pub horizon: Time,
}

impl FaultProfile {
    /// Generates the deterministic [`FaultPlan`] this profile describes
    /// under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `mtbf` or `mttr` is zero.
    pub fn generate(&self, seed: u64) -> FaultPlan {
        assert!(self.mtbf > Time::ZERO, "zero MTBF");
        assert!(self.mttr > Time::ZERO, "zero MTTR");
        let root = SimRng::seed(seed);
        let mut plan = FaultPlan::new();
        for &node in &self.nodes {
            // Per-node stream: a node's schedule is independent of which
            // other nodes the profile lists.
            let mut rng = root.fork(node as u64);
            let mut t = Time::ZERO;
            loop {
                t += exponential(&mut rng, self.mtbf);
                if t >= self.horizon {
                    break;
                }
                let down = exponential(&mut rng, self.mttr).max(Time::from_ns(1));
                plan = plan.crash_restore(node, t, t + down);
                t += down;
            }
        }
        plan
    }
}

/// An exponentially distributed interval with the given mean (inverse-CDF
/// sampling).
fn exponential(rng: &mut SimRng, mean: Time) -> Time {
    let u = rng.unit();
    Time::from_ns_f64(-(1.0 - u).ln() * mean.as_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_windows_are_half_open() {
        let o = Outage {
            from: Time::from_us(10),
            until: Some(Time::from_us(20)),
        };
        assert!(!o.covers(Time::from_ns(9_999)));
        assert!(o.covers(Time::from_us(10)));
        assert!(o.covers(Time::from_ns(19_999)));
        assert!(!o.covers(Time::from_us(20)));
        let forever = Outage {
            from: Time::from_us(10),
            until: None,
        };
        assert!(forever.covers(Time::from_us(1_000_000)));
    }

    #[test]
    fn node_and_link_queries() {
        let plan = FaultPlan::new()
            .crash_restore(3, Time::from_us(1), Time::from_us(2))
            .cut_link(5, 4, Time::from_us(7));
        assert!(plan.node_down_at(3, Time::from_us(1)));
        assert!(!plan.node_down_at(3, Time::from_us(2)));
        assert!(!plan.node_down_at(4, Time::from_us(1)));
        // Link order is normalized; both directions drop.
        assert!(plan.link_down_at(4, 5, Time::from_us(7)));
        assert!(plan.link_down_at(5, 4, Time::from_us(7)));
        assert!(!plan.link_down_at(4, 5, Time::from_ns(6_999)));
        assert!(plan.drops_packet(4, 5, Time::from_us(8)));
        assert!(plan.drops_packet(3, 0, Time::from_ns(1_500)), "src down");
        assert!(plan.drops_packet(0, 3, Time::from_ns(1_500)), "dst down");
        assert!(!plan.drops_packet(0, 1, Time::from_us(100)));
    }

    #[test]
    fn a_node_can_fail_repeatedly() {
        let plan = FaultPlan::new()
            .crash_restore(2, Time::from_us(1), Time::from_us(2))
            .crash_restore(2, Time::from_us(5), Time::from_us(6));
        assert!(plan.node_down_at(2, Time::from_ns(1_500)));
        assert!(!plan.node_down_at(2, Time::from_us(3)));
        assert!(plan.node_down_at(2, Time::from_ns(5_500)));
    }

    #[test]
    fn empty_plan_drops_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.drops_packet(0, 1, Time::from_us(1)));
        assert!(plan.validate(2).is_ok());
    }

    #[test]
    fn validation_checks_endpoints() {
        assert!(FaultPlan::new()
            .crash(7, Time::from_us(1))
            .validate(8)
            .is_ok());
        assert!(FaultPlan::new()
            .crash(8, Time::from_us(1))
            .validate(8)
            .is_err());
        assert!(FaultPlan::new()
            .cut_link(0, 9, Time::from_us(1))
            .validate(8)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "empty crash window")]
    fn empty_crash_window_rejected() {
        let _ = FaultPlan::new().crash_restore(0, Time::from_us(2), Time::from_us(2));
    }

    #[test]
    #[should_panic(expected = "two distinct nodes")]
    fn self_link_rejected() {
        let _ = FaultPlan::new().cut_link(3, 3, Time::from_us(1));
    }

    const FT: RackTopology = RackTopology::FatTree {
        radix: 2,
        oversubscription: 2,
    };

    #[test]
    fn leaf_outage_downs_every_member() {
        let plan = FaultPlan::new().leaf_outage(FT, 1, Time::from_us(5), Time::from_us(9));
        assert_eq!(
            plan.leaf_outages(),
            &[(
                1,
                Outage {
                    from: Time::from_us(5),
                    until: Some(Time::from_us(9)),
                }
            )]
        );
        for node in [2, 3] {
            assert!(plan.node_down_at(node, Time::from_us(5)));
            assert!(plan.node_down_at(node, Time::from_ns(8_999)));
            assert!(!plan.node_down_at(node, Time::from_us(9)));
        }
        assert!(!plan.node_down_at(1, Time::from_us(6)), "other leaf");
        assert!(!plan.node_down_at(4, Time::from_us(6)), "other leaf");
        // The uplink bundle is implied down: every cross-leaf packet
        // touching a member drops.
        assert!(plan.drops_packet(2, 4, Time::from_us(6)));
        assert!(plan.drops_packet(0, 3, Time::from_us(6)));
    }

    #[test]
    #[should_panic(expected = "fat-tree or datacenter rack")]
    fn leaf_outage_needs_a_fat_tree() {
        let _ = FaultPlan::new().leaf_outage(
            RackTopology::Direct,
            0,
            Time::from_us(1),
            Time::from_us(2),
        );
    }

    #[test]
    fn rack_outage_downs_every_member() {
        let dc = RackTopology::datacenter_for(2, 2, 1);
        let plan = FaultPlan::new().rack_outage(dc, 1, Time::from_us(5), Time::from_us(9));
        assert_eq!(
            plan.rack_outages(),
            &[(
                1,
                Outage {
                    from: Time::from_us(5),
                    until: Some(Time::from_us(9)),
                }
            )]
        );
        // Rack 1 of a radix-2 datacenter is nodes 4..8.
        for node in 4..8 {
            assert!(plan.node_down_at(node, Time::from_us(5)));
            assert!(plan.node_down_at(node, Time::from_ns(8_999)));
            assert!(!plan.node_down_at(node, Time::from_us(9)));
        }
        for node in 0..4 {
            assert!(!plan.node_down_at(node, Time::from_us(6)), "other rack");
        }
        // The spine uplinks are implied down: every cross-rack packet
        // touching a member drops, in both directions.
        assert!(plan.drops_packet(0, 5, Time::from_us(6)));
        assert!(plan.drops_packet(7, 2, Time::from_us(6)));
        assert!(!plan.drops_packet(0, 2, Time::from_us(6)), "intra-rack 0");
    }

    #[test]
    fn leaf_outage_accepts_a_datacenter_leaf() {
        // Global leaf 2 of a radix-2 datacenter sits in rack 1 and holds
        // nodes 4 and 5.
        let dc = RackTopology::datacenter_for(2, 2, 1);
        let plan = FaultPlan::new().leaf_outage(dc, 2, Time::from_us(1), Time::from_us(2));
        assert!(plan.node_down_at(4, Time::from_ns(1_500)));
        assert!(plan.node_down_at(5, Time::from_ns(1_500)));
        assert!(!plan.node_down_at(3, Time::from_ns(1_500)));
        assert!(!plan.node_down_at(6, Time::from_ns(1_500)));
    }

    #[test]
    #[should_panic(expected = "datacenter fabric")]
    fn rack_outage_needs_a_datacenter() {
        let _ = FaultPlan::new().rack_outage(FT, 0, Time::from_us(1), Time::from_us(2));
    }

    #[test]
    fn outages_for_lists_a_nodes_windows() {
        let plan = FaultPlan::new()
            .crash_restore(2, Time::from_us(1), Time::from_us(2))
            .crash(3, Time::from_us(4))
            .crash_restore(2, Time::from_us(6), Time::from_us(7));
        let windows = plan.outages_for(2);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].from, Time::from_us(1));
        assert_eq!(windows[1].until, Some(Time::from_us(7)));
        assert!(plan.outages_for(0).is_empty());
        assert_eq!(
            plan.outages_for(3),
            vec![Outage {
                from: Time::from_us(4),
                until: None
            }]
        );
    }

    #[test]
    fn fault_profile_is_deterministic_and_bounded() {
        let profile = FaultProfile {
            nodes: vec![4, 5, 6],
            mtbf: Time::from_us(20),
            mttr: Time::from_us(5),
            horizon: Time::from_us(500),
        };
        let plan = profile.generate(42);
        assert_eq!(plan, profile.generate(42));
        assert_ne!(plan, profile.generate(43));
        assert!(!plan.is_empty(), "a 25× horizon:MTBF ratio must crash");
        assert!(plan.validate(8).is_ok());
        for &(n, o) in plan.node_outages() {
            assert!(profile.nodes.contains(&n));
            assert!(o.from < profile.horizon, "crashes happen before horizon");
            assert!(o.until.is_some(), "profile outages always repair");
        }
    }

    #[test]
    fn fault_profile_streams_are_per_node() {
        // Dropping a node from the profile must not shift the others'
        // schedules.
        let wide = FaultProfile {
            nodes: vec![4, 5],
            mtbf: Time::from_us(20),
            mttr: Time::from_us(5),
            horizon: Time::from_us(500),
        };
        let narrow = FaultProfile {
            nodes: vec![5],
            ..wide.clone()
        };
        let w = wide.generate(9);
        let n = narrow.generate(9);
        assert_eq!(w.outages_for(5), n.outages_for(5));
    }
}
