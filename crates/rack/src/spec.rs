//! Declarative reader-workload specification: one builder for every
//! reader shape the experiments use.
//!
//! Historically each reader flavor had its own constructor sprawl —
//! `SyncReader::endless(..).with_consume().with_backoff(..).with_wire(..)`,
//! `AsyncReader::new` with a long positional argument list,
//! `SourceLockingReader::{endless, iterations}` — and production-traffic
//! knobs (arrival processes, key popularity, read/write mixes) had no home
//! at all. [`WorkloadSpec`] replaces all of that with one declarative
//! builder:
//!
//! ```
//! use sabre_rack::{spec, Arrivals, Popularity, ReadMechanism, ScenarioBuilder};
//! use sabre_sim::Time;
//!
//! // One core on node 0 reading 256 B objects from node 1 under open-loop
//! // Poisson arrivals (2 ops/us offered) with Zipf-skewed key popularity.
//! let report = ScenarioBuilder::new()
//!     .raw_region_sized(1, 256, 64)
//!     .reader_spec(
//!         0,
//!         0,
//!         spec()
//!             .store(1)
//!             .payload(256)
//!             .mechanism(ReadMechanism::Sabre)
//!             .arrivals(Arrivals::Poisson { ops_per_us: 2.0 })
//!             .popularity(Popularity::Zipf { exponent: 0.99 }),
//!     )
//!     .run_for(Time::from_us(50));
//! let m = report.core(0, 0);
//! assert!(m.ops > 50, "~2 ops/us over 50 us");
//! assert!(m.p99_ns().unwrap() >= m.p50_ns().unwrap());
//! ```
//!
//! [`WorkloadSpec::build`] dispatches to the cheapest workload that
//! implements the requested shape: the classic closed-loop uniform
//! specs build the *same* [`SyncReader`] / [`AsyncReader`] /
//! [`SourceLockingReader`] programs the deprecated constructors built
//! (bit-identical replay, pinned by the scenario-equivalence tests), while
//! open-loop arrivals, skewed popularity or mixed read/write traffic build
//! the generalized [`TrafficReader`].
//!
//! Scenario placement consumes specs through
//! [`ScenarioBuilder::reader_spec`](crate::ScenarioBuilder::reader_spec),
//! [`ScenarioBuilder::readers_spec`](crate::ScenarioBuilder::readers_spec)
//! and
//! [`ScenarioBuilder::readers_grid_spec`](crate::ScenarioBuilder::readers_grid_spec).

use sabre_mem::Addr;
use sabre_sim::Time;

use crate::workload::{ReadMechanism, Workload};
use crate::workloads::{
    AsyncReader, FailoverReader, SourceLockingReader, SyncReader, TrafficReader,
};

/// The arrival process driving a reader: when operations *want* to start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Closed loop (the paper's microbenchmarks): the next operation
    /// starts the instant the previous one completes.
    Closed,
    /// Open-loop Poisson arrivals at the given offered load. Arrivals
    /// that fire while an operation is still in flight queue up
    /// (`CoreMetrics::queued_arrivals`), and latency is measured from the
    /// *arrival*, so queueing delay is part of the reported tail.
    Poisson {
        /// Offered load per reader, in operations per microsecond.
        ops_per_us: f64,
    },
    /// On/off bursty arrivals: Poisson at `ops_per_us` during each `on`
    /// window, silence during each `off` window, starting with an `on`
    /// window at workload start.
    OnOff {
        /// Length of each active window.
        on: Time,
        /// Length of each silent window.
        off: Time,
        /// Offered load during active windows, in ops per microsecond.
        ops_per_us: f64,
    },
}

/// How a reader picks the next object: the key-popularity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Uniform over the object set (the paper's microbenchmarks).
    Uniform,
    /// Zipf-distributed ranks over the object set: object 0 is the
    /// hottest, drawn with probability proportional to `1/rank^exponent`.
    Zipf {
        /// The skew exponent (θ); classic YCSB skew is 0.99.
        exponent: f64,
    },
    /// Hot-set skew: a `fraction` of accesses go uniformly to the first
    /// `hot` objects, the rest uniformly to the remainder.
    HotSet {
        /// Size of the hot set (clamped to the object count).
        hot: u64,
        /// Fraction of accesses hitting the hot set, in `[0, 1]`.
        fraction: f64,
    },
}

/// Starts an empty [`WorkloadSpec`] (the conventional spelling:
/// `spec().store(1).payload(1024).mechanism(..)`).
pub fn spec() -> WorkloadSpec {
    WorkloadSpec::new()
}

/// A declarative description of one reader workload; see the
/// [module docs](self) for the full story and a runnable example.
///
/// Only [`WorkloadSpec::store`] and [`WorkloadSpec::payload`] are
/// mandatory; everything else defaults to the paper's closed-loop uniform
/// read-only shape.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    store: Option<usize>,
    payload: Option<u32>,
    mech: ReadMechanism,
    objects: Option<Vec<Addr>>,
    arrivals: Arrivals,
    popularity: Popularity,
    read_fraction: f64,
    consume: bool,
    backoff: Time,
    wire: Option<u32>,
    local_buf: Option<Addr>,
    iterations: Option<u64>,
    window: Option<usize>,
    source_locking: bool,
    replicas: Option<Vec<(usize, Vec<Addr>)>>,
    failover_timeout: Time,
    migrate: bool,
    replace_hops: Option<f64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadSpec {
    /// An empty spec: closed-loop, uniform popularity, read-only,
    /// raw-read mechanism, endless.
    pub fn new() -> Self {
        WorkloadSpec {
            store: None,
            payload: None,
            mech: ReadMechanism::Raw,
            objects: None,
            arrivals: Arrivals::Closed,
            popularity: Popularity::Uniform,
            read_fraction: 1.0,
            consume: false,
            backoff: Time::ZERO,
            wire: None,
            local_buf: None,
            iterations: None,
            window: None,
            source_locking: false,
            replicas: None,
            failover_timeout: Time::from_us(10),
            migrate: true,
            replace_hops: None,
        }
    }

    /// The node the reader targets (mandatory).
    pub fn store(mut self, node: usize) -> Self {
        self.store = Some(node);
        self
    }

    /// Clean payload bytes per object (mandatory).
    pub fn payload(mut self, bytes: u32) -> Self {
        self.payload = Some(bytes);
        self
    }

    /// The atomicity mechanism (default: [`ReadMechanism::Raw`]).
    pub fn mechanism(mut self, mech: ReadMechanism) -> Self {
        self.mech = mech;
        self
    }

    /// Explicit object addresses to read. Default: every target address
    /// the scenario's declared regions produced.
    pub fn objects(mut self, objects: Vec<Addr>) -> Self {
        self.objects = Some(objects);
        self
    }

    /// The arrival process (default: [`Arrivals::Closed`]).
    pub fn arrivals(mut self, arrivals: Arrivals) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// The key-popularity model (default: [`Popularity::Uniform`]).
    pub fn popularity(mut self, popularity: Popularity) -> Self {
        self.popularity = popularity;
        self
    }

    /// Read fraction of the operation mix in `[0, 1]` (default 1.0 =
    /// read-only). The write fraction issues one-sided remote writes of
    /// the payload bytes back to the chosen object — meaningful for
    /// raw/SABRe object images; the software layouts embed metadata a
    /// remote writer does not maintain, so mixes below 1.0 are for
    /// raw-layout traffic studies.
    ///
    /// # Panics
    ///
    /// Panics if `read_fraction` is outside `[0, 1]`.
    pub fn mix(mut self, read_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction must be in [0, 1], got {read_fraction}"
        );
        self.read_fraction = read_fraction;
        self
    }

    /// Model the application reading the clean object after the transfer
    /// (the Fig. 8 microbenchmark semantics).
    pub fn consume(mut self) -> Self {
        self.consume = true;
        self
    }

    /// Pause before retrying a failed read (default: immediate retry).
    pub fn backoff(mut self, backoff: Time) -> Self {
        self.backoff = backoff;
        self
    }

    /// Overrides the transfer size (e.g. a store's exact slot footprint;
    /// default: the mechanism's natural wire size for the payload).
    pub fn wire(mut self, wire: u32) -> Self {
        self.wire = Some(wire);
        self
    }

    /// Explicit local buffer address (default: a per-core slot in the
    /// upper half of local memory).
    pub fn local_buf(mut self, buf: Addr) -> Self {
        self.local_buf = Some(buf);
        self
    }

    /// Stop after exactly `n` successful operations (default: endless).
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Keep `window` asynchronous operations in flight at all times
    /// (Fig. 7b peak-throughput semantics) instead of the synchronous
    /// loop. Only [`ReadMechanism::Raw`] / [`ReadMechanism::Sabre`] with
    /// the default closed-loop uniform read-only shape support this.
    pub fn window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// DrTM-style source locking (Table 1, top-left): remote CAS lock,
    /// data read, asynchronous unlock. Only the closed-loop uniform
    /// read-only shape supports this.
    pub fn source_locking(mut self) -> Self {
        self.source_locking = true;
        self
    }

    /// Read a *replicated* object through a failover reader instead of a
    /// single store node. Each entry is `(store node, object addresses)`
    /// in preference order (nearest first — the farm layer's
    /// `ReplicatedStore::view_for` computes exactly this); index `i` of
    /// every address vector names the same logical object.
    /// Replaces [`WorkloadSpec::store`], which becomes optional. Only the
    /// closed-loop uniform read-only shape supports replicas.
    pub fn replicas(mut self, replicas: Vec<(usize, Vec<Addr>)>) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// How long a replicated read waits before abandoning the attempt and
    /// failing over to the next replica (default 10 µs). Only meaningful
    /// with [`WorkloadSpec::replicas`].
    pub fn failover_timeout(mut self, timeout: Time) -> Self {
        self.failover_timeout = timeout;
        self
    }

    /// Whether the failover reader *migrates* its replica binding
    /// (default `true` — adaptive). `false` selects the static
    /// round-robin policy: every operation starts at the next replica in
    /// rotation with no memory of failures. Only meaningful with
    /// [`WorkloadSpec::replicas`].
    pub fn migrate(mut self, migrate: bool) -> Self {
        self.migrate = migrate;
        self
    }

    /// Arms load-triggered re-placement: when the mean routed hop count
    /// of the reader's recent completed operations reaches `threshold`,
    /// the adaptive reader immediately probes the most-preferred
    /// suspected replica instead of waiting for the periodic probe. Only
    /// meaningful with [`WorkloadSpec::replicas`] and
    /// [`WorkloadSpec::migrate`]`(true)`.
    pub fn replace_on_hops(mut self, threshold: f64) -> Self {
        self.replace_hops = Some(threshold);
        self
    }

    fn is_plain_closed_loop(&self) -> bool {
        self.arrivals == Arrivals::Closed
            && self.popularity == Popularity::Uniform
            && self.read_fraction == 1.0
    }

    /// Materializes the spec into a workload program. `targets` is the
    /// scenario's concatenated region-target list, used when no explicit
    /// [`WorkloadSpec::objects`] were given.
    ///
    /// # Panics
    ///
    /// Panics if a mandatory field is missing, the object set is empty,
    /// or the requested combination is unsupported (window/source-locking
    /// with open-loop arrivals, skewed popularity or write mixes).
    pub fn build(&self, targets: &[Addr]) -> Box<dyn Workload> {
        let objects = match &self.objects {
            Some(objs) => objs.clone(),
            None => targets.to_vec(),
        };
        let payload = self
            .payload
            .expect("WorkloadSpec needs an object size: call .payload(bytes)");

        if let Some(replicas) = &self.replicas {
            assert!(
                self.is_plain_closed_loop(),
                "replicated readers support only the closed-loop uniform read-only shape"
            );
            assert!(
                self.window.is_none() && !self.source_locking,
                "replicated readers ignore window/source-locking"
            );
            let replicas = replicas
                .iter()
                .map(|(node, addrs)| {
                    assert!(*node <= u8::MAX as usize, "replica node out of range");
                    (*node as u8, addrs.clone())
                })
                .collect();
            return Box::new(FailoverReader::assemble(
                replicas,
                payload,
                self.mech,
                self.local_buf,
                self.iterations,
                self.consume,
                self.backoff,
                self.wire,
                self.failover_timeout,
                self.migrate,
                self.replace_hops,
            ));
        }

        assert!(
            !objects.is_empty(),
            "WorkloadSpec needs objects: declare a region or call .objects(..)"
        );
        let store = self
            .store
            .expect("WorkloadSpec needs a target node: call .store(node)");
        assert!(store <= u8::MAX as usize, "store node out of range");
        let dst = store as u8;

        if self.source_locking {
            assert!(
                self.is_plain_closed_loop(),
                "source locking supports only the closed-loop uniform read-only shape"
            );
            assert!(
                self.window.is_none() && !self.consume && self.wire.is_none(),
                "source locking ignores window/consume/wire"
            );
            return Box::new(SourceLockingReader::assemble(
                dst,
                objects,
                payload,
                self.local_buf,
                self.iterations,
            ));
        }
        if let Some(window) = self.window {
            assert!(
                self.is_plain_closed_loop(),
                "windowed readers support only the closed-loop uniform read-only shape"
            );
            assert!(
                !self.consume && self.backoff == Time::ZERO && self.iterations.is_none(),
                "windowed readers ignore consume/backoff/iterations"
            );
            return Box::new(AsyncReader::assemble(
                dst, objects, payload, self.mech, window,
            ));
        }
        if self.is_plain_closed_loop() {
            // The classic shape: the exact program the deprecated
            // constructors built, so spec-declared scenarios replay
            // bit-identically to legacy ones.
            return Box::new(SyncReader::assemble(
                dst,
                objects,
                payload,
                self.mech,
                self.local_buf,
                self.iterations,
                self.consume,
                self.backoff,
                self.wire,
            ));
        }
        Box::new(TrafficReader::from_spec(
            dst,
            objects,
            payload,
            self.mech,
            self.arrivals,
            self.popularity,
            self.read_fraction,
            self.local_buf,
            self.iterations,
            self.consume,
            self.backoff,
            self.wire,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::scenario::{RunReport, ScenarioBuilder};

    fn small() -> ClusterConfig {
        ClusterConfig {
            memory_bytes: 4 * 1024 * 1024,
            ..ClusterConfig::default()
        }
    }

    fn fingerprint(r: &RunReport) -> (u64, u64, Option<f64>, Option<u64>) {
        let m = r.core(0, 0);
        (m.ops, m.retries, m.latency.mean(), m.p99_ns())
    }

    #[test]
    fn spec_closed_loop_replays_legacy_sync_reader_bit_for_bit() {
        let legacy = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 64)
            .reader(0, 0, |targets| {
                #[allow(deprecated)]
                let r = crate::workloads::SyncReader::endless(
                    1,
                    targets.to_vec(),
                    256,
                    ReadMechanism::Sabre,
                );
                Box::new(r)
            })
            .run_for(Time::from_us(40));
        let specced = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 64)
            .reader_spec(
                0,
                0,
                spec().store(1).payload(256).mechanism(ReadMechanism::Sabre),
            )
            .run_for(Time::from_us(40));
        assert!(specced.core(0, 0).ops > 0);
        assert_eq!(fingerprint(&legacy), fingerprint(&specced));
    }

    #[test]
    fn spec_replays_legacy_sync_reader_builder_chain_bit_for_bit() {
        // The full deprecated builder chain — iterations + explicit buffer
        // + consume + backoff + wire override — against its spec spelling.
        let buf = Addr::new(3 << 20);
        let legacy = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 64)
            .reader(0, 0, move |targets| {
                #[allow(deprecated)]
                let r = crate::workloads::SyncReader::iterations(
                    1,
                    targets.to_vec(),
                    256,
                    ReadMechanism::Sabre,
                    buf,
                    200,
                )
                .with_consume()
                .with_backoff(Time::from_ns(100))
                .with_wire(320);
                Box::new(r)
            })
            .run_for(Time::from_us(40));
        let specced = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 64)
            .reader_spec(
                0,
                0,
                spec()
                    .store(1)
                    .payload(256)
                    .mechanism(ReadMechanism::Sabre)
                    .local_buf(buf)
                    .iterations(200)
                    .consume()
                    .backoff(Time::from_ns(100))
                    .wire(320),
            )
            .run_for(Time::from_us(40));
        assert!(specced.core(0, 0).ops > 0);
        assert_eq!(fingerprint(&legacy), fingerprint(&specced));
    }

    #[test]
    fn spec_window_replays_legacy_async_reader_bit_for_bit() {
        let legacy = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 512, 64)
            .reader(0, 0, |targets| {
                #[allow(deprecated)]
                let r = crate::workloads::AsyncReader::new(
                    1,
                    targets.to_vec(),
                    512,
                    ReadMechanism::Sabre,
                    8,
                );
                Box::new(r)
            })
            .run_for(Time::from_us(40));
        let specced = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 512, 64)
            .reader_spec(
                0,
                0,
                spec()
                    .store(1)
                    .payload(512)
                    .mechanism(ReadMechanism::Sabre)
                    .window(8),
            )
            .run_for(Time::from_us(40));
        assert!(specced.core(0, 0).ops > 0);
        assert_eq!(fingerprint(&legacy), fingerprint(&specced));
    }

    #[test]
    fn spec_source_locking_replays_legacy_reader_bit_for_bit() {
        let legacy = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 16)
            .reader(0, 0, |targets| {
                #[allow(deprecated)]
                let r = crate::workloads::SourceLockingReader::endless(1, targets.to_vec(), 256);
                Box::new(r)
            })
            .run_for(Time::from_us(40));
        let specced = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 16)
            .reader_spec(0, 0, spec().store(1).payload(256).source_locking())
            .run_for(Time::from_us(40));
        assert!(specced.core(0, 0).ops > 0);
        assert_eq!(fingerprint(&legacy), fingerprint(&specced));
    }

    #[test]
    fn spec_source_locking_iterations_replays_legacy_reader_bit_for_bit() {
        let legacy = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 16)
            .reader(0, 0, |targets| {
                #[allow(deprecated)]
                let r =
                    crate::workloads::SourceLockingReader::iterations(1, targets.to_vec(), 256, 25);
                Box::new(r)
            })
            .run_for(Time::from_us(40));
        let specced = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 16)
            .reader_spec(
                0,
                0,
                spec().store(1).payload(256).source_locking().iterations(25),
            )
            .run_for(Time::from_us(40));
        assert!(specced.core(0, 0).ops > 0);
        assert_eq!(fingerprint(&legacy), fingerprint(&specced));
    }

    #[test]
    fn poisson_open_loop_tracks_offered_load() {
        // 1 op/us offered for 200 us with ~300 ns service: the loop is
        // open, so completions track arrivals, not service capacity.
        let report = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 64)
            .reader_spec(
                0,
                0,
                spec()
                    .store(1)
                    .payload(256)
                    .arrivals(Arrivals::Poisson { ops_per_us: 1.0 }),
            )
            .run_for(Time::from_us(200));
        let m = report.core(0, 0);
        assert!(
            (120..=280).contains(&m.ops),
            "~200 Poisson arrivals expected, got {}",
            m.ops
        );
        // Utilization ~0.3: queueing happens but stays the exception.
        assert!(
            m.queued_arrivals < m.ops / 2,
            "{} queued",
            m.queued_arrivals
        );
    }

    #[test]
    fn poisson_overload_builds_queue_and_stretches_the_tail() {
        // 20 ops/us offered against ~300 ns service is ~6x overload: the
        // backlog grows for the whole window and arrival-anchored latency
        // stretches far beyond the service time.
        let report = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 64)
            .reader_spec(
                0,
                0,
                spec()
                    .store(1)
                    .payload(256)
                    .arrivals(Arrivals::Poisson { ops_per_us: 20.0 }),
            )
            .run_for(Time::from_us(50));
        let m = report.core(0, 0);
        assert!(m.ops > 0);
        assert!(m.queued_arrivals > m.ops, "most arrivals should queue");
        assert!(
            m.peak_backlog >= 8,
            "backlog {} too shallow",
            m.peak_backlog
        );
        let (p50, p99) = (m.p50_ns().unwrap(), m.p99_ns().unwrap());
        assert!(
            p99 > p50,
            "saturation must stretch the tail: {p50} vs {p99}"
        );
        assert!(m.p999_ns().unwrap() >= p99);
    }

    #[test]
    fn onoff_arrivals_burst_and_go_silent() {
        // 4 ops/us during 5 us bursts, 5 us silences: about half the
        // offered load of always-on, and bursts outrun the ~300 ns service
        // enough to queue.
        let report = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 64)
            .reader_spec(
                0,
                0,
                spec().store(1).payload(256).arrivals(Arrivals::OnOff {
                    on: Time::from_us(5),
                    off: Time::from_us(5),
                    ops_per_us: 4.0,
                }),
            )
            .run_for(Time::from_us(100));
        let m = report.core(0, 0);
        assert!(
            (120..=280).contains(&m.ops),
            "~200 bursty arrivals expected, got {}",
            m.ops
        );
        assert!(m.queued_arrivals > 0, "bursts should queue behind service");
    }

    #[test]
    fn skewed_and_mixed_traffic_is_deterministic() {
        let run = || {
            let report = ScenarioBuilder::with_config(small())
                .raw_region_sized(1, 256, 64)
                .reader_spec(
                    0,
                    0,
                    spec()
                        .store(1)
                        .payload(256)
                        .popularity(Popularity::Zipf { exponent: 0.99 })
                        .mix(0.5),
                )
                .run_for(Time::from_us(50));
            fingerprint(&report)
        };
        let a = run();
        assert!(a.0 > 50, "closed-loop mixed traffic must make progress");
        assert_eq!(a.1, 0, "raw reads and writes never retry");
        assert_eq!(a, run(), "same seed, same history");
    }

    #[test]
    fn hot_set_popularity_runs() {
        let report = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 256, 64)
            .reader_spec(
                0,
                0,
                spec().store(1).payload(256).popularity(Popularity::HotSet {
                    hot: 4,
                    fraction: 0.9,
                }),
            )
            .run_for(Time::from_us(20));
        assert!(report.core(0, 0).ops > 0);
    }

    #[test]
    #[should_panic(expected = "needs a target node")]
    fn build_requires_a_store() {
        let _ = spec().payload(64).build(&[Addr::new(0)]);
    }

    #[test]
    #[should_panic(expected = "closed-loop uniform read-only")]
    fn window_rejects_open_loop_arrivals() {
        let _ = spec()
            .store(1)
            .payload(64)
            .window(4)
            .arrivals(Arrivals::Poisson { ops_per_us: 1.0 })
            .build(&[Addr::new(0)]);
    }
}
