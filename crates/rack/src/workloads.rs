//! Reusable workload programs: the microbenchmark readers and writers of
//! §6/§7 ("a number of writer threads that update objects in their local
//! memory, or reader threads that access objects in remote memory using
//! one-sided soNUMA operations in a tight loop").

use sabre_mem::{Addr, BLOCK_BYTES};
use sabre_sim::Time;
use sabre_sonuma::CqEntry;
use sabre_sw::cost::DataSource;
use sabre_sw::layout::{CleanLayout, PerClLayout};
use sabre_sw::{ChecksumLayout, VersionWord};

use crate::cluster::CoreApi;
use crate::metrics::Phase;
use crate::workload::{ReadMechanism, Workload};

/// Generates the recognizable payload a writer stores: `[obj_id u64 | seq
/// u64 | filler…]`, with the filler byte derived from both. Readers and
/// property tests use [`verify_payload`] to prove a read was not torn.
pub fn pattern_payload(obj_id: u64, seq: u64, payload_len: usize) -> Vec<u8> {
    let mut out = vec![0u8; payload_len];
    let fill = (obj_id.wrapping_mul(31).wrapping_add(seq) & 0xFF) as u8;
    out.fill(fill);
    if payload_len >= 8 {
        out[..8].copy_from_slice(&obj_id.to_le_bytes());
    }
    if payload_len >= 16 {
        out[8..16].copy_from_slice(&seq.to_le_bytes());
    }
    out
}

/// Verifies a payload produced by [`pattern_payload`]: returns the sequence
/// number if the bytes form one consistent snapshot, `None` if torn.
pub fn verify_payload(obj_id: u64, data: &[u8]) -> Option<u64> {
    if data.len() < 16 {
        // Too small to carry the ids; check filler consistency only.
        return data
            .iter()
            .all(|&b| b == data[0])
            .then_some(u64::from(data[0]));
    }
    let stored_id = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
    let seq = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    if stored_id != obj_id {
        return None;
    }
    let fill = (obj_id.wrapping_mul(31).wrapping_add(seq) & 0xFF) as u8;
    data[16..].iter().all(|&b| b == fill).then_some(seq)
}

/// The sequence of single-block stores one object update performs under
/// `layout`, in protocol order (the version word stores around them are the
/// caller's job). Shared by local [`Writer`]s and the FaRM RPC write server.
///
/// For the per-CL layout the head line comes *last*: it carries the header
/// version every stamp is compared against, so writing it last publishes
/// the update atomically with respect to the stamp check.
pub fn update_chunks(
    layout: WriterLayout,
    base: Addr,
    obj_id: u64,
    seq: u64,
    payload_len: usize,
    locked_version: u64,
) -> Vec<(Addr, Vec<u8>)> {
    let payload = pattern_payload(obj_id, seq, payload_len);
    match layout {
        WriterLayout::Clean => {
            let start = base + CleanLayout::HEADER_BYTES as u64;
            let mut out = Vec::new();
            let mut off = 0usize;
            while off < payload.len() {
                let addr = start + off as u64;
                let room = BLOCK_BYTES - addr.block_offset();
                let end = (off + room).min(payload.len());
                out.push((addr, payload[off..end].to_vec()));
                off = end;
            }
            out
        }
        WriterLayout::PerCl => {
            let lines = PerClLayout::lines_needed(payload.len());
            let next_version = VersionWord::new(locked_version + 2);
            let mut out = Vec::new();
            for line in (0..lines).rev() {
                let addr = base + (line * BLOCK_BYTES) as u64;
                out.push((
                    addr,
                    PerClLayout::encode_line(next_version, &payload, line).to_vec(),
                ));
            }
            out
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderState {
    Idle,
    AwaitTransfer,
    AwaitStrip,
    AwaitConsume,
    Backoff,
}

/// A reader thread issuing synchronous one-sided operations in a tight
/// loop, with the mechanism-appropriate post-processing and immediate
/// retry on atomicity failure.
#[derive(Debug)]
pub struct SyncReader {
    dst_node: u8,
    objects: Vec<Addr>,
    payload: u32,
    mech: ReadMechanism,
    local_buf: Option<Addr>,
    remaining: Option<u64>,
    /// Model the application reading the clean object after a SABRe (the
    /// §7.2 microbenchmark semantics: "a remote operation completes when
    /// the clean data is read by the core").
    consume: bool,
    /// Pause before retrying a failed read (§5.1: retry policy is
    /// software's choice; zero = immediate retry, the Fig. 8 policy).
    backoff: Time,
    /// Explicit transfer size (store-backed readers pass the store's slot
    /// footprint; defaults to the mechanism's natural wire size).
    wire_override: Option<u32>,
    cur_obj: usize,
    t0: Time,
    state: ReaderState,
}

impl SyncReader {
    /// A reader that runs until the simulation ends. The local buffer is
    /// placed automatically (per-core slot in the upper half of memory).
    pub fn endless(dst_node: u8, objects: Vec<Addr>, payload: u32, mech: ReadMechanism) -> Self {
        SyncReader {
            dst_node,
            objects,
            payload,
            mech,
            local_buf: None,
            remaining: None,
            consume: false,
            backoff: Time::ZERO,
            wire_override: None,
            cur_obj: 0,
            t0: Time::ZERO,
            state: ReaderState::Idle,
        }
    }

    /// A reader that performs exactly `n` successful operations, with an
    /// explicit local buffer.
    pub fn iterations(
        dst_node: u8,
        objects: Vec<Addr>,
        payload: u32,
        mech: ReadMechanism,
        local_buf: Addr,
        n: u64,
    ) -> Self {
        let mut r = SyncReader::endless(dst_node, objects, payload, mech);
        r.local_buf = Some(local_buf);
        r.remaining = Some(n);
        r
    }

    /// Enables the post-transfer application read (Fig. 8 semantics).
    pub fn with_consume(mut self) -> Self {
        self.consume = true;
        self
    }

    /// Sets a backoff pause before each retry (default: immediate retry).
    pub fn with_backoff(mut self, backoff: Time) -> Self {
        self.backoff = backoff;
        self
    }

    /// Overrides the transfer size (e.g. a store's exact slot footprint).
    pub fn with_wire(mut self, wire: u32) -> Self {
        self.wire_override = Some(wire);
        self
    }

    fn wire(&self) -> u32 {
        self.wire_override
            .unwrap_or_else(|| self.mech.wire_bytes(self.payload))
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        self.local_buf.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 256 * 1024)
        })
    }

    fn issue_next(&mut self, api: &mut CoreApi<'_>, new_object: bool) {
        if self.remaining == Some(0) {
            self.state = ReaderState::Idle;
            return;
        }
        if new_object {
            self.cur_obj = api.rng().below(self.objects.len() as u64) as usize;
        }
        let buf = self.buf(api);
        self.t0 = api.now();
        api.issue(
            self.mech.op(),
            self.dst_node,
            self.objects[self.cur_obj],
            buf,
            self.wire(),
            0,
        );
        self.state = ReaderState::AwaitTransfer;
    }

    fn success(&mut self, api: &mut CoreApi<'_>) {
        let latency = api.now() - self.t0;
        api.metrics().record_success(self.payload as u64, latency);
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        self.issue_next(api, true);
    }

    fn retry(&mut self, api: &mut CoreApi<'_>) {
        // §7.2: "Upon a conflict detection, readers immediately retry
        // reading the same object again." (Or after the configured backoff.)
        api.metrics().record_retry();
        if self.backoff == Time::ZERO {
            self.issue_next(api, false);
        } else {
            self.state = ReaderState::Backoff;
            api.sleep(self.backoff);
        }
    }
}

impl Workload for SyncReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.issue_next(api, true);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        assert_eq!(self.state, ReaderState::AwaitTransfer);
        let transfer = api.now() - self.t0;
        api.metrics().record_phase(Phase::Transfer, transfer);
        match self.mech {
            ReadMechanism::Raw => self.success(api),
            ReadMechanism::Sabre => {
                if !cq.success {
                    self.retry(api);
                } else if self.consume {
                    self.state = ReaderState::AwaitConsume;
                    let t = api.cpu().read_time(self.payload as usize, DataSource::Llc);
                    api.metrics().record_phase(Phase::App, t);
                    api.sleep(t);
                } else {
                    self.success(api);
                }
            }
            ReadMechanism::PerClValidate { .. } => {
                self.state = ReaderState::AwaitStrip;
                let t = api.cpu().strip_time(self.wire() as usize);
                api.metrics().record_phase(Phase::Strip, t);
                api.sleep(t);
            }
            ReadMechanism::ChecksumValidate { payload } => {
                self.state = ReaderState::AwaitStrip;
                let t = api.cpu().crc_time(payload as usize);
                api.metrics().record_phase(Phase::Strip, t);
                api.sleep(t);
            }
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        match self.state {
            ReaderState::AwaitStrip => {
                let buf = self.buf(api);
                let image = api.read_local(buf, self.wire() as usize);
                let ok = match self.mech {
                    ReadMechanism::PerClValidate { payload } => {
                        PerClLayout::validate_and_strip(&image, payload as usize).is_ok()
                    }
                    ReadMechanism::ChecksumValidate { payload } => {
                        ChecksumLayout::validate(&image, payload as usize).is_ok()
                    }
                    _ => unreachable!("strip state only for software mechanisms"),
                };
                if ok {
                    self.success(api);
                } else {
                    self.retry(api);
                }
            }
            ReaderState::AwaitConsume => self.success(api),
            ReaderState::Backoff => self.issue_next(api, false),
            s => panic!("unexpected wake in state {s:?}"),
        }
    }
}

/// A reader keeping a window of asynchronous operations in flight
/// (Fig. 7b: peak-throughput measurement).
#[derive(Debug)]
pub struct AsyncReader {
    dst_node: u8,
    objects: Vec<Addr>,
    payload: u32,
    mech: ReadMechanism,
    window: usize,
    /// wq_id → (issue time, slot).
    inflight: std::collections::HashMap<u64, (Time, usize)>,
    buf_base: Option<Addr>,
}

impl AsyncReader {
    /// Creates a reader with `window` operations in flight at all times.
    ///
    /// # Panics
    ///
    /// Panics if the mechanism needs CPU post-processing (use
    /// [`SyncReader`] for those) or the window is zero.
    pub fn new(
        dst_node: u8,
        objects: Vec<Addr>,
        payload: u32,
        mech: ReadMechanism,
        window: usize,
    ) -> Self {
        assert!(
            matches!(mech, ReadMechanism::Raw | ReadMechanism::Sabre),
            "AsyncReader models pure transfer throughput"
        );
        assert!(window > 0, "window must be positive");
        AsyncReader {
            dst_node,
            objects,
            payload,
            mech,
            window,
            inflight: std::collections::HashMap::new(),
            buf_base: None,
        }
    }

    fn slot_buf(&self, api: &CoreApi<'_>, slot: usize) -> Addr {
        let base = self.buf_base.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 512 * 1024)
        });
        base + (slot as u64) * ((self.mech.wire_bytes(self.payload) as u64).div_ceil(64) * 64)
    }

    fn issue_slot(&mut self, api: &mut CoreApi<'_>, slot: usize) {
        let obj = self.objects[api.rng().below(self.objects.len() as u64) as usize];
        let buf = self.slot_buf(api, slot);
        let wq_id = api.issue(
            self.mech.op(),
            self.dst_node,
            obj,
            buf,
            self.mech.wire_bytes(self.payload),
            0,
        );
        self.inflight.insert(wq_id, (api.now(), slot));
    }
}

impl Workload for AsyncReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        for slot in 0..self.window {
            self.issue_slot(api, slot);
        }
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        let (t0, slot) = self
            .inflight
            .remove(&cq.wq_id)
            .expect("completion for an operation we issued");
        if cq.success {
            let latency = api.now() - t0;
            api.metrics().record_success(self.payload as u64, latency);
        } else {
            api.metrics().record_retry();
        }
        self.issue_slot(api, slot);
    }
}

/// Which object layout a writer maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterLayout {
    /// Clean layout (SABRe experiments): header + contiguous payload.
    Clean,
    /// FaRM per-cache-line versions layout.
    PerCl,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterPhase {
    Idle,
    /// Version word set odd; writing payload chunk `chunk` next.
    Writing {
        chunk: usize,
    },
    /// All data written; publish (even version) next.
    Publishing,
    /// Waiting for readers to drain (locking-mode experiments).
    SpinningOnReaders,
}

/// A local writer thread repeatedly updating its subset of objects
/// (Concurrent-Read-Exclusive-Write: each object has one writer).
///
/// One store (one cache block or less) is applied per
/// [`ClusterConfig::writer_store_interval`](crate::ClusterConfig), so a
/// racing remote reader observes genuinely torn intermediate states unless
/// an atomicity mechanism intervenes.
#[derive(Debug)]
pub struct Writer {
    objects: Vec<(u64, Addr)>,
    payload: u32,
    layout: WriterLayout,
    think: Time,
    /// Respect the shared reader-lock word before locking (destination-
    /// locking experiments).
    respect_reader_locks: bool,
    seq: u64,
    cur: usize,
    phase: WriterPhase,
    /// The (even) version read at lock time; the update publishes at +2.
    locked_version: u64,
    updates: u64,
}

impl Writer {
    /// Creates a writer owning `objects` (pairs of object id and base
    /// address, all local), updating them round-robin with `think` pause
    /// between updates.
    ///
    /// # Panics
    ///
    /// Panics if `objects` is empty.
    pub fn new(objects: Vec<(u64, Addr)>, payload: u32, layout: WriterLayout, think: Time) -> Self {
        assert!(!objects.is_empty(), "a writer needs at least one object");
        Writer {
            objects,
            payload,
            layout,
            think,
            respect_reader_locks: false,
            seq: 0,
            cur: 0,
            phase: WriterPhase::Idle,
            locked_version: 0,
            updates: 0,
        }
    }

    /// Makes the writer wait for the shared reader lock to drain before
    /// each update (destination-locking mode).
    pub fn respecting_reader_locks(mut self) -> Self {
        self.respect_reader_locks = true;
        self
    }

    /// Completed object updates.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    fn base(&self) -> Addr {
        self.objects[self.cur].1
    }

    fn obj_id(&self) -> u64 {
        self.objects[self.cur].0
    }

    /// The payload chunks of the current update, split on absolute cache
    /// block boundaries so each is a single store.
    fn chunks(&self) -> Vec<(Addr, Vec<u8>)> {
        update_chunks(
            self.layout,
            self.base(),
            self.obj_id(),
            self.seq,
            self.payload as usize,
            self.locked_version,
        )
    }
}

impl Writer {
    fn begin_update(&mut self, api: &mut CoreApi<'_>) {
        if self.respect_reader_locks {
            let rlock = api.read_local(self.base() + 8, 8);
            let readers = u64::from_le_bytes(rlock.try_into().expect("8 bytes"));
            if readers > 0 {
                self.phase = WriterPhase::SpinningOnReaders;
                api.sleep(Time::from_ns(10));
                return;
            }
        }
        let v = VersionWord::new(u64::from_le_bytes(
            api.read_local(self.base(), 8).try_into().expect("8 bytes"),
        ));
        let locked = v.locked();
        self.locked_version = v.raw();
        api.store_local_u64(self.base(), locked.raw());
        self.phase = WriterPhase::Writing { chunk: 0 };
        api.sleep(api.config().writer_store_interval);
    }
}

impl Workload for Writer {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.begin_update(api);
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        match self.phase {
            WriterPhase::Idle => self.begin_update(api),
            WriterPhase::SpinningOnReaders => self.begin_update(api),
            WriterPhase::Writing { chunk } => {
                let chunks = self.chunks();
                if chunk < chunks.len() {
                    let (addr, data) = &chunks[chunk];
                    api.store_local(*addr, data);
                    self.phase = WriterPhase::Writing { chunk: chunk + 1 };
                    api.sleep(api.config().writer_store_interval);
                } else {
                    self.phase = WriterPhase::Publishing;
                    api.sleep(Time::ZERO.max(api.config().writer_store_interval));
                }
            }
            WriterPhase::Publishing => {
                // Publish: version becomes even (old + 2).
                api.store_local_u64(self.base(), self.locked_version + 2);
                self.updates += 1;
                self.seq += 1;
                self.cur = (self.cur + 1) % self.objects.len();
                self.phase = WriterPhase::Idle;
                api.sleep(self.think.max(api.config().writer_store_interval));
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockReaderState {
    Idle,
    AwaitCas,
    AwaitRead,
    Backoff,
}

/// A DrTM-style reader using *source-side remote locking* (Table 1,
/// top-left): a remote CAS acquires the object's write lock (one extra
/// network roundtrip), the data read follows, and the unlock is fired
/// asynchronously. Contended CAS retries after a short backoff.
#[derive(Debug)]
pub struct SourceLockingReader {
    dst_node: u8,
    objects: Vec<Addr>,
    payload: u32,
    local_buf: Option<Addr>,
    remaining: Option<u64>,
    backoff: Time,
    cur_obj: usize,
    t0: Time,
    state: LockReaderState,
}

impl SourceLockingReader {
    /// A locking reader that runs until the simulation ends.
    pub fn endless(dst_node: u8, objects: Vec<Addr>, payload: u32) -> Self {
        SourceLockingReader {
            dst_node,
            objects,
            payload,
            local_buf: None,
            remaining: None,
            backoff: Time::from_ns(200),
            cur_obj: 0,
            t0: Time::ZERO,
            state: LockReaderState::Idle,
        }
    }

    /// A locking reader performing exactly `n` successful reads.
    pub fn iterations(dst_node: u8, objects: Vec<Addr>, payload: u32, n: u64) -> Self {
        let mut r = SourceLockingReader::endless(dst_node, objects, payload);
        r.remaining = Some(n);
        r
    }

    fn wire(&self) -> u32 {
        CleanLayout::object_bytes(self.payload as usize) as u32
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        self.local_buf.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 256 * 1024)
        })
    }

    fn begin(&mut self, api: &mut CoreApi<'_>, new_object: bool) {
        if self.remaining == Some(0) {
            self.state = LockReaderState::Idle;
            return;
        }
        if new_object {
            self.cur_obj = api.rng().below(self.objects.len() as u64) as usize;
        }
        let buf = self.buf(api);
        self.t0 = api.now();
        // Roundtrip 1: acquire the remote lock with a one-sided CAS.
        api.issue(
            sabre_sonuma::OpKind::LockCas,
            self.dst_node,
            self.objects[self.cur_obj],
            buf,
            8,
            0,
        );
        self.state = LockReaderState::AwaitCas;
    }
}

impl Workload for SourceLockingReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.begin(api, true);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        // Dispatch on the operation type: the asynchronous unlock's ack can
        // arrive at any point of the *next* read's lifecycle.
        match cq.op {
            sabre_sonuma::OpKind::Unlock => {}
            sabre_sonuma::OpKind::LockCas => {
                assert_eq!(self.state, LockReaderState::AwaitCas);
                if !cq.success {
                    // Contended: back off, then retry the CAS.
                    api.metrics().record_retry();
                    self.state = LockReaderState::Backoff;
                    api.sleep(self.backoff);
                    return;
                }
                // Roundtrip 2: the data read, now race-free.
                let buf = self.buf(api);
                api.issue(
                    sabre_sonuma::OpKind::Read,
                    self.dst_node,
                    self.objects[self.cur_obj],
                    buf,
                    self.wire(),
                    0,
                );
                self.state = LockReaderState::AwaitRead;
            }
            sabre_sonuma::OpKind::Read => {
                assert_eq!(self.state, LockReaderState::AwaitRead);
                // Fire the unlock without waiting for it.
                let buf = self.buf(api);
                api.issue(
                    sabre_sonuma::OpKind::Unlock,
                    self.dst_node,
                    self.objects[self.cur_obj],
                    buf,
                    8,
                    0,
                );
                let latency = api.now() - self.t0;
                api.metrics().record_success(self.payload as u64, latency);
                if let Some(n) = &mut self.remaining {
                    *n -= 1;
                }
                self.begin(api, true);
            }
            op => panic!("unexpected completion op {op:?}"),
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        assert_eq!(self.state, LockReaderState::Backoff);
        self.begin(api, false);
    }
}
