//! Reusable workload programs: the microbenchmark readers and writers of
//! §6/§7 ("a number of writer threads that update objects in their local
//! memory, or reader threads that access objects in remote memory using
//! one-sided soNUMA operations in a tight loop").

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use sabre_mem::{Addr, BLOCK_BYTES};
use sabre_sim::{SimRng, Time, Zipf};
use sabre_sonuma::CqEntry;
use sabre_sw::cost::DataSource;
use sabre_sw::layout::{CleanLayout, PerClLayout};
use sabre_sw::{crc64_ecma, tag_board_addr, ChecksumLayout, VersionWord, WfRegisterLayout};

use crate::cluster::CoreApi;
use crate::metrics::Phase;
use crate::spec::{Arrivals, Popularity};
use crate::workload::{ReadMechanism, Workload};

/// Generates the recognizable payload a writer stores: `[obj_id u64 | seq
/// u64 | filler…]`, with the filler byte derived from both. Readers and
/// property tests use [`verify_payload`] to prove a read was not torn.
pub fn pattern_payload(obj_id: u64, seq: u64, payload_len: usize) -> Vec<u8> {
    let mut out = vec![0u8; payload_len];
    let fill = (obj_id.wrapping_mul(31).wrapping_add(seq) & 0xFF) as u8;
    out.fill(fill);
    if payload_len >= 8 {
        out[..8].copy_from_slice(&obj_id.to_le_bytes());
    }
    if payload_len >= 16 {
        out[8..16].copy_from_slice(&seq.to_le_bytes());
    }
    out
}

/// Verifies a payload produced by [`pattern_payload`]: returns the sequence
/// number if the bytes form one consistent snapshot, `None` if torn.
pub fn verify_payload(obj_id: u64, data: &[u8]) -> Option<u64> {
    if data.len() < 16 {
        // Too small to carry the ids; check filler consistency only.
        return data
            .iter()
            .all(|&b| b == data[0])
            .then_some(u64::from(data[0]));
    }
    let stored_id = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
    let seq = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    if stored_id != obj_id {
        return None;
    }
    let fill = (obj_id.wrapping_mul(31).wrapping_add(seq) & 0xFF) as u8;
    data[16..].iter().all(|&b| b == fill).then_some(seq)
}

/// The sequence of single-block stores one object update performs under
/// `layout`, in protocol order (the version word stores around them are the
/// caller's job). Shared by local [`Writer`]s and the FaRM RPC write server.
///
/// For the per-CL layout the head line comes *last*: it carries the header
/// version every stamp is compared against, so writing it last publishes
/// the update atomically with respect to the stamp check.
pub fn update_chunks(
    layout: WriterLayout,
    base: Addr,
    obj_id: u64,
    seq: u64,
    payload_len: usize,
    locked_version: u64,
) -> Vec<(Addr, Vec<u8>)> {
    let payload = pattern_payload(obj_id, seq, payload_len);
    match layout {
        WriterLayout::Clean => {
            let start = base + CleanLayout::HEADER_BYTES as u64;
            let mut out = Vec::new();
            let mut off = 0usize;
            while off < payload.len() {
                let addr = start + off as u64;
                let room = BLOCK_BYTES - addr.block_offset();
                let end = (off + room).min(payload.len());
                out.push((addr, payload[off..end].to_vec()));
                off = end;
            }
            out
        }
        WriterLayout::PerCl => {
            let lines = PerClLayout::lines_needed(payload.len());
            let next_version = VersionWord::new(locked_version + 2);
            let mut out = Vec::new();
            for line in (0..lines).rev() {
                let addr = base + (line * BLOCK_BYTES) as u64;
                out.push((
                    addr,
                    PerClLayout::encode_line(next_version, &payload, line).to_vec(),
                ));
            }
            out
        }
        WriterLayout::Checksum => {
            let start = base + ChecksumLayout::HEADER_BYTES as u64;
            let mut out = Vec::new();
            let mut off = 0usize;
            while off < payload.len() {
                let addr = start + off as u64;
                let room = BLOCK_BYTES - addr.block_offset();
                let end = (off + room).min(payload.len());
                out.push((addr, payload[off..end].to_vec()));
                off = end;
            }
            // The CRC of the finished payload lands last, just before the
            // version word (at +8) publishes the update.
            out.push((base, crc64_ecma(&payload).to_le_bytes().to_vec()));
            out
        }
        WriterLayout::WfRegister => {
            // Write the *next* slot in rotation; readers keep snapshotting
            // the published one undisturbed. The slot's own seq word goes
            // last so a capture of a half-written slot is recognizably
            // stale, and the publish word (stored by the caller) flips
            // readers over atomically.
            let (pub_seq, slot) = WfRegisterLayout::unpack(locked_version);
            let next_slot = (slot + 1) % WfRegisterLayout::SLOTS;
            let slot_base = WfRegisterLayout::slot_addr(base, next_slot, payload.len());
            let start = slot_base + WfRegisterLayout::SLOT_HEADER_BYTES as u64;
            let mut out = Vec::new();
            let mut off = 0usize;
            while off < payload.len() {
                let addr = start + off as u64;
                let room = BLOCK_BYTES - addr.block_offset();
                let end = (off + room).min(payload.len());
                out.push((addr, payload[off..end].to_vec()));
                off = end;
            }
            out.push((slot_base, (pub_seq + 1).to_le_bytes().to_vec()));
            out
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderState {
    Idle,
    AwaitTransfer,
    AwaitStrip,
    AwaitConsume,
    Backoff,
}

/// A reader thread issuing synchronous one-sided operations in a tight
/// loop, with the mechanism-appropriate post-processing and immediate
/// retry on atomicity failure.
#[derive(Debug)]
pub struct SyncReader {
    dst_node: u8,
    objects: Vec<Addr>,
    payload: u32,
    mech: ReadMechanism,
    local_buf: Option<Addr>,
    remaining: Option<u64>,
    /// Model the application reading the clean object after a SABRe (the
    /// §7.2 microbenchmark semantics: "a remote operation completes when
    /// the clean data is read by the core").
    consume: bool,
    /// Pause before retrying a failed read (§5.1: retry policy is
    /// software's choice; zero = immediate retry, the Fig. 8 policy).
    backoff: Time,
    /// Explicit transfer size (store-backed readers pass the store's slot
    /// footprint; defaults to the mechanism's natural wire size).
    wire_override: Option<u32>,
    /// Outstanding Oh-RAM confirm writes (fire-and-forget; completions are
    /// matched by `wq_id` and discarded).
    confirm_inflight: HashSet<u64>,
    cur_obj: usize,
    t0: Time,
    state: ReaderState,
}

impl SyncReader {
    /// The one true constructor, fed by [`WorkloadSpec::build`]
    /// (crate::spec::WorkloadSpec::build). Field-for-field what the
    /// deprecated builder chain used to assemble, so spec-built readers
    /// replay bit-identically to legacy ones.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        dst_node: u8,
        objects: Vec<Addr>,
        payload: u32,
        mech: ReadMechanism,
        local_buf: Option<Addr>,
        remaining: Option<u64>,
        consume: bool,
        backoff: Time,
        wire_override: Option<u32>,
    ) -> Self {
        SyncReader {
            dst_node,
            objects,
            payload,
            mech,
            local_buf,
            remaining,
            consume,
            backoff,
            wire_override,
            confirm_inflight: HashSet::new(),
            cur_obj: 0,
            t0: Time::ZERO,
            state: ReaderState::Idle,
        }
    }

    /// A reader that runs until the simulation ends. The local buffer is
    /// placed automatically (per-core slot in the upper half of memory).
    #[deprecated(note = "declare the reader with sabre_rack::spec() instead")]
    pub fn endless(dst_node: u8, objects: Vec<Addr>, payload: u32, mech: ReadMechanism) -> Self {
        SyncReader::assemble(
            dst_node,
            objects,
            payload,
            mech,
            None,
            None,
            false,
            Time::ZERO,
            None,
        )
    }

    /// A reader that performs exactly `n` successful operations, with an
    /// explicit local buffer.
    #[deprecated(note = "declare the reader with sabre_rack::spec() instead")]
    pub fn iterations(
        dst_node: u8,
        objects: Vec<Addr>,
        payload: u32,
        mech: ReadMechanism,
        local_buf: Addr,
        n: u64,
    ) -> Self {
        SyncReader::assemble(
            dst_node,
            objects,
            payload,
            mech,
            Some(local_buf),
            Some(n),
            false,
            Time::ZERO,
            None,
        )
    }

    /// Enables the post-transfer application read (Fig. 8 semantics).
    #[deprecated(note = "use WorkloadSpec::consume instead")]
    pub fn with_consume(mut self) -> Self {
        self.consume = true;
        self
    }

    /// Sets a backoff pause before each retry (default: immediate retry).
    #[deprecated(note = "use WorkloadSpec::backoff instead")]
    pub fn with_backoff(mut self, backoff: Time) -> Self {
        self.backoff = backoff;
        self
    }

    /// Overrides the transfer size (e.g. a store's exact slot footprint).
    #[deprecated(note = "use WorkloadSpec::wire instead")]
    pub fn with_wire(mut self, wire: u32) -> Self {
        self.wire_override = Some(wire);
        self
    }

    fn wire(&self) -> u32 {
        self.wire_override
            .unwrap_or_else(|| self.mech.wire_bytes(self.payload))
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        self.local_buf.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 256 * 1024)
        })
    }

    fn issue_next(&mut self, api: &mut CoreApi<'_>, new_object: bool) {
        if self.remaining == Some(0) {
            self.state = ReaderState::Idle;
            return;
        }
        if new_object {
            self.cur_obj = api.rng().below(self.objects.len() as u64) as usize;
        }
        let buf = self.buf(api);
        self.t0 = api.now();
        api.issue(
            self.mech.op(),
            self.dst_node,
            self.objects[self.cur_obj],
            buf,
            self.wire(),
            0,
        );
        self.state = ReaderState::AwaitTransfer;
    }

    fn success(&mut self, api: &mut CoreApi<'_>) {
        let latency = api.now() - self.t0;
        api.metrics().record_success(self.payload as u64, latency);
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        self.issue_next(api, true);
    }

    fn retry(&mut self, api: &mut CoreApi<'_>) {
        // §7.2: "Upon a conflict detection, readers immediately retry
        // reading the same object again." (Or after the configured backoff.)
        api.metrics().record_retry();
        if self.backoff == Time::ZERO {
            self.issue_next(api, false);
        } else {
            self.state = ReaderState::Backoff;
            api.sleep(self.backoff);
        }
    }

    /// Relays Oh-RAM's confirm write — the "half round" that follows the
    /// query/response exchange. Fire-and-forget: the read is delivered
    /// before the ack comes back, so it never adds to read latency.
    fn confirm(&mut self, api: &mut CoreApi<'_>) {
        let buf = self.buf(api);
        let tag = tag_board_addr(api.config().memory_bytes as u64);
        let wq = api.issue_write(self.dst_node, tag, buf, 8);
        self.confirm_inflight.insert(wq);
    }
}

impl Workload for SyncReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.issue_next(api, true);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        if self.confirm_inflight.remove(&cq.wq_id) {
            return; // Oh-RAM confirm ack; the read already completed.
        }
        assert_eq!(self.state, ReaderState::AwaitTransfer);
        let transfer = api.now() - self.t0;
        api.metrics().record_phase(Phase::Transfer, transfer);
        match self.mech {
            ReadMechanism::Raw => self.success(api),
            // Wait-free register: the capture always delivers a consistent
            // published version — nothing to validate, nothing to retry.
            ReadMechanism::WfRegister { .. } => self.success(api),
            ReadMechanism::OhRam { .. } => {
                self.confirm(api);
                self.success(api);
            }
            ReadMechanism::Sabre => {
                if !cq.success {
                    self.retry(api);
                } else if self.consume {
                    self.state = ReaderState::AwaitConsume;
                    let t = api.cpu().read_time(self.payload as usize, DataSource::Llc);
                    api.metrics().record_phase(Phase::App, t);
                    api.sleep(t);
                } else {
                    self.success(api);
                }
            }
            ReadMechanism::PerClValidate { .. } => {
                self.state = ReaderState::AwaitStrip;
                let t = api.cpu().strip_time(self.wire() as usize);
                api.metrics().record_phase(Phase::Strip, t);
                api.sleep(t);
            }
            ReadMechanism::ChecksumValidate { payload } => {
                self.state = ReaderState::AwaitStrip;
                let t = api.cpu().crc_time(payload as usize);
                api.metrics().record_phase(Phase::Strip, t);
                api.sleep(t);
            }
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        match self.state {
            ReaderState::AwaitStrip => {
                let buf = self.buf(api);
                let image = api.read_local(buf, self.wire() as usize);
                let ok = match self.mech {
                    ReadMechanism::PerClValidate { payload } => {
                        PerClLayout::validate_and_strip(&image, payload as usize).is_ok()
                    }
                    ReadMechanism::ChecksumValidate { payload } => {
                        ChecksumLayout::validate(&image, payload as usize).is_ok()
                    }
                    _ => unreachable!("strip state only for software mechanisms"),
                };
                if ok {
                    self.success(api);
                } else {
                    self.retry(api);
                }
            }
            ReaderState::AwaitConsume => self.success(api),
            ReaderState::Backoff => self.issue_next(api, false),
            s => panic!("unexpected wake in state {s:?}"),
        }
    }
}

/// A reader keeping a window of asynchronous operations in flight
/// (Fig. 7b: peak-throughput measurement).
#[derive(Debug)]
pub struct AsyncReader {
    dst_node: u8,
    objects: Vec<Addr>,
    payload: u32,
    mech: ReadMechanism,
    window: usize,
    /// wq_id → (issue time, slot).
    inflight: std::collections::HashMap<u64, (Time, usize)>,
    buf_base: Option<Addr>,
}

impl AsyncReader {
    /// Creates a reader with `window` operations in flight at all times.
    ///
    /// # Panics
    ///
    /// Panics if the mechanism needs CPU post-processing (use
    /// [`SyncReader`] for those) or the window is zero.
    #[deprecated(note = "declare the reader with sabre_rack::spec().window(n) instead")]
    pub fn new(
        dst_node: u8,
        objects: Vec<Addr>,
        payload: u32,
        mech: ReadMechanism,
        window: usize,
    ) -> Self {
        AsyncReader::assemble(dst_node, objects, payload, mech, window)
    }

    /// The one true constructor, fed by `WorkloadSpec::build`; same
    /// panics as the deprecated [`AsyncReader::new`].
    pub(crate) fn assemble(
        dst_node: u8,
        objects: Vec<Addr>,
        payload: u32,
        mech: ReadMechanism,
        window: usize,
    ) -> Self {
        assert!(
            matches!(mech, ReadMechanism::Raw | ReadMechanism::Sabre),
            "AsyncReader models pure transfer throughput"
        );
        assert!(window > 0, "window must be positive");
        AsyncReader {
            dst_node,
            objects,
            payload,
            mech,
            window,
            inflight: std::collections::HashMap::new(),
            buf_base: None,
        }
    }

    fn slot_buf(&self, api: &CoreApi<'_>, slot: usize) -> Addr {
        let base = self.buf_base.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 512 * 1024)
        });
        base + (slot as u64) * ((self.mech.wire_bytes(self.payload) as u64).div_ceil(64) * 64)
    }

    fn issue_slot(&mut self, api: &mut CoreApi<'_>, slot: usize) {
        let obj = self.objects[api.rng().below(self.objects.len() as u64) as usize];
        let buf = self.slot_buf(api, slot);
        let wq_id = api.issue(
            self.mech.op(),
            self.dst_node,
            obj,
            buf,
            self.mech.wire_bytes(self.payload),
            0,
        );
        self.inflight.insert(wq_id, (api.now(), slot));
    }
}

impl Workload for AsyncReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        for slot in 0..self.window {
            self.issue_slot(api, slot);
        }
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        let (t0, slot) = self
            .inflight
            .remove(&cq.wq_id)
            .expect("completion for an operation we issued");
        if cq.success {
            let latency = api.now() - t0;
            api.metrics().record_success(self.payload as u64, latency);
        } else {
            api.metrics().record_retry();
        }
        self.issue_slot(api, slot);
    }
}

/// Which object layout a writer maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterLayout {
    /// Clean layout (SABRe experiments): header + contiguous payload.
    Clean,
    /// FaRM per-cache-line versions layout.
    PerCl,
    /// Pilaf-style checksummed layout: `[crc64 | version | payload]`.
    Checksum,
    /// Wait-free multi-version register: the writer fills the next slot in
    /// rotation, then flips the publish word — it never locks, so readers
    /// never wait and never abort.
    WfRegister,
}

impl WriterLayout {
    /// Address of the word the update protocol locks and publishes
    /// through. The checksummed layout keeps its version behind the CRC;
    /// everyone else leads with it.
    pub fn version_addr(self, base: Addr) -> Addr {
        match self {
            WriterLayout::Checksum => base + 8,
            _ => base,
        }
    }

    /// Whether an update begins by storing the locked (odd) version. The
    /// wait-free register never locks: the word at `base` is a *publish
    /// word* (`seq × slots + slot`), and writing in-place slots are
    /// invisible to readers until it flips.
    pub fn takes_lock(self) -> bool {
        !matches!(self, WriterLayout::WfRegister)
    }

    /// The word that publishes a finished update, given the version read
    /// at lock time.
    pub fn publish_word(self, locked_version: u64) -> u64 {
        match self {
            WriterLayout::WfRegister => {
                let (seq, slot) = WfRegisterLayout::unpack(locked_version);
                WfRegisterLayout::pack(seq + 1, (slot + 1) % WfRegisterLayout::SLOTS)
            }
            _ => locked_version + 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterPhase {
    Idle,
    /// Version word set odd; writing payload chunk `chunk` next.
    Writing {
        chunk: usize,
    },
    /// All data written; publish (even version) next.
    Publishing,
    /// Waiting for readers to drain (locking-mode experiments).
    SpinningOnReaders,
}

/// A local writer thread repeatedly updating its subset of objects
/// (Concurrent-Read-Exclusive-Write: each object has one writer).
///
/// One store (one cache block or less) is applied per
/// [`ClusterConfig::writer_store_interval`](crate::ClusterConfig), so a
/// racing remote reader observes genuinely torn intermediate states unless
/// an atomicity mechanism intervenes.
#[derive(Debug)]
pub struct Writer {
    objects: Vec<(u64, Addr)>,
    payload: u32,
    layout: WriterLayout,
    think: Time,
    /// Respect the shared reader-lock word before locking (destination-
    /// locking experiments).
    respect_reader_locks: bool,
    seq: u64,
    cur: usize,
    phase: WriterPhase,
    /// The (even) version read at lock time; the update publishes at +2.
    locked_version: u64,
    updates: u64,
}

impl Writer {
    /// Creates a writer owning `objects` (pairs of object id and base
    /// address, all local), updating them round-robin with `think` pause
    /// between updates.
    ///
    /// # Panics
    ///
    /// Panics if `objects` is empty.
    pub fn new(objects: Vec<(u64, Addr)>, payload: u32, layout: WriterLayout, think: Time) -> Self {
        assert!(!objects.is_empty(), "a writer needs at least one object");
        Writer {
            objects,
            payload,
            layout,
            think,
            respect_reader_locks: false,
            seq: 0,
            cur: 0,
            phase: WriterPhase::Idle,
            locked_version: 0,
            updates: 0,
        }
    }

    /// Makes the writer wait for the shared reader lock to drain before
    /// each update (destination-locking mode).
    pub fn respecting_reader_locks(mut self) -> Self {
        self.respect_reader_locks = true;
        self
    }

    /// Completed object updates.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    fn base(&self) -> Addr {
        self.objects[self.cur].1
    }

    fn obj_id(&self) -> u64 {
        self.objects[self.cur].0
    }

    /// The payload chunks of the current update, split on absolute cache
    /// block boundaries so each is a single store.
    fn chunks(&self) -> Vec<(Addr, Vec<u8>)> {
        update_chunks(
            self.layout,
            self.base(),
            self.obj_id(),
            self.seq,
            self.payload as usize,
            self.locked_version,
        )
    }
}

impl Writer {
    fn begin_update(&mut self, api: &mut CoreApi<'_>) {
        if self.respect_reader_locks {
            let rlock = api.read_local(self.base() + 8, 8);
            let readers = u64::from_le_bytes(rlock.try_into().expect("8 bytes"));
            if readers > 0 {
                self.phase = WriterPhase::SpinningOnReaders;
                api.sleep(Time::from_ns(10));
                return;
            }
        }
        let va = self.layout.version_addr(self.base());
        let v = VersionWord::new(u64::from_le_bytes(
            api.read_local(va, 8).try_into().expect("8 bytes"),
        ));
        self.locked_version = v.raw();
        if self.layout.takes_lock() {
            api.store_local_u64(va, v.locked().raw());
        }
        self.phase = WriterPhase::Writing { chunk: 0 };
        api.sleep(api.config().writer_store_interval);
    }
}

impl Workload for Writer {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.begin_update(api);
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        match self.phase {
            WriterPhase::Idle => self.begin_update(api),
            WriterPhase::SpinningOnReaders => self.begin_update(api),
            WriterPhase::Writing { chunk } => {
                let chunks = self.chunks();
                if chunk < chunks.len() {
                    let (addr, data) = &chunks[chunk];
                    api.store_local(*addr, data);
                    self.phase = WriterPhase::Writing { chunk: chunk + 1 };
                    api.sleep(api.config().writer_store_interval);
                } else {
                    self.phase = WriterPhase::Publishing;
                    api.sleep(Time::ZERO.max(api.config().writer_store_interval));
                }
            }
            WriterPhase::Publishing => {
                // Publish: even version + 2, or the next slot's publish
                // word for the wait-free register.
                api.store_local_u64(
                    self.layout.version_addr(self.base()),
                    self.layout.publish_word(self.locked_version),
                );
                self.updates += 1;
                self.seq += 1;
                self.cur = (self.cur + 1) % self.objects.len();
                self.phase = WriterPhase::Idle;
                api.sleep(self.think.max(api.config().writer_store_interval));
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockReaderState {
    Idle,
    AwaitCas,
    AwaitRead,
    Backoff,
}

/// A DrTM-style reader using *source-side remote locking* (Table 1,
/// top-left): a remote CAS acquires the object's write lock (one extra
/// network roundtrip), the data read follows, and the unlock is fired
/// asynchronously. Contended CAS retries after a short backoff.
#[derive(Debug)]
pub struct SourceLockingReader {
    dst_node: u8,
    objects: Vec<Addr>,
    payload: u32,
    local_buf: Option<Addr>,
    remaining: Option<u64>,
    backoff: Time,
    cur_obj: usize,
    t0: Time,
    state: LockReaderState,
}

impl SourceLockingReader {
    /// The one true constructor, fed by `WorkloadSpec::build`.
    pub(crate) fn assemble(
        dst_node: u8,
        objects: Vec<Addr>,
        payload: u32,
        local_buf: Option<Addr>,
        remaining: Option<u64>,
    ) -> Self {
        SourceLockingReader {
            dst_node,
            objects,
            payload,
            local_buf,
            remaining,
            backoff: Time::from_ns(200),
            cur_obj: 0,
            t0: Time::ZERO,
            state: LockReaderState::Idle,
        }
    }

    /// A locking reader that runs until the simulation ends.
    #[deprecated(note = "declare the reader with sabre_rack::spec().source_locking() instead")]
    pub fn endless(dst_node: u8, objects: Vec<Addr>, payload: u32) -> Self {
        SourceLockingReader::assemble(dst_node, objects, payload, None, None)
    }

    /// A locking reader performing exactly `n` successful reads.
    #[deprecated(note = "declare the reader with sabre_rack::spec().source_locking() instead")]
    pub fn iterations(dst_node: u8, objects: Vec<Addr>, payload: u32, n: u64) -> Self {
        SourceLockingReader::assemble(dst_node, objects, payload, None, Some(n))
    }

    fn wire(&self) -> u32 {
        CleanLayout::object_bytes(self.payload as usize) as u32
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        self.local_buf.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 256 * 1024)
        })
    }

    fn begin(&mut self, api: &mut CoreApi<'_>, new_object: bool) {
        if self.remaining == Some(0) {
            self.state = LockReaderState::Idle;
            return;
        }
        if new_object {
            self.cur_obj = api.rng().below(self.objects.len() as u64) as usize;
        }
        let buf = self.buf(api);
        self.t0 = api.now();
        // Roundtrip 1: acquire the remote lock with a one-sided CAS.
        api.issue(
            sabre_sonuma::OpKind::LockCas,
            self.dst_node,
            self.objects[self.cur_obj],
            buf,
            8,
            0,
        );
        self.state = LockReaderState::AwaitCas;
    }
}

impl Workload for SourceLockingReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.begin(api, true);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        // Dispatch on the operation type: the asynchronous unlock's ack can
        // arrive at any point of the *next* read's lifecycle.
        match cq.op {
            sabre_sonuma::OpKind::Unlock => {}
            sabre_sonuma::OpKind::LockCas => {
                assert_eq!(self.state, LockReaderState::AwaitCas);
                if !cq.success {
                    // Contended: back off, then retry the CAS.
                    api.metrics().record_retry();
                    self.state = LockReaderState::Backoff;
                    api.sleep(self.backoff);
                    return;
                }
                // Roundtrip 2: the data read, now race-free.
                let buf = self.buf(api);
                api.issue(
                    sabre_sonuma::OpKind::Read,
                    self.dst_node,
                    self.objects[self.cur_obj],
                    buf,
                    self.wire(),
                    0,
                );
                self.state = LockReaderState::AwaitRead;
            }
            sabre_sonuma::OpKind::Read => {
                assert_eq!(self.state, LockReaderState::AwaitRead);
                // Fire the unlock without waiting for it.
                let buf = self.buf(api);
                api.issue(
                    sabre_sonuma::OpKind::Unlock,
                    self.dst_node,
                    self.objects[self.cur_obj],
                    buf,
                    8,
                    0,
                );
                let latency = api.now() - self.t0;
                api.metrics().record_success(self.payload as u64, latency);
                if let Some(n) = &mut self.remaining {
                    *n -= 1;
                }
                self.begin(api, true);
            }
            op => panic!("unexpected completion op {op:?}"),
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        assert_eq!(self.state, LockReaderState::Backoff);
        self.begin(api, false);
    }
}

/// What a pending [`FailoverReader`] wake means: the failover timer armed
/// for one specific attempt (identified by its `wq_id`, so a timer that
/// outlives its attempt is recognized as stale and ignored), or a service
/// sleep (strip/consume/backoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FailoverWake {
    Timeout(u64),
    Service,
}

/// Successful operations between replica probes: after this many, a
/// migrating reader re-tries the most-preferred suspected replica to
/// detect recovery (costing at most one timeout if it is still down).
const PROBE_EVERY: u64 = 64;

/// Completed operations the load-triggered re-placement window averages
/// hop counts over (see [`FailoverReader`]): long enough to smooth a
/// single far-replica excursion, short enough to react within ~a hundred
/// operations.
const REPLACE_WINDOW: usize = 32;

/// A closed-loop reader over a *replicated* object: the same object image
/// lives on several store nodes, and the reader fails over between them.
///
/// Every attempt arms a failover timer
/// ([`WorkloadSpec::failover_timeout`](crate::spec::WorkloadSpec::failover_timeout)).
/// A one-sided read whose
/// packets a [`FaultPlan`](crate::FaultPlan) dropped never completes; when
/// the timer fires first, the reader abandons the attempt, counts a
/// [`failover`](crate::CoreMetrics::failovers), and re-issues the *same*
/// object at the next replica. Completions of abandoned attempts (a
/// false timeout under load) are matched by `wq_id` and discarded.
///
/// Two replica-selection policies, compared by the `fig_failover`
/// experiment:
///
/// * **Static round-robin** (`migrate = false`): each new operation starts
///   at the next replica in rotation, with no memory of past failures —
///   during an outage every k-th operation eats a timeout.
/// * **Adaptive** (`migrate = true`): the reader *binds* to the most
///   preferred (nearest) replica, re-binds to the next live one on
///   failure (a [`migration`](crate::CoreMetrics::migrations)), and every
///   `PROBE_EVERY` (64) successes probes a suspected more-preferred replica
///   so it migrates back after recovery.
///
/// Two recovery-era behaviours layer on top:
///
/// * **Refusals**: a replica that is catching up after an outage answers
///   with [`ReadRefused`](sabre_sonuma::PacketKind::ReadRefused) instead
///   of data. The reader counts a
///   [`stale_refusal`](crate::CoreMetrics::stale_refusals), suspects the
///   replica exactly as if a timeout had fired (it will keep refusing
///   until caught up), and re-issues the same object at the next replica
///   — a fast round-trip rather than a burned timeout.
/// * **Load-triggered re-placement** (`replace_hops = Some(threshold)`,
///   adaptive mode only): the reader tracks the mean routed hop count of
///   its last `REPLACE_WINDOW` completed operations. When the window is
///   warm and the mean crosses the threshold — the binding has drifted to
///   a far replica — it immediately probes the most-preferred suspected
///   replica instead of waiting out the `PROBE_EVERY` counter, so the
///   binding snaps back as soon as the near replica recovers.
///
/// Unlike [`SyncReader`], latency is measured across the whole operation
/// — failover timeouts and atomicity retries included — which is what
/// makes the p99-under-crashes comparison meaningful.
#[derive(Debug)]
pub struct FailoverReader {
    /// `(store node, object addresses)` in preference order; index `i`
    /// of every address vector names the same logical object.
    replicas: Vec<(u8, Vec<Addr>)>,
    payload: u32,
    mech: ReadMechanism,
    local_buf: Option<Addr>,
    remaining: Option<u64>,
    consume: bool,
    backoff: Time,
    wire_override: Option<u32>,
    timeout: Time,
    migrate: bool,
    replace_hops: Option<f64>,
    // Runtime state.
    suspected: Vec<bool>,
    /// Hop counts of the last [`REPLACE_WINDOW`] completed operations.
    hop_window: VecDeque<u64>,
    /// Adaptive mode's current binding (preference index).
    bound: usize,
    /// Static mode's round-robin cursor.
    rr: u64,
    cur_obj: usize,
    cur_replica: usize,
    /// `wq_id` of the live attempt; `None` once completed or abandoned.
    inflight: Option<u64>,
    /// Operation start — kept across failovers and retries.
    t0: Time,
    t_issue: Time,
    successes_since_probe: u64,
    state: ReaderState,
    wakes: BinaryHeap<Reverse<(Time, u64, FailoverWake)>>,
    wake_seq: u64,
}

impl FailoverReader {
    /// Builds the reader from spec fields; see `WorkloadSpec::build`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty, the replicas disagree on object
    /// count, the object set is empty, or the timeout is zero.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        replicas: Vec<(u8, Vec<Addr>)>,
        payload: u32,
        mech: ReadMechanism,
        local_buf: Option<Addr>,
        remaining: Option<u64>,
        consume: bool,
        backoff: Time,
        wire_override: Option<u32>,
        timeout: Time,
        migrate: bool,
        replace_hops: Option<f64>,
    ) -> Self {
        assert!(!replicas.is_empty(), "a failover reader needs replicas");
        let objects = replicas[0].1.len();
        assert!(objects > 0, "a failover reader needs objects");
        assert!(
            replicas.iter().all(|(_, addrs)| addrs.len() == objects),
            "every replica must hold every object"
        );
        assert!(timeout > Time::ZERO, "failover timeout must be positive");
        let k = replicas.len();
        FailoverReader {
            replicas,
            payload,
            mech,
            local_buf,
            remaining,
            consume,
            backoff,
            wire_override,
            timeout,
            migrate,
            replace_hops,
            suspected: vec![false; k],
            hop_window: VecDeque::with_capacity(REPLACE_WINDOW),
            bound: 0,
            rr: 0,
            cur_obj: 0,
            cur_replica: 0,
            inflight: None,
            t0: Time::ZERO,
            t_issue: Time::ZERO,
            successes_since_probe: 0,
            state: ReaderState::Idle,
            wakes: BinaryHeap::new(),
            wake_seq: 0,
        }
    }

    fn wire(&self) -> u32 {
        self.wire_override
            .unwrap_or_else(|| self.mech.wire_bytes(self.payload))
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        self.local_buf.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 256 * 1024)
        })
    }

    /// Sleeps for `d` and remembers what the wake will mean.
    fn sleep_kind(&mut self, api: &mut CoreApi<'_>, d: Time, kind: FailoverWake) {
        let due = api.now() + d;
        self.wakes.push(Reverse((due, self.wake_seq, kind)));
        self.wake_seq += 1;
        api.sleep(d);
    }

    /// Starts the next operation: fresh object, fresh latency baseline,
    /// policy-chosen starting replica.
    fn issue_next(&mut self, api: &mut CoreApi<'_>) {
        if self.remaining == Some(0) {
            self.state = ReaderState::Idle;
            return;
        }
        let objects = self.replicas[0].1.len() as u64;
        self.cur_obj = api.rng().below(objects) as usize;
        self.cur_replica = if self.migrate {
            self.bound
        } else {
            let r = (self.rr % self.replicas.len() as u64) as usize;
            self.rr += 1;
            r
        };
        self.t0 = api.now();
        self.issue_attempt(api);
    }

    /// (Re-)issues the current object at `cur_replica` and arms the
    /// failover timer for this attempt.
    fn issue_attempt(&mut self, api: &mut CoreApi<'_>) {
        let (node, ref addrs) = self.replicas[self.cur_replica];
        let addr = addrs[self.cur_obj];
        let buf = self.buf(api);
        self.t_issue = api.now();
        let wq_id = api.issue(self.mech.op(), node, addr, buf, self.wire(), 0);
        self.inflight = Some(wq_id);
        let timeout = self.timeout;
        self.sleep_kind(api, timeout, FailoverWake::Timeout(wq_id));
        self.state = ReaderState::AwaitTransfer;
    }

    /// The failover timer of the live attempt fired: suspect the replica,
    /// move to the next one, re-issue the same object.
    fn failover(&mut self, api: &mut CoreApi<'_>) {
        self.inflight = None;
        api.metrics().record_failover();
        self.advance_replica(api);
    }

    /// The live attempt was refused — the replica is catching up after an
    /// outage. Cheaper than a timeout (one fast round-trip) but handled
    /// identically for replica selection: a catching-up replica keeps
    /// refusing until it converges, so suspect it and move on.
    fn refused(&mut self, api: &mut CoreApi<'_>) {
        self.inflight = None;
        api.metrics().record_stale_refusal();
        self.advance_replica(api);
    }

    /// Suspects the current replica, picks the next one under the active
    /// policy, and re-issues the same object there.
    fn advance_replica(&mut self, api: &mut CoreApi<'_>) {
        self.suspected[self.cur_replica] = true;
        let k = self.replicas.len();
        let next = if self.migrate {
            match (0..k).find(|&i| !self.suspected[i]) {
                Some(i) => i,
                None => {
                    // Everything looks dead: forget the suspicions and
                    // cycle, so recovery is always eventually observed.
                    self.suspected.fill(false);
                    (self.cur_replica + 1) % k
                }
            }
        } else {
            (self.cur_replica + 1) % k
        };
        if self.migrate && next != self.bound {
            self.bound = next;
            api.metrics().record_migration();
        }
        self.cur_replica = next;
        self.issue_attempt(api);
    }

    /// Routed hops from this reader to the replica that served the
    /// completed operation (0 when co-located).
    fn hops_to_current(&self, api: &CoreApi<'_>) -> u64 {
        let dst = self.replicas[self.cur_replica].0 as usize;
        let src = api.node();
        if src == dst {
            0
        } else {
            api.config().fabric.topology.hops(src, dst)
        }
    }

    /// Re-binds to the most-preferred suspected replica, clearing its
    /// suspicion — the shared body of the periodic probe and the
    /// hop-triggered re-placement. Returns whether a probe happened.
    fn probe_preferred(&mut self, api: &mut CoreApi<'_>) -> bool {
        if let Some(i) = (0..self.bound).find(|&i| self.suspected[i]) {
            self.suspected[i] = false;
            self.bound = i;
            api.metrics().record_migration();
            self.hop_window.clear();
            true
        } else {
            false
        }
    }

    fn success(&mut self, api: &mut CoreApi<'_>) {
        let latency = api.now() - self.t0;
        api.metrics().record_success(self.payload as u64, latency);
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        if self.migrate {
            self.successes_since_probe += 1;
            if self.successes_since_probe >= PROBE_EVERY {
                self.successes_since_probe = 0;
                // Probe: re-bind to the most preferred suspected replica,
                // if it beats the current binding. Still down → one
                // timeout and the next failover rebinds.
                self.probe_preferred(api);
            }
            if let Some(threshold) = self.replace_hops {
                // Load-triggered re-placement: a warm window whose mean
                // hop count crossed the threshold means the binding
                // drifted to a far replica — probe back immediately.
                if self.hop_window.len() == REPLACE_WINDOW {
                    self.hop_window.pop_front();
                }
                self.hop_window.push_back(self.hops_to_current(api));
                if self.hop_window.len() == REPLACE_WINDOW {
                    let mean =
                        self.hop_window.iter().sum::<u64>() as f64 / self.hop_window.len() as f64;
                    if mean >= threshold {
                        self.probe_preferred(api);
                    }
                }
            }
        }
        self.issue_next(api);
    }

    /// Atomicity conflict: retry the same object at the same replica.
    fn retry(&mut self, api: &mut CoreApi<'_>) {
        api.metrics().record_retry();
        if self.backoff == Time::ZERO {
            self.issue_attempt(api);
        } else {
            self.state = ReaderState::Backoff;
            let backoff = self.backoff;
            self.sleep_kind(api, backoff, FailoverWake::Service);
        }
    }
}

impl Workload for FailoverReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.issue_next(api);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        if self.inflight != Some(cq.wq_id) {
            return; // Late completion of an attempt we already abandoned.
        }
        self.inflight = None;
        assert_eq!(self.state, ReaderState::AwaitTransfer);
        if cq.refused {
            self.refused(api);
            return;
        }
        let transfer = api.now() - self.t_issue;
        api.metrics().record_phase(Phase::Transfer, transfer);
        match self.mech {
            ReadMechanism::Raw => self.success(api),
            ReadMechanism::WfRegister { .. } => self.success(api),
            ReadMechanism::OhRam { .. } => {
                // Relay the confirm write to the replica that answered;
                // its ack is discarded by the `inflight` filter above.
                let node = self.replicas[self.cur_replica].0;
                let buf = self.buf(api);
                let tag = tag_board_addr(api.config().memory_bytes as u64);
                api.issue_write(node, tag, buf, 8);
                self.success(api);
            }
            ReadMechanism::Sabre => {
                if !cq.success {
                    self.retry(api);
                } else if self.consume {
                    self.state = ReaderState::AwaitConsume;
                    let t = api.cpu().read_time(self.payload as usize, DataSource::Llc);
                    api.metrics().record_phase(Phase::App, t);
                    self.sleep_kind(api, t, FailoverWake::Service);
                } else {
                    self.success(api);
                }
            }
            ReadMechanism::PerClValidate { .. } => {
                self.state = ReaderState::AwaitStrip;
                let t = api.cpu().strip_time(self.wire() as usize);
                api.metrics().record_phase(Phase::Strip, t);
                self.sleep_kind(api, t, FailoverWake::Service);
            }
            ReadMechanism::ChecksumValidate { payload } => {
                self.state = ReaderState::AwaitStrip;
                let t = api.cpu().crc_time(payload as usize);
                api.metrics().record_phase(Phase::Strip, t);
                self.sleep_kind(api, t, FailoverWake::Service);
            }
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        let Reverse((due, _seq, kind)) = self
            .wakes
            .pop()
            .expect("a wake implies a pending sleep we recorded");
        debug_assert_eq!(due, api.now(), "wakes deliver in schedule order");
        match kind {
            FailoverWake::Timeout(wq_id) => {
                if self.inflight == Some(wq_id) {
                    self.failover(api);
                }
                // Else: the attempt completed before its timer; stale.
            }
            FailoverWake::Service => match self.state {
                ReaderState::AwaitStrip => {
                    let buf = self.buf(api);
                    let image = api.read_local(buf, self.wire() as usize);
                    let ok = match self.mech {
                        ReadMechanism::PerClValidate { payload } => {
                            PerClLayout::validate_and_strip(&image, payload as usize).is_ok()
                        }
                        ReadMechanism::ChecksumValidate { payload } => {
                            ChecksumLayout::validate(&image, payload as usize).is_ok()
                        }
                        _ => unreachable!("strip state only for software mechanisms"),
                    };
                    if ok {
                        self.success(api);
                    } else {
                        self.retry(api);
                    }
                }
                ReaderState::AwaitConsume => self.success(api),
                ReaderState::Backoff => self.issue_attempt(api),
                s => panic!("unexpected service wake in state {s:?}"),
            },
        }
    }
}

/// Stream ids for [`TrafficReader`]'s forked RNGs. Forks are
/// consumption-insensitive, so the arrival-time stream is identical across
/// mechanisms and object-choice patterns (and vice versa).
const ARRIVAL_STREAM: u64 = 0x5452_4146_4152_5256; // "TRAFARRV"
const CHOICE_STREAM: u64 = 0x5452_4146_4348_4F49; // "TRAFCHOI"

/// What a pending [`TrafficReader`] wake means. The reader can have an
/// arrival timer and a service sleep (strip/consume/backoff) outstanding
/// at once; a local min-heap keyed by `(due, seq, kind)` disambiguates
/// them, relying on the node event queue's FIFO-within-timestamp order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum WakeKind {
    Arrival,
    Service,
}

/// The generalized production-traffic reader: any [`Arrivals`] process ×
/// any [`Popularity`] model × a read/write mix, over any
/// [`ReadMechanism`].
///
/// Differences from the closed-loop [`SyncReader`]:
///
/// * Under open-loop arrivals, **latency is measured from the arrival**,
///   not from the issue — queueing delay behind an in-flight operation
///   and atomicity-retry time are both part of the reported latency, which
///   is what makes offered-load tail-latency sweeps meaningful.
/// * Arrivals that fire while an operation is in flight are queued
///   ([`CoreMetrics::record_queued`](crate::CoreMetrics::record_queued));
///   queued operations start the instant the previous one completes.
/// * Object choice and arrival timing draw from *forked* RNG streams, so
///   arrival times are bit-identical across mechanisms and the choice
///   sequence is independent of the arrival process.
///
/// Built via `WorkloadSpec::build` (crate::spec::WorkloadSpec) when the
/// spec asks for anything beyond the classic closed-loop uniform
/// read-only shape.
#[derive(Debug)]
pub struct TrafficReader {
    dst_node: u8,
    objects: Vec<Addr>,
    payload: u32,
    mech: ReadMechanism,
    arrivals: Arrivals,
    popularity: Popularity,
    read_fraction: f64,
    local_buf: Option<Addr>,
    remaining: Option<u64>,
    consume: bool,
    backoff: Time,
    wire_override: Option<u32>,
    /// Outstanding Oh-RAM confirm writes (fire-and-forget; completions are
    /// matched by `wq_id` and discarded).
    confirm_inflight: HashSet<u64>,
    // Runtime state, inert until `on_start`.
    choice_rng: Option<SimRng>,
    arrival_rng: Option<SimRng>,
    zipf: Option<Zipf>,
    start: Time,
    /// Accumulated *active* time consumed by on/off arrivals, in ps; the
    /// wall-clock mapping skips the off windows (integer arithmetic, so
    /// the schedule is exact and replayable).
    active_ps: u64,
    /// Arrival timestamps waiting behind the in-flight operation.
    backlog: VecDeque<Time>,
    busy: bool,
    cur_obj: usize,
    cur_write: bool,
    /// Arrival time of the in-flight operation — the latency baseline.
    t_arrival: Time,
    /// Issue time of the current attempt — the transfer-phase baseline.
    t_issue: Time,
    state: ReaderState,
    wakes: BinaryHeap<Reverse<(Time, u64, WakeKind)>>,
    wake_seq: u64,
}

impl TrafficReader {
    /// Builds the reader from spec fields; see `WorkloadSpec::build`.
    ///
    /// # Panics
    ///
    /// Panics on an empty object set, a non-positive/non-finite arrival
    /// rate, a zero-length on-window, or a hot-set fraction outside
    /// `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_spec(
        dst_node: u8,
        objects: Vec<Addr>,
        payload: u32,
        mech: ReadMechanism,
        arrivals: Arrivals,
        popularity: Popularity,
        read_fraction: f64,
        local_buf: Option<Addr>,
        remaining: Option<u64>,
        consume: bool,
        backoff: Time,
        wire_override: Option<u32>,
    ) -> Self {
        assert!(!objects.is_empty(), "a traffic reader needs objects");
        match arrivals {
            Arrivals::Closed => {}
            Arrivals::Poisson { ops_per_us } => {
                assert!(
                    ops_per_us.is_finite() && ops_per_us > 0.0,
                    "Poisson rate must be positive and finite, got {ops_per_us}"
                );
            }
            Arrivals::OnOff { on, ops_per_us, .. } => {
                assert!(
                    ops_per_us.is_finite() && ops_per_us > 0.0,
                    "on/off rate must be positive and finite, got {ops_per_us}"
                );
                assert!(on > Time::ZERO, "on-window must be non-empty");
            }
        }
        if let Popularity::HotSet { fraction, .. } = popularity {
            assert!(
                (0.0..=1.0).contains(&fraction),
                "hot-set fraction must be in [0, 1], got {fraction}"
            );
        }
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction must be in [0, 1], got {read_fraction}"
        );
        TrafficReader {
            dst_node,
            objects,
            payload,
            mech,
            arrivals,
            popularity,
            read_fraction,
            local_buf,
            remaining,
            consume,
            backoff,
            wire_override,
            confirm_inflight: HashSet::new(),
            choice_rng: None,
            arrival_rng: None,
            zipf: None,
            start: Time::ZERO,
            active_ps: 0,
            backlog: VecDeque::new(),
            busy: false,
            cur_obj: 0,
            cur_write: false,
            t_arrival: Time::ZERO,
            t_issue: Time::ZERO,
            state: ReaderState::Idle,
            wakes: BinaryHeap::new(),
            wake_seq: 0,
        }
    }

    fn read_wire(&self) -> u32 {
        self.wire_override
            .unwrap_or_else(|| self.mech.wire_bytes(self.payload))
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        self.local_buf.unwrap_or_else(|| {
            let half = api.config().memory_bytes as u64 / 2;
            Addr::new(half + api.core() as u64 * 256 * 1024)
        })
    }

    /// Sleeps for `d` and remembers what the wake will mean.
    fn sleep_kind(&mut self, api: &mut CoreApi<'_>, d: Time, kind: WakeKind) {
        let due = api.now() + d;
        self.wakes.push(Reverse((due, self.wake_seq, kind)));
        self.wake_seq += 1;
        api.sleep(d);
    }

    /// Draws the next inter-arrival gap and schedules the arrival timer.
    fn schedule_next_arrival(&mut self, api: &mut CoreApi<'_>) {
        let rate = match self.arrivals {
            Arrivals::Closed => unreachable!("closed loops have no arrival timer"),
            Arrivals::Poisson { ops_per_us } | Arrivals::OnOff { ops_per_us, .. } => ops_per_us,
        };
        let mean_ns = 1000.0 / rate;
        let u = self
            .arrival_rng
            .as_mut()
            .expect("on_start forked the arrival stream")
            .unit();
        // Inverse-CDF exponential; u in [0, 1) keeps the log argument in
        // (0, 1], so the gap is finite and non-negative.
        let gap = Time::from_ns_f64(-(1.0 - u).ln() * mean_ns);
        match self.arrivals {
            Arrivals::Closed => unreachable!(),
            Arrivals::Poisson { .. } => self.sleep_kind(api, gap, WakeKind::Arrival),
            Arrivals::OnOff { on, off, .. } => {
                // The exponential clock ticks in *active* time; map the
                // accumulated active time onto wall time by skipping the
                // off windows. Monotone in active_ps, so due >= now.
                self.active_ps += gap.as_ps();
                let on_ps = on.as_ps();
                let off_ps = off.as_ps();
                let wall = self.start.as_ps()
                    + (self.active_ps / on_ps) * (on_ps + off_ps)
                    + self.active_ps % on_ps;
                let d = Time::from_ps(wall).saturating_sub(api.now());
                self.sleep_kind(api, d, WakeKind::Arrival);
            }
        }
    }

    /// One arrival fired: start the operation or queue it behind the one
    /// in flight, then arm the next timer.
    fn on_arrival(&mut self, api: &mut CoreApi<'_>) {
        if self.remaining == Some(0) {
            return; // Quota met; let the arrival process wind down.
        }
        self.schedule_next_arrival(api);
        let now = api.now();
        if self.busy {
            self.backlog.push_back(now);
            let depth = self.backlog.len() as u64;
            api.metrics().record_queued(depth);
        } else {
            self.start_op(api, now);
        }
    }

    /// Picks the next object and operation type from the choice stream.
    fn choose(&mut self, _api: &mut CoreApi<'_>) {
        let n = self.objects.len() as u64;
        let rng = self
            .choice_rng
            .as_mut()
            .expect("on_start forked the choice stream");
        let idx = match self.popularity {
            Popularity::Uniform => rng.below(n),
            Popularity::Zipf { .. } => {
                // Rank 1 is the hottest; map it to object 0.
                self.zipf
                    .as_ref()
                    .expect("on_start built the sampler")
                    .sample(rng)
                    - 1
            }
            Popularity::HotSet { hot, fraction } => {
                let hot = hot.min(n);
                if hot == 0 || hot == n {
                    rng.below(n)
                } else if rng.chance(fraction) {
                    rng.below(hot)
                } else {
                    hot + rng.below(n - hot)
                }
            }
        };
        self.cur_obj = idx as usize;
        self.cur_write = if self.read_fraction >= 1.0 {
            false
        } else if self.read_fraction <= 0.0 {
            true
        } else {
            !rng.chance(self.read_fraction)
        };
    }

    fn start_op(&mut self, api: &mut CoreApi<'_>, t_arrival: Time) {
        self.busy = true;
        self.t_arrival = t_arrival;
        self.choose(api);
        self.issue_op(api);
    }

    /// (Re-)issues the current operation; retries keep the same object
    /// and direction.
    fn issue_op(&mut self, api: &mut CoreApi<'_>) {
        let buf = self.buf(api);
        self.t_issue = api.now();
        if self.cur_write {
            // One-sided write of the payload image from the local buffer.
            api.issue_write(self.dst_node, self.objects[self.cur_obj], buf, self.payload);
        } else {
            api.issue(
                self.mech.op(),
                self.dst_node,
                self.objects[self.cur_obj],
                buf,
                self.read_wire(),
                0,
            );
        }
        self.state = ReaderState::AwaitTransfer;
    }

    fn success(&mut self, api: &mut CoreApi<'_>) {
        let latency = api.now() - self.t_arrival;
        api.metrics().record_success(self.payload as u64, latency);
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        self.busy = false;
        self.state = ReaderState::Idle;
        if self.remaining == Some(0) {
            self.backlog.clear();
            return;
        }
        match self.arrivals {
            Arrivals::Closed => {
                let now = api.now();
                self.start_op(api, now);
            }
            _ => {
                if let Some(t) = self.backlog.pop_front() {
                    self.start_op(api, t);
                }
            }
        }
    }

    fn retry(&mut self, api: &mut CoreApi<'_>) {
        api.metrics().record_retry();
        if self.backoff == Time::ZERO {
            self.issue_op(api);
        } else {
            self.state = ReaderState::Backoff;
            self.sleep_kind(api, self.backoff, WakeKind::Service);
        }
    }
}

impl Workload for TrafficReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.choice_rng = Some(api.rng().fork(CHOICE_STREAM));
        self.arrival_rng = Some(api.rng().fork(ARRIVAL_STREAM));
        if let Popularity::Zipf { exponent } = self.popularity {
            self.zipf = Some(Zipf::new(self.objects.len() as u64, exponent));
        }
        self.start = api.now();
        match self.arrivals {
            Arrivals::Closed => {
                let now = api.now();
                self.start_op(api, now);
            }
            _ => self.schedule_next_arrival(api),
        }
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        if self.confirm_inflight.remove(&cq.wq_id) {
            return; // Oh-RAM confirm ack; the read already completed.
        }
        assert_eq!(self.state, ReaderState::AwaitTransfer);
        let transfer = api.now() - self.t_issue;
        api.metrics().record_phase(Phase::Transfer, transfer);
        if self.cur_write {
            if cq.success {
                self.success(api);
            } else {
                self.retry(api);
            }
            return;
        }
        match self.mech {
            ReadMechanism::Raw => self.success(api),
            ReadMechanism::WfRegister { .. } => self.success(api),
            ReadMechanism::OhRam { .. } => {
                let buf = self.buf(api);
                let tag = tag_board_addr(api.config().memory_bytes as u64);
                let wq = api.issue_write(self.dst_node, tag, buf, 8);
                self.confirm_inflight.insert(wq);
                self.success(api);
            }
            ReadMechanism::Sabre => {
                if !cq.success {
                    self.retry(api);
                } else if self.consume {
                    self.state = ReaderState::AwaitConsume;
                    let t = api.cpu().read_time(self.payload as usize, DataSource::Llc);
                    api.metrics().record_phase(Phase::App, t);
                    self.sleep_kind(api, t, WakeKind::Service);
                } else {
                    self.success(api);
                }
            }
            ReadMechanism::PerClValidate { .. } => {
                self.state = ReaderState::AwaitStrip;
                let t = api.cpu().strip_time(self.read_wire() as usize);
                api.metrics().record_phase(Phase::Strip, t);
                self.sleep_kind(api, t, WakeKind::Service);
            }
            ReadMechanism::ChecksumValidate { payload } => {
                self.state = ReaderState::AwaitStrip;
                let t = api.cpu().crc_time(payload as usize);
                api.metrics().record_phase(Phase::Strip, t);
                self.sleep_kind(api, t, WakeKind::Service);
            }
        }
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        let Reverse((due, _seq, kind)) = self
            .wakes
            .pop()
            .expect("a wake implies a pending sleep we recorded");
        debug_assert_eq!(due, api.now(), "wakes deliver in schedule order");
        match kind {
            WakeKind::Arrival => self.on_arrival(api),
            WakeKind::Service => match self.state {
                ReaderState::AwaitStrip => {
                    let buf = self.buf(api);
                    let image = api.read_local(buf, self.read_wire() as usize);
                    let ok = match self.mech {
                        ReadMechanism::PerClValidate { payload } => {
                            PerClLayout::validate_and_strip(&image, payload as usize).is_ok()
                        }
                        ReadMechanism::ChecksumValidate { payload } => {
                            ChecksumLayout::validate(&image, payload as usize).is_ok()
                        }
                        _ => unreachable!("strip state only for software mechanisms"),
                    };
                    if ok {
                        self.success(api);
                    } else {
                        self.retry(api);
                    }
                }
                ReaderState::AwaitConsume => self.success(api),
                ReaderState::Backoff => self.issue_op(api),
                s => panic!("unexpected service wake in state {s:?}"),
            },
        }
    }
}
