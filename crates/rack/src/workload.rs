//! The workload-program interface: what simulated cores run.
//!
//! A [`Workload`] is an event-driven program pinned to one core. The
//! cluster calls its hooks; the workload reacts through the [`CoreApi`] —
//! issuing one-sided operations, sleeping to model CPU work (costs come
//! from the [`sabre_sw::CpuCostModel`]), touching local memory, and
//! recording metrics.

pub use crate::cluster::CoreApi;

use sabre_sonuma::{CqEntry, OpKind};
use sabre_sw::layout::PerClLayout;
use sabre_sw::ChecksumLayout;

/// How a reader achieves (or forgoes) atomicity — the mechanisms the
/// paper's evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMechanism {
    /// Plain one-sided read with no object atomicity (the Fig. 7 "remote
    /// reads" curve).
    Raw,
    /// Hardware SABRe (LightSABRes at the destination).
    Sabre,
    /// FaRM-style software OCC: read the per-CL-versions image, then
    /// validate + strip on the CPU. `payload` is the clean object size.
    PerClValidate {
        /// Clean payload bytes of the object.
        payload: u32,
    },
    /// Pilaf-style software OCC: read the checksummed image, then recompute
    /// the CRC64 on the CPU.
    ChecksumValidate {
        /// Clean payload bytes of the object.
        payload: u32,
    },
    /// The wait-free multi-version register (Ianni et al.): the store
    /// serves the published version slot via a server-side capture, so the
    /// reader never aborts — zero retries by construction.
    WfRegister {
        /// Clean payload bytes of the object.
        payload: u32,
    },
    /// Oh-RAM's one-and-a-half-round read (Hadjistasi et al.): the store
    /// serves a consistent snapshot under server-side OCC (no locking);
    /// the reader relays a confirm write before the next read but delivers
    /// immediately — 1.5 rounds instead of SABRes' effective two.
    OhRam {
        /// Clean payload bytes of the object.
        payload: u32,
    },
}

impl ReadMechanism {
    /// The one-sided operation type this mechanism issues.
    pub fn op(self) -> OpKind {
        match self {
            ReadMechanism::Sabre => OpKind::Sabre,
            ReadMechanism::WfRegister { .. } => OpKind::WfRead,
            ReadMechanism::OhRam { .. } => OpKind::OhRead,
            _ => OpKind::Read,
        }
    }

    /// Bytes that must be transferred to read one object of `payload`
    /// useful bytes under this mechanism. Raw reads and SABRes move exactly
    /// the requested bytes (the microbenchmark's objects carry their
    /// version word inside the payload, at offset 0); the software layouts
    /// move their embedded metadata too. Store-backed readers override
    /// this with the store's exact footprint.
    pub fn wire_bytes(self, payload: u32) -> u32 {
        match self {
            ReadMechanism::Raw | ReadMechanism::Sabre => payload,
            ReadMechanism::PerClValidate { .. } => PerClLayout::wire_bytes(payload as usize) as u32,
            ReadMechanism::ChecksumValidate { .. } => {
                ChecksumLayout::object_bytes(payload as usize) as u32
            }
            ReadMechanism::WfRegister { .. } => {
                sabre_sw::WfRegisterLayout::wire_bytes(payload as usize) as u32
            }
            // Oh-RAM reads run over clean-layout objects: header + payload.
            ReadMechanism::OhRam { .. } => {
                sabre_sw::layout::CleanLayout::object_bytes(payload as usize) as u32
            }
        }
    }
}

/// An event-driven program running on one simulated core.
///
/// All hooks receive a [`CoreApi`] scoped to the program's core. Hooks are
/// never re-entered: each runs to completion before the next event fires.
///
/// Workloads must be [`Send`]: the cluster's sharded event loop may drive
/// different shards from different OS worker threads (still never
/// re-entering a hook, and still bit-deterministic — see
/// [`crate::cluster`]). State shared *between* workloads therefore uses
/// `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>`; state owned by one
/// workload needs no synchronization at all.
pub trait Workload: Send {
    /// Called once when the simulation starts.
    fn on_start(&mut self, api: &mut CoreApi<'_>);

    /// Called when a [`CoreApi::sleep`] expires.
    fn on_wake(&mut self, _api: &mut CoreApi<'_>) {}

    /// Called when a one-sided operation issued by this core completes
    /// (its CQ entry is observed).
    fn on_completion(&mut self, _api: &mut CoreApi<'_>, _cq: CqEntry) {}

    /// Called when an RPC request addressed to this core arrives.
    fn on_rpc(
        &mut self,
        _api: &mut CoreApi<'_>,
        _src_node: u8,
        _src_core: u8,
        _tag: u64,
        _bytes: u32,
    ) {
    }

    /// Called when a reply to an RPC this core sent arrives.
    fn on_rpc_reply(&mut self, _api: &mut CoreApi<'_>, _tag: u64, _bytes: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_per_mechanism() {
        assert_eq!(ReadMechanism::Raw.wire_bytes(8192), 8192);
        // Microbenchmark SABRes move exactly the requested bytes.
        assert_eq!(ReadMechanism::Sabre.wire_bytes(8192), 8192);
        // Per-CL: 147 lines.
        assert_eq!(
            ReadMechanism::PerClValidate { payload: 8192 }.wire_bytes(8192),
            9408
        );
        assert_eq!(
            ReadMechanism::ChecksumValidate { payload: 48 }.wire_bytes(48),
            64
        );
    }

    #[test]
    fn op_kinds() {
        assert_eq!(ReadMechanism::Sabre.op(), OpKind::Sabre);
        assert_eq!(ReadMechanism::Raw.op(), OpKind::Read);
        assert_eq!(
            ReadMechanism::PerClValidate { payload: 64 }.op(),
            OpKind::Read
        );
        assert_eq!(
            ReadMechanism::WfRegister { payload: 64 }.op(),
            OpKind::WfRead
        );
        assert_eq!(ReadMechanism::OhRam { payload: 64 }.op(), OpKind::OhRead);
    }

    #[test]
    fn captured_read_wire_sizes() {
        // WfRegister: header block + one block-rounded slot.
        assert_eq!(
            ReadMechanism::WfRegister { payload: 1024 }.wire_bytes(1024),
            64 + 1088
        );
        // Oh-RAM: the clean object (16 B header + payload, block-rounded).
        assert_eq!(
            ReadMechanism::OhRam { payload: 1024 }.wire_bytes(1024),
            1088
        );
    }
}
