//! Cluster configuration: Table 2 of the paper plus the handful of
//! calibration constants the table implies but does not state outright,
//! plus the rack topology (node count and per-node roles) that opens the
//! beyond-paper N-node scenario family.

use sabre_core::LightSabresConfig;
use sabre_fabric::{FabricConfig, RackTopology};
use sabre_mem::MemTimingConfig;
use sabre_sim::{Freq, Time};
use sabre_sw::CpuCostModel;

use crate::fault::FaultPlan;

/// What a node contributes to a scenario — the role split experiments
/// declare placements against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Runs reader cores issuing one-sided operations at remote stores.
    Reader,
    /// Hosts a store shard (data + local writer threads).
    Store,
}

/// A custom reader→shard assignment: given the reader *index* (position in
/// [`Topology::reader_nodes`]), the role topology and the rack's wiring,
/// return the store *node* the reader should target.
pub type PlacementFn = fn(usize, &Topology, RackTopology) -> usize;

/// How reader nodes are assigned to store shards — the knob
/// [`Topology::store_for_reader`] dispatches on.
///
/// Assignment quality is a fabric-geometry question: on the 8-node mesh
/// (and any oversubscribed fat tree) a badly placed reader pays extra
/// routed hops — and, on a fat tree, uplink queueing — on every packet of
/// every read. The `fig_placement` experiment sweeps these policies
/// against topology families.
#[derive(Debug, Clone, Copy)]
pub enum PlacementPolicy {
    /// Reader `i` targets the `i % S`-th store node (the historical
    /// default; ignores geometry).
    RoundRobin,
    /// Reader `i` targets a store node at minimal routed hop distance
    /// under the rack's [`RackTopology`]; among equally-near shards it
    /// round-robins by reader index, so load still spreads (and on a
    /// crossbar, where every shard is one hop away, it degenerates to
    /// exactly [`PlacementPolicy::RoundRobin`]).
    NearestShard,
    /// Contiguous blocks: the first `R/S` readers share store 0, the next
    /// block store 1, … (keeps reader cohorts together, e.g. to saturate
    /// one shard's pipelines before spilling to the next).
    Striped,
    /// An arbitrary assignment function (must be deterministic — it is
    /// consulted during scenario construction).
    Custom(PlacementFn),
}

impl PartialEq for PlacementPolicy {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (PlacementPolicy::RoundRobin, PlacementPolicy::RoundRobin)
            | (PlacementPolicy::NearestShard, PlacementPolicy::NearestShard)
            | (PlacementPolicy::Striped, PlacementPolicy::Striped) => true,
            // Two Custom policies compare by function address: equal
            // addresses certainly dispatch identically, distinct addresses
            // are conservatively unequal.
            (PlacementPolicy::Custom(a), PlacementPolicy::Custom(b)) => {
                std::ptr::fn_addr_eq(*a, *b)
            }
            _ => false,
        }
    }
}

impl Eq for PlacementPolicy {}

/// The rack's role topology: which nodes host store shards and which host
/// readers, plus the [`PlacementPolicy`] pairing them. The paper's
/// evaluated pair is `[Reader, Store]`; N-node racks split half/half by
/// default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    roles: Vec<NodeRole>,
    placement: PlacementPolicy,
}

impl Topology {
    /// An explicit role assignment, node by node, with the default
    /// [`PlacementPolicy::RoundRobin`] pairing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two nodes are declared.
    pub fn new(roles: Vec<NodeRole>) -> Self {
        assert!(roles.len() >= 2, "the rack needs at least two nodes");
        Topology {
            roles,
            placement: PlacementPolicy::RoundRobin,
        }
    }

    /// The paper's evaluated pair: node 0 reads, node 1 stores.
    pub fn paper_pair() -> Self {
        Topology::new(vec![NodeRole::Reader, NodeRole::Store])
    }

    /// A skewed role split: `stores` groups of one store node followed by
    /// its `readers_per_store` reader nodes — `1:N` store:reader ratios as
    /// a first-class shape. Grouping each store with its readers keeps the
    /// cohort contiguous, so leaf-local placement is *possible* on a fat
    /// tree (whether the policy exploits it is what `fig_placement`
    /// measures).
    ///
    /// ```
    /// use sabre_rack::{NodeRole, Topology};
    ///
    /// let t = Topology::skewed(2, 3); // 1:3 split, 8 nodes
    /// assert_eq!(t.store_nodes(), vec![0, 4]);
    /// assert_eq!(t.reader_nodes(), vec![1, 2, 3, 5, 6, 7]);
    /// assert_eq!(t.role(0), NodeRole::Store);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `stores` or `readers_per_store` is zero, or the rack
    /// would have fewer than two nodes.
    pub fn skewed(stores: usize, readers_per_store: usize) -> Self {
        assert!(stores > 0, "a skewed split needs at least one store");
        assert!(
            readers_per_store > 0,
            "a skewed split needs at least one reader per store"
        );
        let mut roles = Vec::with_capacity(stores * (1 + readers_per_store));
        for _ in 0..stores {
            roles.push(NodeRole::Store);
            roles.extend(std::iter::repeat_n(NodeRole::Reader, readers_per_store));
        }
        Topology::new(roles)
    }

    /// This topology with a different reader→shard [`PlacementPolicy`].
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// The reader→shard assignment policy.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// The default N-node split: the first `ceil(nodes / 2)` nodes read,
    /// the rest host store shards (for `nodes == 2` this is exactly
    /// [`Topology::paper_pair`]).
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn half_split(nodes: usize) -> Self {
        assert!(nodes >= 2, "the rack needs at least two nodes");
        let readers = nodes.div_ceil(2);
        Topology::new(
            (0..nodes)
                .map(|n| {
                    if n < readers {
                        NodeRole::Reader
                    } else {
                        NodeRole::Store
                    }
                })
                .collect(),
        )
    }

    /// Number of nodes.
    #[allow(clippy::len_without_is_empty)] // a topology is never empty
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Role of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn role(&self, node: usize) -> NodeRole {
        self.roles[node]
    }

    /// Nodes with a given role, in index order.
    pub fn nodes_with(&self, role: NodeRole) -> Vec<usize> {
        (0..self.roles.len())
            .filter(|&n| self.roles[n] == role)
            .collect()
    }

    /// Reader nodes, in index order.
    pub fn reader_nodes(&self) -> Vec<usize> {
        self.nodes_with(NodeRole::Reader)
    }

    /// Store nodes, in index order.
    pub fn store_nodes(&self) -> Vec<usize> {
        self.nodes_with(NodeRole::Store)
    }

    /// The store node the `i`-th reader node (by position in
    /// [`Topology::reader_nodes`]) is paired with, under this topology's
    /// [`PlacementPolicy`] and the rack's wiring `rack` — the reader→shard
    /// assignment every placement-aware experiment derives from.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no store nodes (or, for
    /// [`PlacementPolicy::Custom`], if the function returns a non-store
    /// node).
    pub fn store_for_reader(&self, reader_index: usize, rack: RackTopology) -> usize {
        let stores = self.store_nodes();
        assert!(!stores.is_empty(), "topology has no store nodes");
        match self.placement {
            PlacementPolicy::RoundRobin => stores[reader_index % stores.len()],
            PlacementPolicy::Striped => {
                let readers = self.reader_nodes().len().max(1);
                let i = reader_index % readers;
                stores[(i * stores.len()) / readers]
            }
            PlacementPolicy::NearestShard => {
                let readers = self.reader_nodes();
                let reader = readers[reader_index % readers.len()];
                let best = stores
                    .iter()
                    .map(|&s| rack.hops(reader, s))
                    .min()
                    .expect("at least one store");
                let nearest: Vec<usize> = stores
                    .iter()
                    .copied()
                    .filter(|&s| rack.hops(reader, s) == best)
                    .collect();
                nearest[reader_index % nearest.len()]
            }
            PlacementPolicy::Custom(f) => {
                let node = f(reader_index, self, rack);
                assert!(
                    self.roles.get(node) == Some(&NodeRole::Store),
                    "custom placement returned non-store node {node}"
                );
                node
            }
        }
    }
}

/// Configuration of the whole simulated rack.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (the evaluation uses 2, directly connected).
    pub nodes: usize,
    /// Cores per node (Table 2: 16).
    pub cores_per_node: usize,
    /// RGP/RCP backend pairs and R2P2s per node (Fig. 6: 4 across the edge).
    pub rmc_backends: usize,
    /// RMC pipeline clock (Table 2: 1 GHz).
    pub rmc_clock: Freq,
    /// Per-R2P2 issue bandwidth target in GB/s (§5.1: 20 GBps), which sets
    /// the block issue interval.
    pub r2p2_issue_gbps: f64,
    /// Bytes of simulated DRAM per node.
    pub memory_bytes: usize,
    /// Memory timing (Table 2 DRAM/LLC rows).
    pub mem_timing: MemTimingConfig,
    /// LLC capacity in bytes (Table 2: 2 MB).
    pub llc_bytes: usize,
    /// LLC associativity (Table 2: 16).
    pub llc_ways: usize,
    /// Inter-node fabric (Table 2 network row).
    pub fabric: FabricConfig,
    /// LightSABRes engine configuration (§5.1: 16 × 32-entry buffers).
    pub lightsabres: LightSabresConfig,
    /// CPU cost model for the software paths.
    pub cpu: CpuCostModel,
    /// Core-side fixed cost from scheduling a WQ entry until the RGP
    /// backend starts unrolling (WQ store + frontend poll + init).
    pub frontend_latency: Time,
    /// Fixed cost from the RCP writing the CQ entry until the core observes
    /// the completion (CQ write + core poll).
    pub completion_latency: Time,
    /// A local writer thread's per-block store interval (store issue rate).
    pub writer_store_interval: Time,
    /// RNG seed for all workloads.
    pub seed: u64,
    /// Per-node roles (which nodes host store shards, which read).
    pub topology: Topology,
    /// Event-loop shards the nodes are partitioned into (contiguous
    /// ranges). Purely an execution knob: results are bit-identical for
    /// every value — the loop synchronizes shards at fabric-lookahead
    /// windows with a deterministic cross-shard merge. Values above the
    /// node count are clamped.
    pub shards: usize,
    /// OS worker threads driving the shards inside one cluster run,
    /// clamped to the shard count. `None` (the default) means the
    /// serial loop: in-cluster threading is opt-in because sweeps
    /// already run one cluster per worker — nesting a per-cluster pool
    /// under a sweep pool oversubscribes the host — and the window
    /// barrier only pays off when one big sharded rack has cores to
    /// itself. Purely an execution knob: results are bit-identical for
    /// every value.
    pub threads: Option<usize>,
    /// Scheduled node crashes and link outages (default: none). Injected
    /// at the window barriers where cross-shard packets merge, so the
    /// bit-identity guarantee over shards × threads is preserved — see
    /// [`crate::fault`].
    pub fault: FaultPlan,
    /// Serve reads from a replica that is still catching up after an
    /// outage (counted per pipeline as
    /// [`sabre_sonuma::r2p2::R2p2Stats::stale_served`]) instead of refusing
    /// them — availability over freshness. Default `false`: the epoch/seq
    /// guard refuses reads until the replica has replayed its missed
    /// writes, and refused readers retry at the next replica.
    pub serve_stale: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            cores_per_node: 16,
            rmc_backends: 4,
            rmc_clock: Freq::ghz(1.0),
            r2p2_issue_gbps: 20.0,
            memory_bytes: 64 * 1024 * 1024,
            mem_timing: MemTimingConfig::default(),
            llc_bytes: 2 * 1024 * 1024,
            llc_ways: 16,
            fabric: FabricConfig::default(),
            lightsabres: LightSabresConfig::default(),
            cpu: CpuCostModel::default(),
            frontend_latency: Time::from_ns(40),
            completion_latency: Time::from_ns(40),
            writer_store_interval: Time::from_ns(8),
            seed: 0x5AB2E5,
            topology: Topology::paper_pair(),
            shards: 1,
            threads: None,
            fault: FaultPlan::default(),
            serve_stale: false,
        }
    }
}

impl ClusterConfig {
    /// The default Table-2 rack resized to `nodes` nodes: the fabric
    /// becomes a rack-level 2D mesh beyond two nodes
    /// ([`sabre_fabric::FabricConfig::for_nodes`]), roles split half
    /// readers / half stores ([`Topology::half_split`]), and per-node
    /// memory shrinks to 16 MB so an 8-node rack stays cheap to
    /// materialize (sweeps build many clusters).
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn with_nodes(nodes: usize) -> Self {
        let mut cfg = ClusterConfig::default();
        cfg.resize_to(nodes);
        cfg
    }

    /// Resizes this configuration to `nodes` nodes in place, keeping every
    /// other tweak: the fabric is re-pointed at the node count (2D mesh
    /// beyond two nodes, direct below), the role topology becomes
    /// [`Topology::half_split`], and per-node memory shrinks to 16 MB when
    /// growing beyond two nodes *if* it still has its default value.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn resize_to(&mut self, nodes: usize) {
        assert!(nodes >= 2, "the rack needs at least two nodes");
        self.nodes = nodes;
        self.fabric.nodes = nodes;
        // One source of truth for the default rack shape at each size.
        self.fabric.topology = FabricConfig::for_nodes(nodes).topology;
        self.topology = Topology::half_split(nodes);
        if nodes > 2 && self.memory_bytes == ClusterConfig::default().memory_bytes {
            self.memory_bytes = 16 * 1024 * 1024;
        }
    }

    /// The store node the `i`-th reader node targets: the role topology's
    /// [`Topology::store_for_reader`] evaluated against this rack's fabric
    /// wiring (which [`PlacementPolicy::NearestShard`] measures hop
    /// distances on).
    pub fn store_for_reader(&self, reader_index: usize) -> usize {
        self.topology
            .store_for_reader(reader_index, self.fabric.topology)
    }

    /// The R2P2's per-block issue interval derived from its bandwidth
    /// target: 64 B / 20 GBps = 3.2 ns with the defaults.
    pub fn r2p2_issue_interval(&self) -> Time {
        sabre_sim::time::transfer_time(sabre_mem::BLOCK_BYTES as u64, self.r2p2_issue_gbps)
    }

    /// The RGP's per-packet unroll interval (one packet per RMC cycle).
    pub fn rgp_unroll_interval(&self) -> Time {
        self.rmc_clock.period()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("the rack needs at least two nodes".into());
        }
        if self.nodes != self.fabric.nodes {
            return Err(format!(
                "fabric is configured for {} nodes but the rack has {}",
                self.fabric.nodes, self.nodes
            ));
        }
        if self.cores_per_node == 0 || self.rmc_backends == 0 {
            return Err("cores and RMC backends must be positive".into());
        }
        if self.rmc_backends > 256 || self.cores_per_node > 256 {
            return Err("pipe and core ids are 8-bit".into());
        }
        if self.nodes > 256 {
            return Err("node ids are 8-bit".into());
        }
        if self.topology.len() != self.nodes {
            return Err(format!(
                "topology declares {} roles but the rack has {} nodes",
                self.topology.len(),
                self.nodes
            ));
        }
        if self.shards == 0 {
            return Err("the event loop needs at least one shard".into());
        }
        self.fault.validate(self.nodes)?;
        self.lightsabres.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let cfg = ClusterConfig::default();
        assert_eq!(cfg.nodes, 2);
        assert_eq!(cfg.cores_per_node, 16);
        assert_eq!(cfg.rmc_backends, 4);
        assert_eq!(cfg.llc_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.r2p2_issue_interval(), Time::from_ps(3_200));
        assert_eq!(cfg.rgp_unroll_interval(), Time::from_ns(1));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut cfg = ClusterConfig {
            nodes: 3, // fabric and topology still say 2
            ..ClusterConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.nodes = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::with_nodes(4);
        assert!(cfg.validate().is_ok());
        cfg.shards = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn with_nodes_resizes_every_layer() {
        let cfg = ClusterConfig::with_nodes(8);
        assert_eq!(cfg.nodes, 8);
        assert_eq!(cfg.fabric.nodes, 8);
        assert_eq!(cfg.topology.len(), 8);
        assert_eq!(cfg.topology.reader_nodes(), vec![0, 1, 2, 3]);
        assert_eq!(cfg.topology.store_nodes(), vec![4, 5, 6, 7]);
        assert!(cfg.validate().is_ok());
        // The two-node resize is the paper pair on the paper fabric.
        let pair = ClusterConfig::with_nodes(2);
        assert_eq!(pair.topology, Topology::paper_pair());
        assert_eq!(pair.memory_bytes, ClusterConfig::default().memory_bytes);
    }

    #[test]
    fn topology_roles_and_pairing() {
        let t = Topology::half_split(5);
        assert_eq!(t.reader_nodes(), vec![0, 1, 2]);
        assert_eq!(t.store_nodes(), vec![3, 4]);
        assert_eq!(t.role(0), NodeRole::Reader);
        assert_eq!(t.role(4), NodeRole::Store);
        assert_eq!(t.placement(), PlacementPolicy::RoundRobin);
        // Round-robin pairing of readers onto store shards, whatever the
        // fabric shape.
        for rack in [RackTopology::Direct, RackTopology::mesh_for(5)] {
            assert_eq!(t.store_for_reader(0, rack), 3);
            assert_eq!(t.store_for_reader(1, rack), 4);
            assert_eq!(t.store_for_reader(2, rack), 3);
        }
    }

    #[test]
    fn skewed_split_groups_each_store_with_its_readers() {
        let t = Topology::skewed(2, 3);
        assert_eq!(t.len(), 8);
        assert_eq!(t.store_nodes(), vec![0, 4]);
        assert_eq!(t.reader_nodes(), vec![1, 2, 3, 5, 6, 7]);
        // The 1:1 skew is an interleaved half split.
        let even = Topology::skewed(4, 1);
        assert_eq!(even.store_nodes(), vec![0, 2, 4, 6]);
        assert_eq!(even.reader_nodes(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn striped_placement_assigns_contiguous_reader_blocks() {
        let t = Topology::skewed(2, 3).with_placement(PlacementPolicy::Striped);
        let rack = RackTopology::mesh_for(8);
        // 6 readers over 2 stores: first 3 -> store 0, last 3 -> store 4.
        let picks: Vec<usize> = (0..6).map(|i| t.store_for_reader(i, rack)).collect();
        assert_eq!(picks, vec![0, 0, 0, 4, 4, 4]);
    }

    #[test]
    fn nearest_shard_minimizes_hops_and_spreads_ties() {
        let rack = RackTopology::FatTree {
            radix: 4,
            oversubscription: 2,
        };
        let t = Topology::skewed(2, 3).with_placement(PlacementPolicy::NearestShard);
        // Stores 0 (leaf 0) and 4 (leaf 1): every reader picks its own
        // leaf's store — one hop instead of round-robin's mixed 1/3 hops.
        let picks: Vec<usize> = (0..6).map(|i| t.store_for_reader(i, rack)).collect();
        assert_eq!(picks, vec![0, 0, 0, 4, 4, 4]);
        // On a crossbar every store is equidistant, so the tie-break
        // round-robins: NearestShard degenerates to RoundRobin exactly.
        let rr = Topology::skewed(2, 3);
        for i in 0..6 {
            assert_eq!(
                t.store_for_reader(i, RackTopology::Direct),
                rr.store_for_reader(i, RackTopology::Direct)
            );
        }
    }

    #[test]
    fn custom_placement_is_consulted_and_checked() {
        fn always_last(_: usize, topo: &Topology, _: RackTopology) -> usize {
            *topo.store_nodes().last().expect("has stores")
        }
        let t = Topology::skewed(2, 1).with_placement(PlacementPolicy::Custom(always_last));
        assert_eq!(t.store_for_reader(0, RackTopology::Direct), 2);
        assert_eq!(t.store_for_reader(1, RackTopology::Direct), 2);
    }

    #[test]
    #[should_panic(expected = "non-store node")]
    fn custom_placement_rejects_reader_targets() {
        fn bad(_: usize, topo: &Topology, _: RackTopology) -> usize {
            topo.reader_nodes()[0]
        }
        let t = Topology::skewed(2, 1).with_placement(PlacementPolicy::Custom(bad));
        let _ = t.store_for_reader(0, RackTopology::Direct);
    }

    #[test]
    fn cluster_config_pairs_against_its_own_fabric() {
        let mut cfg = ClusterConfig::with_nodes(8);
        cfg.topology = Topology::skewed(2, 3).with_placement(PlacementPolicy::NearestShard);
        cfg.fabric.topology = RackTopology::FatTree {
            radix: 4,
            oversubscription: 4,
        };
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.store_for_reader(0), 0);
        assert_eq!(cfg.store_for_reader(5), 4);
    }
}
