//! Cluster configuration: Table 2 of the paper plus the handful of
//! calibration constants the table implies but does not state outright.

use sabre_core::LightSabresConfig;
use sabre_fabric::FabricConfig;
use sabre_mem::MemTimingConfig;
use sabre_sim::{Freq, Time};
use sabre_sw::CpuCostModel;

/// Configuration of the whole simulated rack.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (the evaluation uses 2, directly connected).
    pub nodes: usize,
    /// Cores per node (Table 2: 16).
    pub cores_per_node: usize,
    /// RGP/RCP backend pairs and R2P2s per node (Fig. 6: 4 across the edge).
    pub rmc_backends: usize,
    /// RMC pipeline clock (Table 2: 1 GHz).
    pub rmc_clock: Freq,
    /// Per-R2P2 issue bandwidth target in GB/s (§5.1: 20 GBps), which sets
    /// the block issue interval.
    pub r2p2_issue_gbps: f64,
    /// Bytes of simulated DRAM per node.
    pub memory_bytes: usize,
    /// Memory timing (Table 2 DRAM/LLC rows).
    pub mem_timing: MemTimingConfig,
    /// LLC capacity in bytes (Table 2: 2 MB).
    pub llc_bytes: usize,
    /// LLC associativity (Table 2: 16).
    pub llc_ways: usize,
    /// Inter-node fabric (Table 2 network row).
    pub fabric: FabricConfig,
    /// LightSABRes engine configuration (§5.1: 16 × 32-entry buffers).
    pub lightsabres: LightSabresConfig,
    /// CPU cost model for the software paths.
    pub cpu: CpuCostModel,
    /// Core-side fixed cost from scheduling a WQ entry until the RGP
    /// backend starts unrolling (WQ store + frontend poll + init).
    pub frontend_latency: Time,
    /// Fixed cost from the RCP writing the CQ entry until the core observes
    /// the completion (CQ write + core poll).
    pub completion_latency: Time,
    /// A local writer thread's per-block store interval (store issue rate).
    pub writer_store_interval: Time,
    /// RNG seed for all workloads.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            cores_per_node: 16,
            rmc_backends: 4,
            rmc_clock: Freq::ghz(1.0),
            r2p2_issue_gbps: 20.0,
            memory_bytes: 64 * 1024 * 1024,
            mem_timing: MemTimingConfig::default(),
            llc_bytes: 2 * 1024 * 1024,
            llc_ways: 16,
            fabric: FabricConfig::default(),
            lightsabres: LightSabresConfig::default(),
            cpu: CpuCostModel::default(),
            frontend_latency: Time::from_ns(40),
            completion_latency: Time::from_ns(40),
            writer_store_interval: Time::from_ns(8),
            seed: 0x5AB2E5,
        }
    }
}

impl ClusterConfig {
    /// The R2P2's per-block issue interval derived from its bandwidth
    /// target: 64 B / 20 GBps = 3.2 ns with the defaults.
    pub fn r2p2_issue_interval(&self) -> Time {
        sabre_sim::time::transfer_time(sabre_mem::BLOCK_BYTES as u64, self.r2p2_issue_gbps)
    }

    /// The RGP's per-packet unroll interval (one packet per RMC cycle).
    pub fn rgp_unroll_interval(&self) -> Time {
        self.rmc_clock.period()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("the rack needs at least two nodes".into());
        }
        if self.nodes != self.fabric.nodes {
            return Err(format!(
                "fabric is configured for {} nodes but the rack has {}",
                self.fabric.nodes, self.nodes
            ));
        }
        if self.cores_per_node == 0 || self.rmc_backends == 0 {
            return Err("cores and RMC backends must be positive".into());
        }
        if self.rmc_backends > 256 || self.cores_per_node > 256 {
            return Err("pipe and core ids are 8-bit".into());
        }
        self.lightsabres.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let cfg = ClusterConfig::default();
        assert_eq!(cfg.nodes, 2);
        assert_eq!(cfg.cores_per_node, 16);
        assert_eq!(cfg.rmc_backends, 4);
        assert_eq!(cfg.llc_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.r2p2_issue_interval(), Time::from_ps(3_200));
        assert_eq!(cfg.rgp_unroll_interval(), Time::from_ns(1));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut cfg = ClusterConfig {
            nodes: 3, // fabric still says 2
            ..ClusterConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.nodes = 1;
        assert!(cfg.validate().is_err());
    }
}
