//! Declarative experiment construction and parallel sweep execution.
//!
//! Every experiment on the simulated rack follows the same ritual: build a
//! [`Cluster`] from a (possibly tweaked) [`ClusterConfig`], lay out data
//! regions in functional memory, install workload programs on cores, run
//! for some simulated time, and scrape metrics. [`ScenarioBuilder`] makes
//! that ritual declarative — the scenario is *described* up front and
//! materialized only when [`ScenarioBuilder::run`] fires — and
//! [`RunReport`] bundles everything an experiment reads back: per-core
//! [`CoreMetrics`], per-pipe [`R2p2Stats`] and [`EngineStats`], simulated
//! and host wall-clock time, plus the finished [`Cluster`] for ad-hoc
//! inspection (functional memory, configuration).
//!
//! Because each simulated cluster is a self-contained single-threaded
//! world, *independent* scenarios are embarrassingly parallel: [`Sweep`]
//! runs one scenario per sweep point across OS threads and returns the
//! results in input order, bit-identical to a serial run.
//!
//! ```
//! use sabre_rack::scenario::{ScenarioBuilder, Sweep};
//! use sabre_rack::{spec, ReadMechanism};
//! use sabre_sim::Time;
//!
//! let latencies: Vec<f64> = Sweep::over([64u32, 256, 1024])
//!     .map(|&size| {
//!         ScenarioBuilder::new()
//!             .raw_region(1, size)
//!             .reader_spec(
//!                 0,
//!                 0,
//!                 spec().store(1).payload(size).mechanism(ReadMechanism::Sabre),
//!             )
//!             .run_for(Time::from_us(30))
//!             .mean_latency_ns(0, 0)
//!             .expect("ops completed")
//!     });
//! assert_eq!(latencies.len(), 3);
//! assert!(latencies[0] < latencies[2], "larger transfers take longer");
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sabre_core::EngineStats;
use sabre_mem::Addr;
use sabre_sim::{HopStats, Time};
use sabre_sonuma::r2p2::R2p2Stats;

use crate::cluster::Cluster;
use crate::config::{ClusterConfig, NodeRole, PlacementPolicy, Topology};
use crate::metrics::CoreMetrics;
use crate::spec::WorkloadSpec;
use crate::workload::Workload;

type PrepareFn = Box<dyn FnOnce(&mut Cluster) -> Vec<Addr>>;
type FactoryFn = Box<dyn FnOnce(&[Addr]) -> Box<dyn Workload>>;

/// The `SABRES_THREADS` environment cap, shared by the [`Sweep`] runner
/// and the cluster's sharded event loop.
pub(crate) fn threads_from_env() -> Option<usize> {
    let v = std::env::var("SABRES_THREADS").ok()?;
    match v.trim().parse::<usize>() {
        Ok(n) => Some(n.max(1)),
        Err(_) => {
            // An unparseable cap must not silently become "use every
            // core" — that is the opposite of what the user asked.
            eprintln!("warning: ignoring unparseable SABRES_THREADS={v:?} (want an integer)");
            None
        }
    }
}

/// A declarative description of one experiment on the simulated rack.
///
/// Construction order is preserved exactly: region preparations run in
/// declaration order against the fresh cluster, then workloads are
/// installed in declaration order, then the simulation runs — so a
/// scenario with the same seed replays bit-identically to hand-wired
/// [`Cluster`] construction performing the same steps.
pub struct ScenarioBuilder {
    cfg: ClusterConfig,
    prepares: Vec<PrepareFn>,
    workloads: Vec<(usize, usize, FactoryFn)>,
    warmup: Time,
    measure: Time,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// A scenario on the default Table-2 rack.
    pub fn new() -> Self {
        Self::with_config(ClusterConfig::default())
    }

    /// A scenario on an explicit configuration.
    pub fn with_config(cfg: ClusterConfig) -> Self {
        ScenarioBuilder {
            cfg,
            prepares: Vec::new(),
            workloads: Vec::new(),
            warmup: Time::ZERO,
            measure: Time::ZERO,
        }
    }

    /// Tweaks the cluster configuration in place.
    pub fn configure(mut self, f: impl FnOnce(&mut ClusterConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// The configuration the scenario will build its cluster from (e.g. to
    /// derive core counts when placing workloads).
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Sets the RNG seed for all workloads.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Resizes the rack to `n` nodes
    /// ([`ClusterConfig::resize_to`]): rack-level 2D-mesh fabric beyond
    /// two nodes, half reader / half store roles, 16 MB per-node memory
    /// (when untweaked). Call before placement helpers that consult the
    /// topology.
    pub fn nodes(mut self, n: usize) -> Self {
        self.cfg.resize_to(n);
        self
    }

    /// Declares an explicit per-node role [`Topology`]; the node count and
    /// fabric follow it (the fabric resets to the default shape for that
    /// size — call [`ScenarioBuilder::fat_tree`] *after* this to keep a
    /// leaf/spine fabric).
    pub fn topology(mut self, topology: Topology) -> Self {
        let n = topology.len();
        self.cfg.resize_to(n);
        self.cfg.topology = topology;
        self
    }

    /// Sets the reader→shard [`PlacementPolicy`] on the current role
    /// topology (call after [`ScenarioBuilder::nodes`] /
    /// [`ScenarioBuilder::topology`], which reset it to
    /// [`PlacementPolicy::RoundRobin`]). The policy is consulted through
    /// [`ClusterConfig::store_for_reader`] when experiments assign readers
    /// to shards.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.cfg.topology = self.cfg.topology.clone().with_placement(placement);
        self
    }

    /// Rewires the rack fabric as a two-level leaf/spine fat tree
    /// ([`sabre_fabric::RackTopology::FatTree`]): `radix` nodes per leaf,
    /// uplinks oversubscribed `oversubscription`:1. Call after
    /// [`ScenarioBuilder::nodes`] / [`ScenarioBuilder::topology`], which
    /// reset the fabric to the default crossbar/mesh shape.
    ///
    /// ```
    /// use sabre_rack::{spec, PlacementPolicy, ReadMechanism, ScenarioBuilder, Topology};
    /// use sabre_sim::Time;
    ///
    /// // A skewed 1:3 rack (stores 0 and 4, three readers each) on a 4:1
    /// // oversubscribed fat tree, readers pinned to their nearest shard.
    /// let builder = ScenarioBuilder::new()
    ///     .topology(Topology::skewed(2, 3).with_placement(PlacementPolicy::NearestShard))
    ///     .fat_tree(4, 4)
    ///     .shards(8);
    /// let cfg = builder.config().clone();
    /// let readers = cfg.topology.reader_nodes();
    /// let report = builder
    ///     .raw_region_sized(0, 256, 8)
    ///     .raw_region_sized(4, 256, 8)
    ///     .readers_grid_spec(
    ///         readers.iter().map(|&n| (n, 0)).collect::<Vec<_>>(),
    ///         move |node, _core, targets| {
    ///             // NearestShard keeps every reader on its own leaf.
    ///             let i = cfg.topology.reader_nodes().iter().position(|&r| r == node).unwrap();
    ///             let store = cfg.store_for_reader(i);
    ///             let slice = if store == 0 { &targets[..8] } else { &targets[8..] };
    ///             spec()
    ///                 .store(store)
    ///                 .payload(256)
    ///                 .mechanism(ReadMechanism::Sabre)
    ///                 .objects(slice.to_vec())
    ///         },
    ///     )
    ///     .run_for(Time::from_us(10));
    /// let nodes = report.node_reports();
    /// assert!(nodes[1].metrics.ops > 0, "leaf-0 readers progress");
    /// assert_eq!(nodes[1].mean_hops, 1.0, "no reader ever crosses the spine");
    /// ```
    pub fn fat_tree(mut self, radix: u8, oversubscription: u8) -> Self {
        self.cfg.fabric.topology = sabre_fabric::RackTopology::FatTree {
            radix,
            oversubscription,
        };
        self
    }

    /// Rewires the fabric as a two-level datacenter
    /// ([`sabre_fabric::RackTopology::Datacenter`]): `racks` racks of
    /// `radix`-ary fat trees joined by an inter-rack spine with the
    /// calibrated 350 ns per-crossing latency
    /// ([`sabre_fabric::RackTopology::datacenter_for`]). Call after
    /// [`ScenarioBuilder::nodes`] / [`ScenarioBuilder::topology`], which
    /// reset the fabric to the default crossbar/mesh shape; the node count
    /// must fit `racks * radix^2` slots
    /// (checked by [`ClusterConfig::validate`] at run time).
    pub fn datacenter(mut self, racks: u8, radix: u8, oversubscription: u8) -> Self {
        self.cfg.fabric.topology =
            sabre_fabric::RackTopology::datacenter_for(racks, radix, oversubscription);
        self
    }

    /// Event-loop shard count (purely an execution knob — results are
    /// bit-identical for every value; see [`ClusterConfig::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards.max(1);
        self
    }

    /// Worker threads driving the shards inside the cluster run (purely
    /// an execution knob — results are bit-identical for every value; see
    /// [`ClusterConfig::threads`]). Clamped to the shard count, so it
    /// only buys wall-clock with [`ScenarioBuilder::shards`] above one.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = Some(threads.max(1));
        self
    }

    /// Schedules node crashes and link outages for the run
    /// ([`ClusterConfig::fault`]): the plan is injected at window barriers,
    /// so every shard × thread setting still replays bit-identically. See
    /// [`crate::fault`] for the failure model.
    pub fn fault(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.cfg.fault = plan;
        self
    }

    /// Registers a region-preparation step: it receives the fresh cluster
    /// before any workload starts and returns the target addresses it laid
    /// out (possibly none). Targets of every preparation, in declaration
    /// order, are concatenated and handed to the workload factories.
    pub fn prepare(mut self, f: impl FnOnce(&mut Cluster) -> Vec<Addr> + 'static) -> Self {
        self.prepares.push(Box::new(f));
        self
    }

    /// Declares a memory-resident region of raw transfer targets of `size`
    /// bytes each on `node`: enough slots (≈16 MB) that uniform random
    /// access misses the 2 MB LLC, as in the paper's "remote data is memory
    /// resident" setups. Each target starts with an even (unlocked) version
    /// word.
    pub fn raw_region(self, node: usize, size: u32) -> Self {
        let slot = (size as u64).div_ceil(64) * 64;
        let count = (16 * 1024 * 1024 / slot).clamp(1, 16_384);
        self.raw_region_sized(node, size, count)
    }

    /// [`ScenarioBuilder::raw_region`] with an explicit target count.
    pub fn raw_region_sized(self, node: usize, size: u32, count: u64) -> Self {
        let slot = (size as u64).div_ceil(64) * 64;
        self.prepare(move |cluster| {
            let mem = cluster.node_memory_mut(node);
            let mut addrs = Vec::with_capacity(count as usize);
            for i in 0..count {
                let base = Addr::new(i * slot);
                mem.write_u64(base, 0);
                addrs.push(base);
            }
            addrs
        })
    }

    /// Pre-warms node `node`'s LLC over every block of `[base, base+bytes)`
    /// before the workloads start (LLC-resident working sets).
    pub fn warm_llc(self, node: usize, base: Addr, bytes: u64) -> Self {
        self.prepare(move |cluster| {
            cluster.warm_llc(node, base, bytes);
            Vec::new()
        })
    }

    /// Places a workload built by `factory` on `core` of `node`. The
    /// factory receives the concatenated target addresses of every declared
    /// region.
    pub fn reader(
        mut self,
        node: usize,
        core: usize,
        factory: impl FnOnce(&[Addr]) -> Box<dyn Workload> + 'static,
    ) -> Self {
        self.workloads.push((node, core, Box::new(factory)));
        self
    }

    /// Places one workload per core in `cores`, each built by `factory`
    /// from `(core, targets)`.
    pub fn readers(
        mut self,
        node: usize,
        cores: impl IntoIterator<Item = usize>,
        factory: impl Fn(usize, &[Addr]) -> Box<dyn Workload> + 'static,
    ) -> Self {
        let factory = std::rc::Rc::new(factory);
        for core in cores {
            let f = std::rc::Rc::clone(&factory);
            self.workloads.push((
                node,
                core,
                Box::new(move |targets: &[Addr]| f(core, targets)),
            ));
        }
        self
    }

    /// Places an already-built workload on `core` of `node`.
    pub fn workload(self, node: usize, core: usize, w: Box<dyn Workload>) -> Self {
        self.reader(node, core, move |_| w)
    }

    /// Places one workload per `(node, core)` placement, each built by
    /// `factory` from `(node, core, targets)` — the N-node generalization
    /// of [`ScenarioBuilder::readers`], used with the topology's
    /// [`Topology::reader_nodes`] to spread a workload across every reader
    /// node of the rack.
    pub fn readers_grid(
        mut self,
        placements: impl IntoIterator<Item = (usize, usize)>,
        factory: impl Fn(usize, usize, &[Addr]) -> Box<dyn Workload> + 'static,
    ) -> Self {
        let factory = std::rc::Rc::new(factory);
        for (node, core) in placements {
            let f = std::rc::Rc::clone(&factory);
            self.workloads.push((
                node,
                core,
                Box::new(move |targets: &[Addr]| f(node, core, targets)),
            ));
        }
        self
    }

    /// Places the workload declared by a [`WorkloadSpec`] on `core` of
    /// `node` — the declarative counterpart of [`ScenarioBuilder::reader`].
    /// The spec's default object set is the concatenated targets of every
    /// declared region.
    pub fn reader_spec(self, node: usize, core: usize, spec: WorkloadSpec) -> Self {
        self.reader(node, core, move |targets| spec.build(targets))
    }

    /// Places one copy of the spec's workload on every core in `cores` —
    /// the declarative counterpart of [`ScenarioBuilder::readers`].
    pub fn readers_spec(
        self,
        node: usize,
        cores: impl IntoIterator<Item = usize>,
        spec: WorkloadSpec,
    ) -> Self {
        self.readers(node, cores, move |_core, targets| spec.build(targets))
    }

    /// Places one spec-declared workload per `(node, core)` placement,
    /// with `factory` producing the spec from `(node, core, targets)` —
    /// the declarative counterpart of [`ScenarioBuilder::readers_grid`].
    /// `targets` lets per-node factories slice the region targets into
    /// explicit [`WorkloadSpec::objects`].
    pub fn readers_grid_spec(
        self,
        placements: impl IntoIterator<Item = (usize, usize)>,
        factory: impl Fn(usize, usize, &[Addr]) -> WorkloadSpec + 'static,
    ) -> Self {
        self.readers_grid(placements, move |node, core, targets| {
            factory(node, core, targets).build(targets)
        })
    }

    /// Declares a warmup window: the simulation runs for `t` before the
    /// measurement window, then every metric and statistic is reset
    /// ([`Cluster::reset_metrics`]), so cold-start effects (LLC fills,
    /// empty pipelines) are excluded from the report.
    pub fn warmup(mut self, t: Time) -> Self {
        self.warmup = t;
        self
    }

    /// Declares the measurement window: the simulated duration the report's
    /// metrics cover.
    pub fn measure(mut self, t: Time) -> Self {
        self.measure = t;
        self
    }

    /// Materializes and runs the scenario: builds the cluster, runs every
    /// preparation, installs every workload, simulates the warmup window
    /// (if any, resetting metrics after it), then the measurement window.
    ///
    /// # Panics
    ///
    /// Panics if no measurement window was declared (a zero-length window
    /// would silently measure nothing — call [`ScenarioBuilder::measure`]
    /// or use [`ScenarioBuilder::run_for`]), if the configuration is
    /// invalid, or if a workload placement is out of range — programming
    /// errors, exactly as with hand-wired construction.
    pub fn run(self) -> RunReport {
        assert!(
            self.measure > Time::ZERO,
            "no measurement window declared: call .measure(t) (or .run_for(t)) before .run()"
        );
        let wall = Instant::now();
        let mut cluster = Cluster::new(self.cfg);
        let mut targets = Vec::new();
        for prep in self.prepares {
            targets.extend(prep(&mut cluster));
        }
        for (node, core, factory) in self.workloads {
            cluster.add_workload(node, core, factory(&targets));
        }
        if self.warmup > Time::ZERO {
            cluster.run_for(self.warmup);
            cluster.reset_metrics();
        }
        let start = cluster.now();
        cluster.run_for(self.measure);
        let measured = cluster.now() - start;
        RunReport {
            cluster,
            measured,
            wall: wall.elapsed(),
        }
    }

    /// Shorthand: sets the measurement window to `t` and runs.
    pub fn run_for(self, t: Time) -> RunReport {
        self.measure(t).run()
    }
}

/// Everything an experiment reads back from one scenario run.
pub struct RunReport {
    cluster: Cluster,
    measured: Time,
    wall: Duration,
}

impl RunReport {
    /// The finished cluster, for ad-hoc inspection (functional memory,
    /// configuration, anything the structured accessors don't cover).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Simulated time at the end of the run.
    pub fn sim_time(&self) -> Time {
        self.cluster.now()
    }

    /// Length of the measurement window the metrics cover (excludes
    /// warmup).
    pub fn measured(&self) -> Time {
        self.measured
    }

    /// Host wall-clock time the run took.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Metrics of one core.
    pub fn core(&self, node: usize, core: usize) -> &CoreMetrics {
        self.cluster.metrics(node, core)
    }

    /// Aggregated (summed) metrics over all cores of `node`.
    pub fn node(&self, node: usize) -> CoreMetrics {
        self.cluster.node_metrics(node)
    }

    /// Mean end-to-end latency of one core's successful operations, in ns.
    pub fn mean_latency_ns(&self, node: usize, core: usize) -> Option<f64> {
        self.cluster.metrics(node, core).latency.mean()
    }

    /// Aggregate goodput of `node` over the measurement window, in GB/s.
    pub fn gbps(&self, node: usize) -> f64 {
        self.node(node).gbps(self.measured)
    }

    /// R2P2 statistics of one destination pipeline.
    pub fn r2p2(&self, node: usize, pipe: usize) -> R2p2Stats {
        self.cluster.r2p2_stats(node, pipe)
    }

    /// LightSABRes engine statistics of one destination pipeline.
    pub fn engine(&self, node: usize, pipe: usize) -> EngineStats {
        self.cluster.engine_stats(node, pipe)
    }

    /// R2P2 statistics summed over every pipeline of `node`.
    pub fn r2p2_totals(&self, node: usize) -> R2p2Stats {
        let mut total = R2p2Stats::default();
        for pipe in 0..self.cluster.config().rmc_backends {
            total.merge(&self.cluster.r2p2_stats(node, pipe));
        }
        total
    }

    /// Engine statistics summed over every pipeline of `node`.
    pub fn engine_totals(&self, node: usize) -> EngineStats {
        let mut total = EngineStats::default();
        for pipe in 0..self.cluster.config().rmc_backends {
            total.merge(&self.cluster.engine_stats(node, pipe));
        }
        total
    }

    /// Per-node breakdown of the whole rack, in node order: role, summed
    /// core metrics, pipeline/engine totals and goodput — the structured
    /// view N-node experiments report from.
    pub fn node_reports(&self) -> Vec<NodeReport> {
        (0..self.cluster.config().nodes)
            .map(|node| {
                let hops = self.cluster.fabric().node_hop_stats(node);
                NodeReport {
                    node,
                    role: self.cluster.config().topology.role(node),
                    metrics: self.node(node),
                    r2p2: self.r2p2_totals(node),
                    engine: self.engine_totals(node),
                    gbps: self.gbps(node),
                    mean_hops: hops.mean_hops(),
                    hops,
                }
            })
            .collect()
    }

    /// Streaming hop/queue statistics merged over every node's fabric
    /// port ([`HopStats`] — exact element-wise merge, so bit-identical at
    /// every shard × thread setting). [`HopStats::spine_share`] is the
    /// cross-spine hop share datacenter experiments report.
    pub fn hop_stats(&self) -> HopStats {
        self.cluster.fabric().hop_stats()
    }

    /// Aggregate goodput of the whole rack (every node's successful reader
    /// bytes over the measurement window), in GB/s.
    pub fn total_gbps(&self) -> f64 {
        (0..self.cluster.config().nodes).map(|n| self.gbps(n)).sum()
    }

    /// Core metrics merged over every core of every node — the rack-wide
    /// aggregate. The deterministic latency histogram merges exactly
    /// (element-wise bucket addition), so anything derived from it is
    /// bit-identical at every shard × thread setting.
    pub fn rack_metrics(&self) -> CoreMetrics {
        let mut total = CoreMetrics::default();
        for node in 0..self.cluster.config().nodes {
            total.merge(&self.node(node));
        }
        total
    }

    /// R2P2 statistics summed over every pipeline of every node.
    pub fn r2p2_rack_totals(&self) -> R2p2Stats {
        let mut total = R2p2Stats::default();
        for node in 0..self.cluster.config().nodes {
            total.merge(&self.r2p2_totals(node));
        }
        total
    }

    /// The run's recovery ledger: every catch-up and staleness counter,
    /// merged rack-wide from both sides of the protocol (reader/writer
    /// core metrics and destination-pipeline statistics).
    pub fn recovery(&self) -> RecoveryReport {
        let m = self.rack_metrics();
        let r = self.r2p2_rack_totals();
        RecoveryReport {
            catch_up_ops: m.catch_up_ops,
            replays_applied: m.replays_applied,
            stale_refusals: m.stale_refusals,
            catch_up_ns: m.catch_up_ns,
            catch_up_pulls: r.catch_up_pulls,
            catch_up_refused: r.catch_up_refused,
            reads_refused: r.reads_refused,
            stale_served: r.stale_served,
            stale_dropped: r.stale_dropped,
        }
    }

    /// `(p50, p99, p99.9)` end-to-end latency in whole ns over every
    /// successful operation of the run, from the merged deterministic
    /// histogram ([`LatencyHistogram`](sabre_sim::LatencyHistogram) —
    /// exact below 16 ns, within 1/16 relative error above). `None` when
    /// nothing completed.
    pub fn latency_percentiles(&self) -> Option<(u64, u64, u64)> {
        let m = self.rack_metrics();
        Some((m.p50_ns()?, m.p99_ns()?, m.p999_ns()?))
    }

    /// Human-readable dump of the rack-wide merged latency histogram
    /// (one `lower..=upper count` line per occupied bucket) — the
    /// debugging view behind the percentile accessors.
    pub fn latency_dump(&self) -> String {
        self.rack_metrics().latency_hist.dump()
    }
}

/// Rack-wide recovery counters of one run, client side and server side —
/// see [`RunReport::recovery`]. A healthy no-fault run is all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Catch-up pull rounds issued by recovering writers.
    pub catch_up_ops: u64,
    /// Missed writes replayed through the deterministic update path.
    pub replays_applied: u64,
    /// Refused reads that readers re-issued at another replica.
    pub stale_refusals: u64,
    /// Total ns recovering writers spent catching up (staleness window).
    pub catch_up_ns: u64,
    /// Catch-up pulls served by live peers (server side).
    pub catch_up_pulls: u64,
    /// Catch-up pulls refused because the asked peer was itself catching
    /// up (mutual-staleness bounce; the puller retried elsewhere).
    pub catch_up_refused: u64,
    /// Reads refused by the epoch/seq guard (server side).
    pub reads_refused: u64,
    /// Reads served despite catch-up, under
    /// [`serve_stale`](crate::ClusterConfig::serve_stale).
    pub stale_served: u64,
    /// Stale data requests discarded because a crash ate their
    /// registration.
    pub stale_dropped: u64,
}

/// One node's slice of a [`RunReport`]: everything the rack-scale
/// experiments break down per node.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The node index.
    pub node: usize,
    /// The node's declared role.
    pub role: NodeRole,
    /// Core metrics summed over the node's cores.
    pub metrics: CoreMetrics,
    /// R2P2 statistics summed over the node's pipelines.
    pub r2p2: R2p2Stats,
    /// LightSABRes engine statistics summed over the node's pipelines.
    pub engine: EngineStats,
    /// The node's goodput over the measurement window, in GB/s.
    pub gbps: f64,
    /// Mean routed hops per packet *sent* by this node (fat-tree uplink
    /// queueing penalties included; 0.0 if the node sent nothing) — the
    /// placement-quality metric: a well-placed reader keeps it at the
    /// fabric's minimum.
    pub mean_hops: f64,
    /// The node's full streaming hop/queue counters (packets, hops,
    /// uplink and spine queueing, spine crossings) — what `mean_hops` is
    /// derived from, with the datacenter-tier spine share alongside.
    pub hops: HopStats,
}

impl NodeReport {
    /// 99th-percentile end-to-end latency across the node's cores in
    /// whole ns, from the merged deterministic histogram (`None` if the
    /// node completed nothing — e.g. store nodes).
    pub fn p99_ns(&self) -> Option<u64> {
        self.metrics.p99_ns()
    }
}

/// A grid of independent sweep points, executed in parallel across OS
/// threads (each point builds its own self-contained [`Cluster`], so
/// points never share state) with results collected in input order.
///
/// The thread count resolves, in priority order: an explicit
/// [`Sweep::threads`] call, the `SABRES_THREADS` environment variable,
/// then the machine's available parallelism — always clamped to the number
/// of points.
pub struct Sweep<P> {
    points: Vec<P>,
    threads: Option<usize>,
}

impl<P: Send + Sync> Sweep<P> {
    /// Declares the sweep points.
    pub fn over(points: impl IntoIterator<Item = P>) -> Self {
        Sweep {
            points: points.into_iter().collect(),
            threads: None,
        }
    }

    /// Caps the worker thread count (1 forces a serial run).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// [`Sweep::threads`] from an optional cap (`None` keeps the default
    /// resolution).
    pub fn threads_opt(mut self, n: Option<usize>) -> Self {
        if let Some(n) = n {
            self = self.threads(n);
        }
        self
    }

    /// Number of declared points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn resolve_threads(&self, points: usize) -> usize {
        let n = self.threads.or_else(threads_from_env).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        n.clamp(1, points.max(1))
    }

    /// Runs `f` on every point and returns the results in input order.
    ///
    /// With more than one worker thread, points are pulled from a shared
    /// cursor, so long points overlap short ones; `f` must therefore be
    /// independent per point (true for any function that builds its own
    /// scenario). A panic in any point propagates.
    pub fn map<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        let n = self.points.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.resolve_threads(n);
        if threads <= 1 {
            return self.points.iter().map(f).collect();
        }
        let points = &self.points;
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&points[i]);
                    *slots[i].lock().expect("sweep slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("sweep slot poisoned")
                    .expect("every point produced a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec;

    fn small() -> ClusterConfig {
        ClusterConfig {
            memory_bytes: 4 * 1024 * 1024,
            ..ClusterConfig::default()
        }
    }

    fn one_reader(size: u32) -> ScenarioBuilder {
        ScenarioBuilder::with_config(small())
            .raw_region_sized(1, size, 64)
            .reader_spec(0, 0, spec().store(1).payload(size))
    }

    #[test]
    fn factories_receive_declared_targets() {
        let report = ScenarioBuilder::with_config(small())
            .raw_region_sized(1, 128, 8)
            .reader(0, 0, |targets| {
                assert_eq!(targets.len(), 8);
                assert_eq!(targets[1], Addr::new(128));
                spec()
                    .store(1)
                    .payload(128)
                    .local_buf(Addr::new(1 << 20))
                    .iterations(3)
                    .build(targets)
            })
            .run_for(Time::from_us(20));
        assert_eq!(report.core(0, 0).ops, 3);
        assert!(report.measured() == Time::from_us(20));
    }

    #[test]
    fn scenario_replays_identically_to_hand_wiring() {
        let scenario = one_reader(256).run_for(Time::from_us(40));

        let mut cluster = Cluster::new(small());
        let mem = cluster.node_memory_mut(1);
        let mut targets = Vec::new();
        for i in 0..64u64 {
            mem.write_u64(Addr::new(i * 256), 0);
            targets.push(Addr::new(i * 256));
        }
        cluster.add_workload(0, 0, spec().store(1).payload(256).build(&targets));
        cluster.run_for(Time::from_us(40));

        assert_eq!(scenario.core(0, 0).ops, cluster.metrics(0, 0).ops);
        assert_eq!(
            scenario.mean_latency_ns(0, 0),
            cluster.metrics(0, 0).latency.mean()
        );
        assert_eq!(scenario.r2p2_totals(1).plain_reads, {
            let mut t = R2p2Stats::default();
            for p in 0..4 {
                t.merge(&cluster.r2p2_stats(1, p));
            }
            t.plain_reads
        });
    }

    #[test]
    fn warmup_window_excludes_cold_start() {
        let full = one_reader(512).run_for(Time::from_us(60));
        let windowed = one_reader(512)
            .warmup(Time::from_us(30))
            .measure(Time::from_us(30))
            .run();
        assert_eq!(windowed.sim_time(), Time::from_us(60));
        assert_eq!(windowed.measured(), Time::from_us(30));
        assert!(windowed.core(0, 0).ops > 0);
        assert!(
            windowed.core(0, 0).ops < full.core(0, 0).ops,
            "measurement window must cover fewer ops than the full run"
        );
    }

    #[test]
    fn sweep_parallel_matches_serial_in_order() {
        let run = |size: u32| {
            let r = one_reader(size).run_for(Time::from_us(30));
            (size, r.core(0, 0).ops, r.mean_latency_ns(0, 0))
        };
        let serial = Sweep::over([64u32, 512, 2048]).threads(1).map(|&s| run(s));
        let parallel = Sweep::over([64u32, 512, 2048]).threads(3).map(|&s| run(s));
        assert_eq!(serial, parallel);
        assert_eq!(serial[0].0, 64, "results must come back in input order");
        assert_eq!(serial[2].0, 2048);
    }

    #[test]
    fn multi_node_scenario_reports_per_node() {
        // 4-node rack: readers on the topology's reader nodes, each
        // reading raw targets from its paired store node.
        let mut builder = ScenarioBuilder::new().nodes(4);
        let topo = builder.config().topology.clone();
        assert_eq!(topo.reader_nodes(), vec![0, 1]);
        for &store in &topo.store_nodes() {
            builder = builder.raw_region_sized(store, 256, 32);
        }
        let placements: Vec<(usize, usize)> = topo
            .reader_nodes()
            .into_iter()
            .map(|node| (node, 0))
            .collect();
        let topo_for_factory = topo.clone();
        let rack = builder.config().fabric.topology;
        let report = builder
            .readers_grid_spec(placements, move |node, _core, targets| {
                // Targets are concatenated store-node order: 32 per shard.
                // store_for_reader takes the reader *index*, not the node id.
                let reader_index = topo_for_factory
                    .reader_nodes()
                    .iter()
                    .position(|&r| r == node)
                    .expect("placement is a reader node");
                let store = topo_for_factory.store_for_reader(reader_index, rack);
                let slice = if store == 2 {
                    &targets[..32]
                } else {
                    &targets[32..]
                };
                spec().store(store).payload(256).objects(slice.to_vec())
            })
            .run_for(Time::from_us(30));
        let nodes = report.node_reports();
        assert_eq!(nodes.len(), 4);
        for n in &nodes {
            match n.role {
                crate::config::NodeRole::Reader => {
                    assert!(n.metrics.ops > 0, "reader node {} made no progress", n.node);
                    assert!(n.gbps > 0.0);
                }
                crate::config::NodeRole::Store => {
                    assert!(
                        n.r2p2.plain_reads > 0,
                        "store node {} served no reads",
                        n.node
                    );
                    assert_eq!(n.metrics.ops, 0);
                }
            }
        }
        assert!(report.total_gbps() > 0.0);
        let summed: f64 = nodes.iter().map(|n| n.gbps).sum();
        assert!((report.total_gbps() - summed).abs() < 1e-12);
    }

    #[test]
    fn datacenter_scenario_reports_spine_traffic() {
        // 8 nodes on a 2-rack radix-2 datacenter: reader 0 (rack 0) reads
        // from store 6 (rack 1), so every one of its packets crosses the
        // spine — and the streaming hop counters must say exactly that.
        let report = ScenarioBuilder::with_config(small())
            .nodes(8)
            .datacenter(2, 2, 1)
            .raw_region_sized(6, 256, 32)
            .reader_spec(0, 0, spec().store(6).payload(256))
            .run_for(Time::from_us(30));
        assert!(report.core(0, 0).ops > 0, "cross-rack reads complete");
        let rack_wide = report.hop_stats();
        assert!(rack_wide.packets > 0);
        assert!(rack_wide.spine_crossings > 0);
        let nodes = report.node_reports();
        let reader = &nodes[0].hops;
        assert_eq!(
            reader.spine_crossings, reader.packets,
            "every reader packet crosses the spine"
        );
        assert!((nodes[0].hops.spine_share() - 1.0).abs() < 1e-12);
        assert!(nodes[0].mean_hops >= 5.0, "cross-rack routes are 5 hops");
        // The store's replies cross right back.
        assert_eq!(nodes[6].hops.spine_crossings, nodes[6].hops.packets);
    }

    #[test]
    fn sweep_handles_empty_and_oversubscribed() {
        let empty: Vec<u32> = Sweep::over(std::iter::empty::<u32>()).map(|&x| x);
        assert!(empty.is_empty());
        let out = Sweep::over(0u32..5).threads(64).map(|&x| x * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }
}
