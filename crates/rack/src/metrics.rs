//! Per-core measurement plumbing for the experiment harness.

use sabre_sim::{Histogram, LatencyHistogram, MeanTracker, Time};

/// Latency components the paper's breakdowns distinguish (Figs. 1 and 9a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The soNUMA transfer itself (WQ entry to CQ entry).
    Transfer,
    /// Framework code: lookup, buffer management, bookkeeping.
    Framework,
    /// Application code consuming the (clean) object.
    App,
    /// Software atomicity check + version stripping (baseline only).
    Strip,
}

impl Phase {
    /// All phases, in presentation order.
    pub const ALL: [Phase; 4] = [Phase::Transfer, Phase::Framework, Phase::App, Phase::Strip];

    fn index(self) -> usize {
        match self {
            Phase::Transfer => 0,
            Phase::Framework => 1,
            Phase::App => 2,
            Phase::Strip => 3,
        }
    }
}

/// Metrics one core's workload accumulates.
#[derive(Debug, Clone, Default)]
pub struct CoreMetrics {
    /// Successful (atomic, validated) operations.
    pub ops: u64,
    /// Clean payload bytes delivered by successful operations.
    pub bytes: u64,
    /// Operations retried after an atomicity failure.
    pub retries: u64,
    /// End-to-end latency of successful operations (ns) — the legacy
    /// float histogram the mean-latency tables read. Kept per-core (not
    /// merged), unlike [`CoreMetrics::latency_hist`].
    pub latency: Histogram,
    /// Deterministic integer latency histogram of the same successes —
    /// u64 ns bucket counts with an exact merge, so tail percentiles are
    /// bit-identical at every shard × thread setting. See
    /// [`LatencyHistogram`] for the resolution guarantees.
    pub latency_hist: LatencyHistogram,
    /// Open-loop arrivals that fired while the previous operation was
    /// still in flight (queue buildup; closed-loop workloads keep it 0).
    pub queued_arrivals: u64,
    /// Deepest arrival backlog observed (operations waiting to start).
    pub peak_backlog: u64,
    /// Operations re-issued at another replica after a failover timeout
    /// fired (replicated readers only; see
    /// [`FailoverReader`](crate::workloads::FailoverReader)).
    pub failovers: u64,
    /// Times the reader migrated its preferred replica binding — to a
    /// fallback after the bound replica died, back to a nearer replica
    /// once a probe found it live again, or away from a congested replica
    /// under load-triggered re-placement.
    pub migrations: u64,
    /// Catch-up pulls issued by a recovering writer (one per round of
    /// pulling a peer's write-log region).
    pub catch_up_ops: u64,
    /// Missed writes replayed through the deterministic update path
    /// during catch-up.
    pub replays_applied: u64,
    /// Reads refused by a catching-up replica that this reader re-issued
    /// at the next replica.
    pub stale_refusals: u64,
    /// Total simulated time this core spent catching up — from the first
    /// pull after an outage until the replica rejoined the live set (the
    /// staleness window).
    pub catch_up_ns: u64,
    phases: [MeanTracker; 4],
}

impl CoreMetrics {
    /// Records one successful operation.
    pub fn record_success(&mut self, bytes: u64, latency: Time) {
        self.ops += 1;
        self.bytes += bytes;
        self.latency.record_time(latency);
        self.latency_hist.record_time(latency);
    }

    /// Records one atomicity-failure retry.
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Records an arrival that had to queue behind `depth` already-waiting
    /// operations (open-loop workloads).
    pub fn record_queued(&mut self, depth: u64) {
        self.queued_arrivals += 1;
        self.peak_backlog = self.peak_backlog.max(depth);
    }

    /// Records one failover: a timeout fired and the operation was
    /// re-issued at the next replica.
    pub fn record_failover(&mut self) {
        self.failovers += 1;
    }

    /// Records one replica-binding migration.
    pub fn record_migration(&mut self) {
        self.migrations += 1;
    }

    /// Records one catch-up pull round replaying `replayed` missed writes.
    pub fn record_catch_up(&mut self, replayed: u64) {
        self.catch_up_ops += 1;
        self.replays_applied += replayed;
    }

    /// Records one refused read (the bound replica was catching up).
    pub fn record_stale_refusal(&mut self) {
        self.stale_refusals += 1;
    }

    /// Accumulates time spent catching up (the staleness window).
    pub fn record_catch_up_window(&mut self, window: Time) {
        self.catch_up_ns += window.as_ns() as u64;
    }

    /// Median end-to-end latency in whole ns (deterministic bucket edge).
    pub fn p50_ns(&self) -> Option<u64> {
        self.latency_hist.p50()
    }

    /// 99th-percentile end-to-end latency in whole ns.
    pub fn p99_ns(&self) -> Option<u64> {
        self.latency_hist.p99()
    }

    /// 99.9th-percentile end-to-end latency in whole ns.
    pub fn p999_ns(&self) -> Option<u64> {
        self.latency_hist.p999()
    }

    /// Records the duration of one latency component.
    pub fn record_phase(&mut self, phase: Phase, t: Time) {
        self.phases[phase.index()].record_time(t);
    }

    /// Mean duration of a phase in ns, if sampled.
    pub fn phase_mean_ns(&self, phase: Phase) -> Option<f64> {
        self.phases[phase.index()].mean()
    }

    /// Goodput over `[0, horizon]` in GB/s.
    pub fn gbps(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.bytes as f64 / horizon.as_ns()
    }

    /// Abort rate: retries / (ops + retries).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.ops + self.retries;
        if attempts == 0 {
            0.0
        } else {
            self.retries as f64 / attempts as f64
        }
    }

    /// Resets every counter, histogram and phase tracker to the
    /// just-constructed state — the primitive behind warmup windows: run
    /// the warmup, reset, measure.
    pub fn reset(&mut self) {
        *self = CoreMetrics::default();
    }

    /// Merges another core's metrics into this one (aggregation).
    ///
    /// Counters add, [`CoreMetrics::latency_hist`] merges exactly
    /// (element-wise bucket addition), `queued_arrivals` adds and
    /// `peak_backlog` takes the max — all associative/commutative, so the
    /// aggregate is independent of merge grouping. The legacy float
    /// `latency` histogram and the phase means are kept per-core only
    /// (their float sums would not merge exactly); aggregate callers use
    /// `latency_hist` for distributions.
    pub fn merge(&mut self, other: &CoreMetrics) {
        self.ops += other.ops;
        self.bytes += other.bytes;
        self.retries += other.retries;
        self.latency_hist.merge(&other.latency_hist);
        self.queued_arrivals += other.queued_arrivals;
        self.peak_backlog = self.peak_backlog.max(other.peak_backlog);
        self.failovers += other.failovers;
        self.migrations += other.migrations;
        self.catch_up_ops += other.catch_up_ops;
        self.replays_applied += other.replays_applied;
        self.stale_refusals += other.stale_refusals;
        self.catch_up_ns += other.catch_up_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_and_throughput() {
        let mut m = CoreMetrics::default();
        m.record_success(1000, Time::from_ns(100));
        m.record_success(1000, Time::from_ns(300));
        assert_eq!(m.ops, 2);
        assert_eq!(m.bytes, 2000);
        // 2000 B over 1 us = 2 GB/s.
        assert!((m.gbps(Time::from_us(1)) - 2.0).abs() < 1e-12);
        assert_eq!(m.latency.mean(), Some(200.0));
    }

    #[test]
    fn abort_rate() {
        let mut m = CoreMetrics::default();
        assert_eq!(m.abort_rate(), 0.0);
        m.record_success(64, Time::from_ns(1));
        m.record_retry();
        assert!((m.abort_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phases_tracked_independently() {
        let mut m = CoreMetrics::default();
        m.record_phase(Phase::Transfer, Time::from_ns(100));
        m.record_phase(Phase::Strip, Time::from_ns(50));
        m.record_phase(Phase::Strip, Time::from_ns(150));
        assert_eq!(m.phase_mean_ns(Phase::Transfer), Some(100.0));
        assert_eq!(m.phase_mean_ns(Phase::Strip), Some(100.0));
        assert_eq!(m.phase_mean_ns(Phase::App), None);
    }

    #[test]
    fn reset_returns_to_default() {
        let mut m = CoreMetrics::default();
        m.record_success(1000, Time::from_ns(100));
        m.record_retry();
        m.record_phase(Phase::Strip, Time::from_ns(50));
        m.reset();
        assert_eq!(m.ops, 0);
        assert_eq!(m.bytes, 0);
        assert_eq!(m.retries, 0);
        assert_eq!(m.latency.mean(), None);
        assert_eq!(m.phase_mean_ns(Phase::Strip), None);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = CoreMetrics::default();
        let mut b = CoreMetrics::default();
        a.record_success(10, Time::from_ns(1));
        b.record_success(20, Time::from_ns(1));
        b.record_retry();
        a.merge(&b);
        assert_eq!(a.ops, 2);
        assert_eq!(a.bytes, 30);
        assert_eq!(a.retries, 1);
    }

    #[test]
    fn merge_combines_latency_histograms_and_queueing() {
        let mut a = CoreMetrics::default();
        let mut b = CoreMetrics::default();
        a.record_success(10, Time::from_ns(100));
        a.record_queued(3);
        b.record_success(10, Time::from_ns(900));
        b.record_queued(1);
        b.record_queued(7);
        a.merge(&b);
        assert_eq!(a.latency_hist.count(), 2);
        assert_eq!(a.p999_ns(), Some(900));
        assert_eq!(a.queued_arrivals, 3);
        assert_eq!(a.peak_backlog, 7);
    }

    #[test]
    fn recovery_counters_record_and_merge() {
        let mut a = CoreMetrics::default();
        let mut b = CoreMetrics::default();
        a.record_catch_up(5);
        a.record_catch_up_window(Time::from_us(2));
        b.record_catch_up(3);
        b.record_stale_refusal();
        b.record_stale_refusal();
        a.merge(&b);
        assert_eq!(a.catch_up_ops, 2);
        assert_eq!(a.replays_applied, 8);
        assert_eq!(a.stale_refusals, 2);
        assert_eq!(a.catch_up_ns, 2000);
        a.reset();
        assert_eq!(a.catch_up_ops, 0);
        assert_eq!(a.catch_up_ns, 0);
    }

    #[test]
    fn percentiles_come_from_the_integer_histogram() {
        let mut m = CoreMetrics::default();
        assert_eq!(m.p50_ns(), None);
        for ns in [100u64, 200, 300, 400] {
            m.record_success(1, Time::from_ns(ns));
        }
        let p50 = m.p50_ns().unwrap();
        assert!((200..=224).contains(&p50), "{p50}");
        assert_eq!(m.p99_ns(), Some(400));
    }
}
