//! Full-system assembly: a simulated rack of soNUMA nodes.
//!
//! This crate wires the sans-IO components — [`sabre_sonuma`] pipelines,
//! the [`sabre_core`] LightSABRes engines, the [`sabre_mem`] memory systems
//! and the [`sabre_fabric`] interconnects — into a single deterministic
//! discrete-event simulation, and runs *workload programs* on the simulated
//! cores.
//!
//! The default topology matches the paper: two directly connected 16-core
//! chips (Fig. 6), each with four RGP/RCP backend pairs and four R2P2s
//! across the edge, 2 MB LLC, four DDR4-25.6 channels, and a 100 GBps
//! 35 ns/hop fabric (Table 2). [`ClusterConfig::with_nodes`] (or
//! [`ScenarioBuilder::nodes`](scenario::ScenarioBuilder::nodes)) grows the
//! rack to N nodes with per-node roles ([`Topology`]) on a rack-level 2D
//! mesh, driven by a sharded event loop whose results are bit-identical at
//! every [`ClusterConfig::shards`] value (see [`cluster`]).
//!
//! Experiments are normally *declared* through the [`scenario`] module
//! ([`ScenarioBuilder`] + [`Sweep`]) rather than wired by hand; the
//! low-level [`Cluster`] example below shows what a scenario materializes
//! into.
//!
//! Workloads themselves are *declared* with the [`mod@spec`] module's
//! [`WorkloadSpec`] builder — mechanism, arrival process, key popularity,
//! read/write mix — and placed on cores by the scenario layer.
//!
//! # Example
//!
//! ```
//! use sabre_rack::{Cluster, ClusterConfig, spec, ReadMechanism};
//! use sabre_mem::Addr;
//!
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! // One object of 128 B at address 0 of node 1, version word at offset 0.
//! cluster.node_memory_mut(1).write_u64(Addr::new(0), 0);
//! let reader = spec()
//!     .store(1)
//!     .payload(128)
//!     .mechanism(ReadMechanism::Sabre)
//!     .build(&[Addr::new(0)]);
//! cluster.add_workload(0, 0, reader);
//! cluster.run_for(sabre_sim::Time::from_us(10));
//! assert!(cluster.metrics(0, 0).ops > 0);
//! ```

pub mod cluster;
pub mod config;
pub mod fault;
pub mod metrics;
pub mod scenario;
pub mod spec;
pub mod workload;
pub mod workloads;

pub use cluster::Cluster;
pub use config::{ClusterConfig, NodeRole, PlacementFn, PlacementPolicy, Topology};
pub use fault::{FaultPlan, FaultProfile};
pub use metrics::{CoreMetrics, Phase};
pub use scenario::{NodeReport, RecoveryReport, RunReport, ScenarioBuilder, Sweep};
pub use spec::{spec, Arrivals, Popularity, WorkloadSpec};
pub use workload::{CoreApi, ReadMechanism, Workload};
