//! The discrete-event cluster: nodes, RMCs, memory systems, fabric, cores.
//!
//! Every sans-IO component (pipelines, R2P2s, the LightSABRes engines) is
//! driven from the sharded event loop here. The wiring follows Figs. 5 and
//! 6 of the paper:
//!
//! * a core schedules a WQ entry → its node's RGP backend unrolls it into
//!   per-block packets (one per RMC cycle) onto the fabric;
//! * the destination R2P2 services requests against the node's LLC/DRAM at
//!   its issue bandwidth, snooping coherence invalidations from local
//!   writer stores, DMA writes and LLC evictions;
//! * replies return to the source RCP, which DMA-writes payloads into the
//!   local buffer and posts the completion (with the SABRe success bit) to
//!   the issuing core.
//!
//! Functional state (bytes) changes at the simulated instant each access is
//! serviced, so racing readers and writers interleave at cache-block
//! granularity exactly as the paper's atomicity argument requires.
//!
//! # The sharded, thread-parallel event loop
//!
//! Every node owns its own event queue; nodes interact *only* through
//! fabric packets, whose earliest possible delivery lags their send by the
//! fabric lookahead ([`sabre_fabric::FabricConfig::min_latency`], one hop
//! = 35 ns). The loop therefore advances in lookahead-sized windows: each
//! shard (a contiguous partition of the nodes, [`ClusterConfig::shards`])
//! drains its nodes' queues up to the window end while outbound packets
//! accumulate in per-source [`sabre_fabric::Outbox`]es, and at the window
//! barrier all cross-node messages are merged into the destination queues
//! in an order determined only by `(arrival time, source, send order)`.
//! Because neither the shard grouping nor the intra-window advance order
//! can influence any node's observable inputs, the simulation is
//! **bit-identical for every shard count**.
//!
//! That same property makes thread dispatch safe: within one window the
//! shards share nothing — each owns its nodes' state, its source-side
//! fabric ports and its outboxes — so [`Cluster::run_until`] drives them
//! from a pool of OS worker threads when [`ClusterConfig::threads`] opts
//! in (the default is the zero-overhead serial loop — sweeps already
//! parallelize across clusters, and nesting pools oversubscribes).
//! Workers claim shards from a shared cursor, synchronize at the window
//! barrier where the single coordinator runs the deterministic merge,
//! and the result stays bit-identical at **every thread count** too —
//! the torture and equivalence tests pin `threads ∈ {1, 2, shards}`
//! down. Each node's queue is a [`CalendarQueue`] whose bucket width is
//! the lookahead, so a window is drained as one pre-sorted batch instead
//! of per-event binary heap pops.
//!
//! # O(active) window scheduling
//!
//! At datacenter scale most nodes are idle in most windows (readers bind
//! to a handful of stores), so scanning every node's queue per window —
//! once to find the next event, once to drain — would make window cost
//! O(nodes) regardless of activity. Instead each shard keeps a min-heap
//! of **lazily validated hints** `(time, node)`: one is pushed whenever
//! an event lands in a node's queue from outside its own drain (the
//! initial seed, the window merge), and each drained node re-hints its
//! next pending event. A popped hint whose node's queue head has moved
//! (the event was already consumed) is discarded or refreshed — so both
//! the next-event probe and the window drain touch only nodes that
//! actually have pending events, and hint-processing order cannot leak
//! into results because nodes are independent within a window (every
//! handler schedules onto the node it runs on; debug builds verify the
//! drain left nothing behind).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use sabre_fabric::{Fabric, FabricPort, Outbox, ShardRouter};
use sabre_mem::{Addr, BlockAddr, Llc, MemSystem, NodeMemory, ServiceLevel, BLOCK_BYTES};
use sabre_sim::{CalendarQueue, FifoServer, SimRng, Time};
use sabre_sonuma::r2p2::{R2p2Action, R2p2Stats};
use sabre_sonuma::{
    Block, CqEntry, MemToken, OpKind, Packet, PacketKind, R2p2, SourcePipeline, WqEntry,
};
use sabre_sw::{CpuCostModel, ReaderLockWord};

use crate::config::ClusterConfig;
use crate::metrics::CoreMetrics;
use crate::workload::Workload;

#[derive(Debug)]
enum Event {
    /// A packet enters the fabric.
    FabricSend(Packet),
    /// A packet arrives at its destination node.
    PacketArrive(Packet),
    /// An R2P2's issue pump fires.
    Pump { node: u8, pipe: u8 },
    /// An R2P2-issued block read completed.
    ReadDone {
        node: u8,
        pipe: u8,
        token: MemToken,
        block: BlockAddr,
    },
    /// An R2P2-issued one-sided write completed (apply + ack).
    WriteDone {
        node: u8,
        pipe: u8,
        token: MemToken,
        block: BlockAddr,
        data: Block,
    },
    /// A reader-lock acquire RMW completed.
    LockDone {
        node: u8,
        pipe: u8,
        token: MemToken,
        version_addr: Addr,
    },
    /// A reader-lock release reached memory.
    ReleaseDone { node: u8, version_addr: Addr },
    /// A remote write-lock CAS reached memory.
    CasDone {
        node: u8,
        pipe: u8,
        token: MemToken,
        version_addr: Addr,
    },
    /// A remote unlock reached memory.
    UnlockDone {
        node: u8,
        pipe: u8,
        token: MemToken,
        version_addr: Addr,
    },
    /// A sleeping workload wakes.
    Wake { node: u8, core: u8 },
    /// A completion reaches its issuing core.
    Complete { node: u8, core: u8, cq: CqEntry },
    /// An inbound RPC request reaches its target core.
    RpcDeliver {
        node: u8,
        core: u8,
        src_node: u8,
        src_core: u8,
        tag: u64,
        bytes: u32,
    },
    /// An RPC reply reaches the core that sent the request.
    RpcReplyDeliver {
        node: u8,
        core: u8,
        tag: u64,
        bytes: u32,
    },
}

/// Everything one node owns: simulated hardware, functional memory, the
/// node's event queue, and the per-core workload/measurement state. A
/// shard is a contiguous slice of these — the unit one worker thread
/// advances without synchronization.
struct NodeCtx {
    memory: NodeMemory,
    llc: Llc,
    mem_sys: MemSystem,
    r2p2s: Vec<R2p2>,
    r2p2_issue: Vec<FifoServer>,
    pump_on: Vec<bool>,
    pipelines: Vec<SourcePipeline>,
    rgp_unroll: Vec<FifoServer>,
    /// This node's own event queue, bucketed by the fabric lookahead so
    /// each window drains as one sorted batch.
    queue: CalendarQueue<Event>,
    /// Monotonicity watermark of the node's local event time; during
    /// event handling this *is* the current simulated instant.
    now: Time,
    workloads: Vec<Option<Box<dyn Workload>>>,
    metrics: Vec<CoreMetrics>,
    rngs: Vec<SimRng>,
    wq_seq: Vec<u64>,
    delivered_packets: u64,
    dropped_packets: u64,
}

/// The simulated rack. See the [crate docs](crate) for an example.
pub struct Cluster {
    cfg: ClusterConfig,
    now: Time,
    fabric: Fabric,
    router: ShardRouter<Event>,
    nodes: Vec<NodeCtx>,
    started: bool,
}

impl Cluster {
    /// Builds a rack from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ClusterConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid cluster configuration: {e}");
        }
        let root_rng = SimRng::seed(cfg.seed);
        let lookahead = cfg.fabric.min_latency();
        let nodes = (0..cfg.nodes)
            .map(|n| NodeCtx {
                memory: NodeMemory::new(cfg.memory_bytes),
                llc: Llc::with_geometry(cfg.llc_bytes, cfg.llc_ways),
                mem_sys: MemSystem::new(cfg.mem_timing.clone()),
                r2p2s: (0..cfg.rmc_backends)
                    .map(|p| {
                        let mut r2p2 = R2p2::new(n as u8, p as u8, cfg.lightsabres.clone());
                        if !cfg.fault.is_empty() {
                            // A crash can eat a registration whose data
                            // requests outlive the outage; those are stale
                            // traffic to discard, not protocol violations.
                            r2p2 = r2p2.tolerating_stale();
                        }
                        if cfg.serve_stale {
                            r2p2 = r2p2.serving_stale();
                        }
                        r2p2
                    })
                    .collect(),
                r2p2_issue: vec![FifoServer::new(); cfg.rmc_backends],
                pump_on: vec![false; cfg.rmc_backends],
                pipelines: (0..cfg.rmc_backends)
                    .map(|p| SourcePipeline::new(n as u8, p as u8, cfg.rmc_backends as u8))
                    .collect(),
                rgp_unroll: vec![FifoServer::new(); cfg.rmc_backends],
                queue: CalendarQueue::new(lookahead),
                now: Time::ZERO,
                workloads: (0..cfg.cores_per_node).map(|_| None).collect(),
                metrics: vec![CoreMetrics::default(); cfg.cores_per_node],
                rngs: (0..cfg.cores_per_node)
                    .map(|c| root_rng.fork((n * 1000 + c) as u64))
                    .collect(),
                wq_seq: vec![0; cfg.cores_per_node],
                delivered_packets: 0,
                dropped_packets: 0,
            })
            .collect();
        Cluster {
            fabric: Fabric::new(cfg.fabric.clone()),
            router: ShardRouter::new(cfg.nodes),
            nodes,
            now: Time::ZERO,
            started: false,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Mutable access to a node's functional memory — for initializing data
    /// stores *before* the simulation runs (no invalidations are raised).
    pub fn node_memory_mut(&mut self, node: usize) -> &mut NodeMemory {
        &mut self.nodes[node].memory
    }

    /// Read access to a node's functional memory.
    pub fn node_memory(&self, node: usize) -> &NodeMemory {
        &self.nodes[node].memory
    }

    /// Pre-warms the LLC with `range` (marks blocks resident, as a prior
    /// pass over the data would).
    pub fn warm_llc(&mut self, node: usize, base: Addr, bytes: u64) {
        for b in sabre_mem::BlockRange::covering(base, bytes).iter() {
            let _ = self.nodes[node].llc.access(b);
        }
    }

    /// Installs a workload on a core.
    ///
    /// # Panics
    ///
    /// Panics if the core already has one or is out of range.
    pub fn add_workload(&mut self, node: usize, core: usize, w: Box<dyn Workload>) {
        assert!(
            self.nodes[node].workloads[core].is_none(),
            "core {node}.{core} already has a workload"
        );
        self.nodes[node].workloads[core] = Some(w);
    }

    /// Metrics of one core.
    pub fn metrics(&self, node: usize, core: usize) -> &CoreMetrics {
        &self.nodes[node].metrics[core]
    }

    /// Aggregated (summed) metrics over all cores of `node`.
    pub fn node_metrics(&self, node: usize) -> CoreMetrics {
        let mut total = CoreMetrics::default();
        for m in &self.nodes[node].metrics {
            total.merge(m);
        }
        total
    }

    /// Resets every measurement sink — per-core [`CoreMetrics`], per-pipe
    /// R2P2 counters and LightSABRes engine counters — without disturbing
    /// simulation state (functional memory, LLC contents, in-flight
    /// events). This is the warmup-window primitive: run the warmup phase,
    /// reset, then measure.
    pub fn reset_metrics(&mut self) {
        for node in &mut self.nodes {
            for m in &mut node.metrics {
                m.reset();
            }
            for r2p2 in &mut node.r2p2s {
                r2p2.reset_stats();
            }
        }
    }

    /// R2P2 statistics of one destination pipeline.
    pub fn r2p2_stats(&self, node: usize, pipe: usize) -> R2p2Stats {
        self.nodes[node].r2p2s[pipe].stats()
    }

    /// LightSABRes engine statistics of one destination pipeline.
    pub fn engine_stats(&self, node: usize, pipe: usize) -> sabre_core::EngineStats {
        self.nodes[node].r2p2s[pipe].engine().stats()
    }

    /// The inter-node fabric (topology, per-link byte/packet accounting).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Packets delivered to destination pipelines so far. Together with
    /// [`Fabric::packets_total`] and [`Cluster::packets_dropped`] this
    /// exposes the conservation invariant: every sent packet is delivered
    /// or dropped exactly once (the difference is the packets still queued
    /// for a future delivery instant).
    pub fn packets_delivered(&self) -> u64 {
        self.nodes.iter().map(|n| n.delivered_packets).sum()
    }

    /// Packets discarded by the [`ClusterConfig::fault`] plan — traffic to,
    /// from, or across a crashed node or cut link — counted at the
    /// destination node's window merge. Zero without a fault plan.
    pub fn packets_dropped(&self) -> u64 {
        self.nodes.iter().map(|n| n.dropped_packets).sum()
    }

    /// Worker threads a run would use: the explicit
    /// [`ClusterConfig::threads`] clamped to the shard count, else 1.
    ///
    /// In-cluster threading is deliberately opt-in: sweeps already
    /// parallelize across points (one cluster per worker), so a
    /// per-cluster pool on top would nest — `sweep workers × shard
    /// workers` threads — and the window barrier costs two
    /// synchronizations per 35 ns lookahead window, which only pays off
    /// when one big sharded rack has a host core to itself.
    fn resolve_threads(&self, shards: usize) -> usize {
        self.cfg.threads.map_or(1, |n| n.clamp(1, shards))
    }

    /// Runs until `deadline` (events at exactly `deadline` still fire).
    ///
    /// The loop advances in fabric-lookahead windows (see the
    /// [module docs](self) on sharding and threading): each window, every
    /// shard drains its nodes' queues up to the window end — concurrently
    /// when more than one worker thread is resolved — then the cross-node
    /// packets generated meanwhile are merged into destination queues in
    /// deterministic order. The result is bit-identical for every
    /// [`ClusterConfig::shards`] and [`ClusterConfig::threads`] value.
    pub fn run_until(&mut self, deadline: Time) {
        let lookahead = self.cfg.fabric.min_latency();
        let shards = self.cfg.shards.clamp(1, self.cfg.nodes);
        let per_shard = self.cfg.nodes.div_ceil(shards).max(1);
        let threads = self.resolve_threads(shards);
        let start_needed = !self.started;
        self.started = true;

        // Split the cluster into per-shard execution contexts: disjoint
        // slices of nodes, their source-side fabric ports, their outboxes
        // and their active-node hint heaps, plus the shared read-only
        // configuration.
        let cfg = &self.cfg;
        let (_, ports) = self.fabric.split();
        let outboxes = self.router.outboxes_mut();
        let mut heaps: Vec<BinaryHeap<Reverse<(Time, usize)>>> = (0..cfg.nodes.div_ceil(per_shard))
            .map(|_| BinaryHeap::new())
            .collect();
        let mut tasks: Vec<ShardExec<'_>> = self
            .nodes
            .chunks_mut(per_shard)
            .zip(ports.chunks_mut(per_shard))
            .zip(outboxes.chunks_mut(per_shard))
            .zip(heaps.iter_mut())
            .enumerate()
            .map(|(i, (((nodes, ports), outboxes), active))| ShardExec {
                cfg,
                base: i * per_shard,
                nodes,
                ports,
                outboxes,
                active,
            })
            .collect();

        if start_needed {
            // Deliver on_start in deterministic (node, core) order before
            // any window runs.
            for t in tasks.iter_mut() {
                let base = t.base;
                for local in 0..t.nodes.len() {
                    for core in 0..cfg.cores_per_node {
                        t.dispatch(base + local, core, |w, api| w.on_start(api));
                    }
                }
            }
        }

        // Seed the hint heaps: one O(nodes) pass per run (not per window)
        // covers both events left pending by a previous run and anything
        // on_start just scheduled.
        for t in tasks.iter_mut() {
            for i in 0..t.nodes.len() {
                if let Some(head) = t.nodes[i].queue.peek_time() {
                    t.active.push(Reverse((head, i)));
                }
            }
        }

        if threads <= 1 || tasks.len() <= 1 {
            Self::run_windows_serial(&mut tasks, per_shard, lookahead, deadline);
        } else {
            Self::run_windows_parallel(
                tasks.as_mut_slice(),
                per_shard,
                lookahead,
                deadline,
                threads,
            );
        }

        self.now = deadline;
        for node in &mut self.nodes {
            node.now = deadline;
        }
    }

    /// The single-threaded window loop (also the `shards == 1` fast path).
    fn run_windows_serial(
        tasks: &mut [ShardExec<'_>],
        per_shard: usize,
        lookahead: Time,
        deadline: Time,
    ) {
        // The earliest pending event anywhere decides each window; quiet
        // stretches are skipped in one step.
        while let Some(next) = tasks.iter_mut().filter_map(ShardExec::next_event).min() {
            if next > deadline {
                break;
            }
            let window_end = deadline.min(next + lookahead);
            for t in tasks.iter_mut() {
                t.advance(window_end);
            }
            let mut refs: Vec<&mut ShardExec<'_>> = tasks.iter_mut().collect();
            Self::merge_deliver(&mut refs, per_shard, window_end);
        }
    }

    /// The thread-parallel window loop: a pool of `threads` workers claims
    /// shards from a shared cursor each window; the coordinator (this
    /// thread) computes windows and runs the deterministic merge at each
    /// barrier. Bit-identical to the serial loop by construction — the
    /// merge order never depends on which worker advanced which shard.
    fn run_windows_parallel(
        tasks: &mut [ShardExec<'_>],
        per_shard: usize,
        lookahead: Time,
        deadline: Time,
        threads: usize,
    ) {
        let n_tasks = tasks.len();
        let slots: Vec<Mutex<&mut ShardExec<'_>>> = tasks.iter_mut().map(Mutex::new).collect();
        let barrier = Barrier::new(threads + 1);
        let window_ps = AtomicU64::new(0);
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // A worker panic (workload assertion, poisoned shard) is stashed
        // here and re-raised by the coordinator after the pool unblocks —
        // a raw propagation would leave the others waiting at the barrier
        // forever.
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let window_end = Time::from_ps(window_ps.load(Ordering::Acquire));
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| loop {
                        let i = cursor.fetch_add(1, Ordering::AcqRel);
                        if i >= n_tasks {
                            break;
                        }
                        slots[i].lock().expect("shard poisoned").advance(window_end);
                    }));
                    if let Err(p) = outcome {
                        let mut slot = match panicked.lock() {
                            Ok(s) => s,
                            Err(e) => e.into_inner(),
                        };
                        slot.get_or_insert(p);
                    }
                    barrier.wait();
                });
            }

            // Coordinator. Any panic on this side (a merge debug-assert,
            // a poisoned shard) must also release the parked workers
            // before unwinding, or thread::scope's implicit join would
            // hang on the barrier forever — hence `abort`.
            let abort = |p: Box<dyn std::any::Any + Send>| -> ! {
                stop.store(true, Ordering::Release);
                barrier.wait();
                panic::resume_unwind(p);
            };
            let next_event = |slots: &[Mutex<&mut ShardExec<'_>>]| {
                slots
                    .iter()
                    .filter_map(|s| s.lock().expect("shard poisoned").next_event())
                    .min()
            };
            let mut next = match panic::catch_unwind(AssertUnwindSafe(|| next_event(&slots))) {
                Ok(n) => n,
                Err(p) => abort(p),
            };
            loop {
                let window_end = match next {
                    Some(n) if n <= deadline => deadline.min(n + lookahead),
                    _ => {
                        stop.store(true, Ordering::Release);
                        barrier.wait();
                        break;
                    }
                };
                window_ps.store(window_end.as_ps(), Ordering::Release);
                cursor.store(0, Ordering::Release);
                barrier.wait(); // workers advance their claimed shards
                barrier.wait(); // window done
                let p = {
                    let mut slot = match panicked.lock() {
                        Ok(s) => s,
                        Err(e) => e.into_inner(),
                    };
                    slot.take()
                };
                if let Some(p) = p {
                    abort(p);
                }
                // Workers are parked at the window-start barrier, so the
                // coordinator owns every shard: merge cross-node traffic
                // and pick the next window.
                let merged = panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut guards: Vec<_> = slots
                        .iter()
                        .map(|s| s.lock().expect("shard poisoned"))
                        .collect();
                    let mut refs: Vec<&mut ShardExec<'_>> =
                        guards.iter_mut().map(|g| &mut ***g).collect();
                    Self::merge_deliver(&mut refs, per_shard, window_end);
                    refs.iter_mut().filter_map(|t| t.next_event()).min()
                }));
                next = match merged {
                    Ok(n) => n,
                    Err(p) => abort(p),
                };
            }
        });
    }

    /// The window barrier: drains every shard's outboxes and delivers the
    /// cross-node messages into destination queues in the deterministic
    /// merge order `(arrival time, source, per-source send order)`.
    ///
    /// This is also where the [`FaultPlan`](crate::fault::FaultPlan) bites:
    /// a packet whose source node, destination node or link is down at the
    /// arrival instant is counted and discarded instead of scheduled. The
    /// decision is a pure function of the (static) plan and the packet's
    /// `(src, dst, arrival)` tuple, so injection cannot perturb the
    /// shard × thread bit-identity the merge order guarantees.
    fn merge_deliver(tasks: &mut [&mut ShardExec<'_>], per_shard: usize, window_end: Time) {
        let cfg = tasks[0].cfg;
        let faults = !cfg.fault.is_empty();
        let merged =
            ShardRouter::merge_sorted(tasks.iter_mut().flat_map(|t| t.outboxes.iter_mut()));
        for (at, dst, ev) in merged {
            debug_assert!(
                at >= window_end,
                "fabric message outran the lookahead window"
            );
            let ti = dst / per_shard;
            let task = &mut *tasks[ti];
            let local = dst - ti * per_shard;
            if faults {
                if let Event::PacketArrive(pkt) = &ev {
                    if cfg
                        .fault
                        .drops_packet(pkt.src_node as usize, pkt.dst_node as usize, at)
                    {
                        task.nodes[local].dropped_packets += 1;
                        continue;
                    }
                }
            }
            task.nodes[local].queue.schedule(at, ev);
            // Hint the destination shard so the O(active) window loop will
            // visit this node even if it was idle before the delivery.
            task.active.push(Reverse((at, local)));
        }
    }

    /// Runs for `duration` more simulated time.
    pub fn run_for(&mut self, duration: Time) {
        self.run_until(self.now + duration);
    }
}

/// One shard's execution context: the shared configuration plus mutable
/// ownership of a contiguous node range, those nodes' fabric ports and
/// outboxes. All event handling happens here, always against the state of
/// exactly one node (plus its source-owned port/outbox) — which is what
/// makes shards independently advanceable from worker threads.
struct ShardExec<'a> {
    cfg: &'a ClusterConfig,
    /// Global index of `nodes[0]`.
    base: usize,
    nodes: &'a mut [NodeCtx],
    ports: &'a mut [FabricPort],
    outboxes: &'a mut [Outbox<Event>],
    /// Lazily validated `(time, local node)` hints for nodes with pending
    /// events — what makes window scheduling O(active nodes) instead of
    /// O(nodes) (see the [module docs](self)). A node may carry several
    /// hints (the merge pushes one per delivered message); stale ones are
    /// discarded or refreshed against the queue head when popped.
    active: &'a mut BinaryHeap<Reverse<(Time, usize)>>,
}

impl<'a> ShardExec<'a> {
    /// Re-borrows the context with a shorter lifetime (for [`CoreApi`]).
    fn reborrow(&mut self) -> ShardExec<'_> {
        ShardExec {
            cfg: self.cfg,
            base: self.base,
            nodes: self.nodes,
            ports: self.ports,
            outboxes: self.outboxes,
            active: self.active,
        }
    }

    fn node_ref(&self, node: usize) -> &NodeCtx {
        &self.nodes[node - self.base]
    }

    fn node_mut(&mut self, node: usize) -> &mut NodeCtx {
        &mut self.nodes[node - self.base]
    }

    /// Earliest pending event over this shard's nodes.
    ///
    /// Consults only the hint heap — O(stale hints) amortized, not
    /// O(nodes). A stale hint (its node's queue head moved later, or the
    /// queue drained) is discarded or refreshed in place; a fresh one is
    /// the shard's earliest event, because every queue head is covered by
    /// a hint at or before it (see the module docs).
    fn next_event(&mut self) -> Option<Time> {
        while let Some(&Reverse((t, i))) = self.active.peek() {
            match self.nodes[i].queue.peek_time() {
                Some(actual) if actual == t => return Some(t),
                Some(actual) => {
                    debug_assert!(actual > t, "queue head moved earlier without a hint");
                    self.active.pop();
                    self.active.push(Reverse((actual, i)));
                }
                None => {
                    self.active.pop();
                }
            }
        }
        None
    }

    /// Advances every node of this shard with work in the current window.
    /// Only this shard's state is touched, and only nodes named by a hint
    /// with `time <= window_end` are visited — idle nodes cost nothing.
    fn advance(&mut self, window_end: Time) {
        while let Some(&Reverse((t, i))) = self.active.peek() {
            if t > window_end {
                break;
            }
            self.active.pop();
            // A stale hint (the node was already drained under a sibling
            // hint this window, or the hinted event was consumed earlier)
            // is discarded without a re-push: the drain that left the
            // node's current head as head pushed a hint for it, so
            // coverage holds and duplicates cannot accumulate.
            match self.nodes[i].queue.peek_time() {
                Some(h) if h <= window_end => {}
                _ => continue,
            }
            // Drain the node fully: handlers only ever schedule follow-up
            // work onto the node they run on, so the inner loop sees every
            // in-window event this node will have, and no other node's
            // queue grows while we are here.
            while let Some(t) = self.nodes[i].queue.peek_time() {
                if t > window_end {
                    break;
                }
                let (t, ev) = self.nodes[i].queue.pop().expect("peeked");
                debug_assert!(t >= self.nodes[i].now, "node time went backwards");
                self.nodes[i].now = t;
                self.handle(ev);
            }
            self.nodes[i].now = window_end;
            if let Some(head) = self.nodes[i].queue.peek_time() {
                self.active.push(Reverse((head, i)));
            }
        }
        // Safety net for the node-locality invariant the skip relies on:
        // in debug builds, verify no node kept an event inside the window
        // (which would mean a handler scheduled onto a foreign node and
        // the hint heap missed it).
        #[cfg(debug_assertions)]
        for n in self.nodes.iter_mut() {
            if let Some(t) = n.queue.peek_time() {
                debug_assert!(
                    t > window_end,
                    "a node with in-window work was skipped (cross-node schedule?)"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Schedules an event on `node`'s own queue (node-local work only;
    /// cross-node traffic goes through the fabric and the outboxes).
    fn schedule_at(&mut self, node: usize, at: Time, ev: Event) {
        self.node_mut(node).queue.schedule(at, ev);
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::FabricSend(pkt) => {
                // Processed at the source node: the directed link servers
                // of node `src` are owned by its shard. Delivery crosses
                // the shard boundary through the source's outbox.
                let (src, dst) = (pkt.src_node as usize, pkt.dst_node as usize);
                let now = self.node_ref(src).now;
                let arrival = self.ports[src - self.base].send(
                    &self.cfg.fabric,
                    now,
                    dst,
                    pkt.kind.payload_bytes(),
                );
                self.outboxes[src - self.base].push(dst, arrival, Event::PacketArrive(pkt));
            }
            Event::PacketArrive(pkt) => self.on_packet_arrive(pkt),
            Event::Pump { node, pipe } => self.on_pump(node, pipe),
            Event::ReadDone {
                node,
                pipe,
                token,
                block,
            } => {
                let n = self.node_mut(node as usize);
                let data = Block(n.memory.read_block(block));
                let actions = n.r2p2s[pipe as usize].on_mem_reply(token, data);
                self.run_r2p2_actions(node, pipe, actions);
                self.schedule_pump(node, pipe);
            }
            Event::WriteDone {
                node,
                pipe,
                token,
                block,
                data,
            } => {
                self.apply_store(node as usize, block, &data.0);
                let actions =
                    self.node_mut(node as usize).r2p2s[pipe as usize].on_mem_write_done(token);
                self.run_r2p2_actions(node, pipe, actions);
                self.schedule_pump(node, pipe);
            }
            Event::LockDone {
                node,
                pipe,
                token,
                version_addr,
            } => {
                let n = node as usize;
                let acquired =
                    ReaderLockWord::try_shared_acquire(&mut self.node_mut(n).memory, version_addr);
                // Deliver the outcome to the acquiring engine before the
                // RMW's invalidation fans out: the requester owns the line
                // it just modified, so its own stream buffer must not treat
                // the acquisition as a foreign write (other R2P2s' SABRes
                // on the object still see it — real reader-reader
                // interference).
                let actions = self.node_mut(n).r2p2s[pipe as usize].on_lock_reply(token, acquired);
                if acquired {
                    self.broadcast_inval(n, version_addr.block());
                }
                self.run_r2p2_actions(node, pipe, actions);
                self.schedule_pump(node, pipe);
            }
            Event::ReleaseDone { node, version_addr } => {
                let n = node as usize;
                ReaderLockWord::shared_release(&mut self.node_mut(n).memory, version_addr);
                self.broadcast_inval(n, version_addr.block());
            }
            Event::CasDone {
                node,
                pipe,
                token,
                version_addr,
            } => {
                let n = node as usize;
                let v = sabre_sw::VersionWord::load(&self.node_ref(n).memory, version_addr);
                let acquired = !v.is_locked();
                if acquired {
                    v.locked().store(&mut self.node_mut(n).memory, version_addr);
                    self.broadcast_inval(n, version_addr.block());
                }
                let actions = self.node_mut(n).r2p2s[pipe as usize].on_cas_done(token, acquired);
                self.run_r2p2_actions(node, pipe, actions);
                self.schedule_pump(node, pipe);
            }
            Event::UnlockDone {
                node,
                pipe,
                token,
                version_addr,
            } => {
                let n = node as usize;
                let v = sabre_sw::VersionWord::load(&self.node_ref(n).memory, version_addr);
                v.unlocked()
                    .store(&mut self.node_mut(n).memory, version_addr);
                self.broadcast_inval(n, version_addr.block());
                let actions = self.node_mut(n).r2p2s[pipe as usize].on_unlock_done(token);
                self.run_r2p2_actions(node, pipe, actions);
                self.schedule_pump(node, pipe);
            }
            Event::Wake { node, core } => {
                self.dispatch(node as usize, core as usize, |w, api| w.on_wake(api));
            }
            Event::Complete { node, core, cq } => {
                self.dispatch(node as usize, core as usize, |w, api| {
                    w.on_completion(api, cq)
                });
            }
            Event::RpcDeliver {
                node,
                core,
                src_node,
                src_core,
                tag,
                bytes,
            } => {
                self.dispatch(node as usize, core as usize, |w, api| {
                    w.on_rpc(api, src_node, src_core, tag, bytes)
                });
            }
            Event::RpcReplyDeliver {
                node,
                core,
                tag,
                bytes,
            } => {
                self.dispatch(node as usize, core as usize, |w, api| {
                    w.on_rpc_reply(api, tag, bytes)
                });
            }
        }
    }

    fn on_packet_arrive(&mut self, pkt: Packet) {
        let node = pkt.dst_node as usize;
        self.node_mut(node).delivered_packets += 1;
        match pkt.kind {
            PacketKind::ReadReq { .. }
            | PacketKind::WriteReq { .. }
            | PacketKind::CasReq { .. }
            | PacketKind::UnlockReq { .. }
            | PacketKind::SabreReg { .. }
            | PacketKind::SabreReadReq { .. }
            | PacketKind::WfReadReq { .. }
            | PacketKind::OhReadReq { .. }
            | PacketKind::CatchUpReq { .. } => {
                let pipe = pkt.dst_pipe as usize;
                if self.node_mut(node).r2p2s[pipe].on_packet(&pkt) {
                    self.schedule_pump(pkt.dst_node, pkt.dst_pipe);
                }
            }
            PacketKind::ReadReply { .. }
            | PacketKind::SabreReply { .. }
            | PacketKind::WriteAck { .. }
            | PacketKind::CasReply { .. }
            | PacketKind::UnlockAck { .. }
            | PacketKind::SabreValidation { .. }
            | PacketKind::CatchUpReply { .. }
            | PacketKind::ReadRefused { .. } => {
                let pipe = pkt.dst_pipe as usize;
                let (write, done) = self.node_mut(node).pipelines[pipe].on_reply(&pkt);
                if let Some(w) = write {
                    // DMA the payload into the local buffer (allocates into
                    // the LLC like DDIO, raising any eviction invalidations).
                    self.apply_store(node, w.addr.block(), &w.data.0);
                }
                if let Some(done) = done {
                    let core = (done.wq_id >> 32) as u8;
                    let at = self.node_ref(node).now + self.cfg.completion_latency;
                    self.schedule_at(
                        node,
                        at,
                        Event::Complete {
                            node: pkt.dst_node,
                            core,
                            cq: done.into_cq_entry(),
                        },
                    );
                }
            }
            PacketKind::RpcReq { tag, bytes } => {
                let at = self.node_ref(node).now;
                self.schedule_at(
                    node,
                    at,
                    Event::RpcDeliver {
                        node: pkt.dst_node,
                        core: pkt.dst_pipe,
                        src_node: pkt.src_node,
                        src_core: pkt.src_pipe,
                        tag,
                        bytes,
                    },
                );
            }
            PacketKind::RpcReply { tag, bytes } => {
                let at = self.node_ref(node).now;
                self.schedule_at(
                    node,
                    at,
                    Event::RpcReplyDeliver {
                        node: pkt.dst_node,
                        core: pkt.dst_pipe,
                        tag,
                        bytes,
                    },
                );
            }
        }
    }

    fn on_pump(&mut self, node: u8, pipe: u8) {
        let n = node as usize;
        let p = pipe as usize;
        let interval = self.cfg.r2p2_issue_interval();
        let ctx = self.node_mut(n);
        ctx.pump_on[p] = false;
        let Some(action) = ctx.r2p2s[p].next_issue() else {
            return; // re-armed by the next state-changing event
        };
        let now = ctx.now;
        ctx.r2p2_issue[p].admit(now, interval);
        match action {
            R2p2Action::MemRead { token, block, .. } => {
                let level = self.llc_touch(n, block);
                let ctx = self.node_mut(n);
                let done = ctx.mem_sys.access(now, block, level);
                self.schedule_at(
                    n,
                    done,
                    Event::ReadDone {
                        node,
                        pipe,
                        token,
                        block,
                    },
                );
            }
            R2p2Action::MemWrite { token, block, data } => {
                let level = self.llc_touch(n, block);
                let done = self.node_mut(n).mem_sys.access(now, block, level);
                self.schedule_at(
                    n,
                    done,
                    Event::WriteDone {
                        node,
                        pipe,
                        token,
                        block,
                        data,
                    },
                );
            }
            R2p2Action::LockRmw {
                token,
                version_addr,
            } => {
                let level = self.llc_touch(n, version_addr.block());
                let done = self
                    .node_mut(n)
                    .mem_sys
                    .access(now, version_addr.block(), level);
                self.schedule_at(
                    n,
                    done,
                    Event::LockDone {
                        node,
                        pipe,
                        token,
                        version_addr,
                    },
                );
            }
            R2p2Action::WriterCas {
                token,
                version_addr,
            } => {
                let level = self.llc_touch(n, version_addr.block());
                let done = self
                    .node_mut(n)
                    .mem_sys
                    .access(now, version_addr.block(), level);
                self.schedule_at(
                    n,
                    done,
                    Event::CasDone {
                        node,
                        pipe,
                        token,
                        version_addr,
                    },
                );
            }
            R2p2Action::WriterUnlock {
                token,
                version_addr,
            } => {
                let level = self.llc_touch(n, version_addr.block());
                let done = self
                    .node_mut(n)
                    .mem_sys
                    .access(now, version_addr.block(), level);
                self.schedule_at(
                    n,
                    done,
                    Event::UnlockDone {
                        node,
                        pipe,
                        token,
                        version_addr,
                    },
                );
            }
            R2p2Action::LockRelease { version_addr } => {
                let level = self.llc_touch(n, version_addr.block());
                let done = self
                    .node_mut(n)
                    .mem_sys
                    .access(now, version_addr.block(), level);
                self.schedule_at(n, done, Event::ReleaseDone { node, version_addr });
            }
            R2p2Action::Send(pkt) => {
                self.schedule_at(n, now, Event::FabricSend(pkt));
            }
        }
        if self.node_mut(n).r2p2s[p].has_issuable() {
            self.schedule_pump(node, pipe);
        }
    }

    fn run_r2p2_actions(&mut self, node: u8, pipe: u8, actions: Vec<R2p2Action>) {
        for action in actions {
            match action {
                R2p2Action::Send(pkt) => {
                    let now = self.node_ref(node as usize).now;
                    self.schedule_at(node as usize, now, Event::FabricSend(pkt));
                }
                other => {
                    // Memory work emitted from a completion path would break
                    // pacing; the R2P2 only emits it from next_issue().
                    unreachable!("unexpected completion-path action: {other:?} on {node}.{pipe}")
                }
            }
        }
    }

    /// Touches `block` in the node's LLC, broadcasting the eviction
    /// invalidation if the fill displaced a tracked block. Returns the
    /// service level of the access.
    fn llc_touch(&mut self, node: usize, block: BlockAddr) -> ServiceLevel {
        let outcome = self.node_mut(node).llc.access(block);
        if let Some(victim) = outcome.evicted {
            self.broadcast_inval(node, victim);
        }
        if outcome.hit {
            ServiceLevel::Llc
        } else {
            ServiceLevel::Dram
        }
    }

    /// Applies a store (core or DMA) to functional memory with full
    /// coherence side effects: byte write, LLC fill, invalidation fan-out.
    fn apply_store(&mut self, node: usize, block: BlockAddr, data: &[u8; BLOCK_BYTES]) {
        self.node_mut(node).memory.write_block(block, data);
        let _ = self.llc_touch(node, block);
        self.broadcast_inval(node, block);
    }

    /// Delivers an invalidation for `block` to every R2P2 on `node` (the
    /// engines probe their stream buffers by subtractor).
    fn broadcast_inval(&mut self, node: usize, block: BlockAddr) {
        for r2p2 in &mut self.node_mut(node).r2p2s {
            r2p2.on_invalidation(block);
        }
    }

    fn schedule_pump(&mut self, node: u8, pipe: u8) {
        let n = node as usize;
        let p = pipe as usize;
        let ctx = self.node_mut(n);
        if ctx.pump_on[p] {
            return;
        }
        ctx.pump_on[p] = true;
        let at = ctx.now.max(ctx.r2p2_issue[p].next_free());
        self.schedule_at(n, at, Event::Pump { node, pipe });
    }

    fn dispatch<F>(&mut self, node: usize, core: usize, f: F)
    where
        F: FnOnce(&mut dyn Workload, &mut CoreApi<'_>),
    {
        let Some(mut w) = self.node_mut(node).workloads[core].take() else {
            return;
        };
        let mut api = CoreApi {
            exec: self.reborrow(),
            node,
            core,
        };
        f(w.as_mut(), &mut api);
        self.node_mut(node).workloads[core] = Some(w);
    }
}

/// The interface a [`Workload`] uses to act on the world. Scoped to one
/// core of one node (and, under the hood, to that node's shard — every
/// operation here is node-local or a fabric send through the node's own
/// port, which is what lets shards run on worker threads).
pub struct CoreApi<'a> {
    exec: ShardExec<'a>,
    node: usize,
    core: usize,
}

impl CoreApi<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.exec.node_ref(self.node).now
    }

    /// This core's node index.
    pub fn node(&self) -> usize {
        self.node
    }

    /// This core's index within its node.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The cluster configuration (cost model, Table 2 parameters).
    pub fn config(&self) -> &ClusterConfig {
        self.exec.cfg
    }

    /// The CPU cost model, for charging software work via [`CoreApi::sleep`].
    pub fn cpu(&self) -> &CpuCostModel {
        &self.exec.cfg.cpu
    }

    /// This core's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        let core = self.core;
        &mut self.exec.node_mut(self.node).rngs[core]
    }

    /// This core's metrics sink.
    pub fn metrics(&mut self) -> &mut CoreMetrics {
        let core = self.core;
        &mut self.exec.node_mut(self.node).metrics[core]
    }

    /// Schedules a one-sided operation; [`Workload::on_completion`] fires
    /// when its CQ entry is observed. Returns the `wq_id` the completion
    /// will carry.
    ///
    /// # Panics
    ///
    /// Panics if `op` is [`OpKind::Write`] — use [`CoreApi::issue_write`].
    pub fn issue(
        &mut self,
        op: OpKind,
        dst_node: u8,
        remote_addr: Addr,
        local_buf: Addr,
        size_bytes: u32,
        version_offset: u32,
    ) -> u64 {
        assert!(op != OpKind::Write, "use issue_write for one-sided writes");
        self.issue_entry(
            op,
            dst_node,
            remote_addr,
            local_buf,
            size_bytes,
            version_offset,
            None,
        )
    }

    /// Schedules a one-sided write of `size_bytes` from `local_buf`.
    pub fn issue_write(
        &mut self,
        dst_node: u8,
        remote_addr: Addr,
        local_buf: Addr,
        size_bytes: u32,
    ) -> u64 {
        let data = self
            .exec
            .node_ref(self.node)
            .memory
            .read_vec(local_buf, size_bytes as usize);
        self.issue_entry(
            OpKind::Write,
            dst_node,
            remote_addr,
            local_buf,
            size_bytes,
            0,
            Some(data),
        )
    }

    #[allow(clippy::too_many_arguments)] // mirrors the WQ entry's fields
    fn issue_entry(
        &mut self,
        op: OpKind,
        dst_node: u8,
        remote_addr: Addr,
        local_buf: Addr,
        size_bytes: u32,
        version_offset: u32,
        write_data: Option<Vec<u8>>,
    ) -> u64 {
        let core = self.core;
        let pipe = core % self.exec.cfg.rmc_backends;
        let frontend = self.exec.cfg.frontend_latency;
        let unroll = self.exec.cfg.rgp_unroll_interval();
        let ctx = self.exec.node_mut(self.node);
        let seq = &mut ctx.wq_seq[core];
        let wq_id = ((core as u64) << 32) | (*seq & 0xFFFF_FFFF);
        *seq += 1;
        let wq = WqEntry {
            wq_id,
            op,
            dst_node,
            remote_addr,
            local_buf,
            size_bytes,
            version_offset,
        };
        let pkts = ctx.pipelines[pipe].start_transfer(&wq, write_data.as_deref());
        let t0 = ctx.now + frontend;
        for pkt in pkts {
            let start = ctx.rgp_unroll[pipe].admit(t0, unroll);
            ctx.queue.schedule(start + unroll, Event::FabricSend(pkt));
        }
        wq_id
    }

    /// Sends an RPC request to a core on another node;
    /// [`Workload::on_rpc`] fires there, and this core's
    /// [`Workload::on_rpc_reply`] fires when the reply returns.
    pub fn send_rpc(&mut self, dst_node: u8, dst_core: u8, tag: u64, bytes: u32) {
        let pkt = Packet {
            src_node: self.node as u8,
            src_pipe: self.core as u8,
            dst_node,
            dst_pipe: dst_core,
            kind: PacketKind::RpcReq { tag, bytes },
        };
        let frontend = self.exec.cfg.frontend_latency;
        let node = self.node;
        let t0 = self.exec.node_ref(node).now + frontend;
        self.exec.schedule_at(node, t0, Event::FabricSend(pkt));
    }

    /// Replies to an RPC previously delivered to this core.
    pub fn reply_rpc(&mut self, dst_node: u8, dst_core: u8, tag: u64, bytes: u32) {
        let pkt = Packet {
            src_node: self.node as u8,
            src_pipe: self.core as u8,
            dst_node,
            dst_pipe: dst_core,
            kind: PacketKind::RpcReply { tag, bytes },
        };
        let frontend = self.exec.cfg.frontend_latency;
        let node = self.node;
        let t0 = self.exec.node_ref(node).now + frontend;
        self.exec.schedule_at(node, t0, Event::FabricSend(pkt));
    }

    /// Sleeps for `d`; [`Workload::on_wake`] fires afterwards. Used to
    /// charge CPU work (strip kernels, application reads, think time).
    pub fn sleep(&mut self, d: Time) {
        let node = self.node;
        let at = self.exec.node_ref(node).now + d;
        self.exec.schedule_at(
            node,
            at,
            Event::Wake {
                node: self.node as u8,
                core: self.core as u8,
            },
        );
    }

    /// Reads `len` bytes from this node's memory (functional, instant —
    /// charge time separately via [`CoreApi::sleep`]).
    pub fn read_local(&self, addr: Addr, len: usize) -> Vec<u8> {
        self.exec.node_ref(self.node).memory.read_vec(addr, len)
    }

    /// Performs one local store of up to a cache block: functional write,
    /// LLC fill and coherence invalidation fan-out, at the current instant.
    /// This is the primitive writer threads build object updates from.
    ///
    /// # Panics
    ///
    /// Panics if the write would straddle a block boundary.
    pub fn store_local(&mut self, addr: Addr, data: &[u8]) {
        assert!(
            addr.block() == (addr + (data.len().max(1) as u64 - 1)).block(),
            "store_local must stay within one cache block"
        );
        let node = self.node;
        self.exec.node_mut(node).memory.write(addr, data);
        let block = addr.block();
        let _ = self.exec.llc_touch(node, block);
        self.exec.broadcast_inval(node, block);
    }

    /// Stores a 64-bit word locally (version updates).
    pub fn store_local_u64(&mut self, addr: Addr, value: u64) {
        self.store_local(addr, &value.to_le_bytes());
    }

    /// Flips the epoch/seq guard on every request pipeline of this core's
    /// node. While any recovering writer holds the guard, reads addressed
    /// to this replica are refused (or served stale under
    /// [`ClusterConfig::serve_stale`]); catch-up pulls are always served.
    /// The guard nests — each `set_catching_up(true)` must be paired with
    /// a `set_catching_up(false)`.
    pub fn set_catching_up(&mut self, on: bool) {
        let node = self.node;
        for r2p2 in &mut self.exec.node_mut(node).r2p2s {
            r2p2.set_catching_up(on);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec;
    use crate::workload::ReadMechanism;
    use sabre_sw::layout::CleanLayout;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            memory_bytes: 4 * 1024 * 1024,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn single_remote_read_completes_with_data() {
        let mut cluster = Cluster::new(small_cfg());
        // Put a recognizable pattern at node 1.
        let pattern: Vec<u8> = (0..128u32).map(|i| (i * 7) as u8).collect();
        cluster.node_memory_mut(1).write(Addr::new(0), &pattern);
        let buf = Addr::new(1 << 20);
        cluster.add_workload(
            0,
            0,
            spec()
                .store(1)
                .payload(128)
                .local_buf(buf)
                .iterations(1)
                .build(&[Addr::new(0)]),
        );
        cluster.run_for(Time::from_us(5));
        assert_eq!(cluster.metrics(0, 0).ops, 1);
        // The payload landed in the local buffer.
        assert_eq!(cluster.node_memory(0).read_vec(buf, 128), pattern);
        // Latency is in the paper's ballpark: ~3-4× local memory access.
        let lat = cluster.metrics(0, 0).latency.mean().unwrap();
        assert!((150.0..500.0).contains(&lat), "64B-ish read at {lat} ns");
    }

    #[test]
    fn single_sabre_completes_atomically() {
        let mut cluster = Cluster::new(small_cfg());
        let payload = vec![0xAB; 112];
        {
            let mem = cluster.node_memory_mut(1);
            CleanLayout::init(mem, Addr::new(0), &payload);
        }
        let buf = Addr::new(1 << 20);
        cluster.add_workload(
            0,
            0,
            spec()
                .store(1)
                .payload(112)
                .mechanism(ReadMechanism::Sabre)
                .local_buf(buf)
                .iterations(1)
                .build(&[Addr::new(0)]),
        );
        cluster.run_for(Time::from_us(5));
        let m = cluster.metrics(0, 0);
        assert_eq!(m.ops, 1);
        assert_eq!(m.retries, 0);
        let image = cluster
            .node_memory(0)
            .read_vec(buf, CleanLayout::object_bytes(112));
        assert_eq!(CleanLayout::payload_of(&image, 112), &payload[..]);
        let stats = (0..4)
            .map(|p| cluster.engine_stats(1, p))
            .fold((0, 0), |acc, s| {
                (acc.0 + s.completed_ok, acc.1 + s.completed_failed)
            });
        assert_eq!(stats, (1, 0));
    }

    #[test]
    fn reset_metrics_clears_every_sink_but_not_state() {
        let mut cluster = Cluster::new(small_cfg());
        let payload = vec![0x5A; 112];
        {
            let mem = cluster.node_memory_mut(1);
            CleanLayout::init(mem, Addr::new(0), &payload);
        }
        cluster.add_workload(
            0,
            0,
            spec()
                .store(1)
                .payload(112)
                .mechanism(ReadMechanism::Sabre)
                .build(&[Addr::new(0)]),
        );
        cluster.run_for(Time::from_us(20));
        assert!(cluster.metrics(0, 0).ops > 0);
        let registered: u64 = (0..4)
            .map(|p| cluster.r2p2_stats(1, p).sabres_registered)
            .sum();
        assert!(registered > 0);

        cluster.reset_metrics();
        assert_eq!(cluster.metrics(0, 0).ops, 0);
        assert_eq!(cluster.metrics(0, 0).latency.mean(), None);
        for p in 0..4 {
            assert_eq!(cluster.r2p2_stats(1, p), R2p2Stats::default());
            assert_eq!(
                cluster.engine_stats(1, p),
                sabre_core::EngineStats::default()
            );
        }
        // Simulation state survives: the same reader keeps completing ops
        // against unchanged memory, and time did not rewind.
        let t = cluster.now();
        cluster.run_for(Time::from_us(20));
        assert!(cluster.now() > t);
        assert!(cluster.metrics(0, 0).ops > 0, "reader still progressing");
    }

    fn sharded_fingerprint(
        shards: usize,
        threads: Option<usize>,
    ) -> (Vec<(u64, Option<f64>)>, u64, u64) {
        let mut cfg = ClusterConfig::with_nodes(4);
        cfg.memory_bytes = 4 * 1024 * 1024;
        cfg.shards = shards;
        cfg.threads = threads;
        let mut cluster = Cluster::new(cfg);
        for (reader, target) in [(0usize, 2u8), (1, 3)] {
            cluster
                .node_memory_mut(target as usize)
                .write_u64(Addr::new(0), 0);
            cluster.add_workload(
                reader,
                0,
                spec()
                    .store(target as usize)
                    .payload(512)
                    .mechanism(ReadMechanism::Sabre)
                    .build(&[Addr::new(0)]),
            );
        }
        cluster.run_for(Time::from_us(30));
        let metrics: Vec<(u64, Option<f64>)> = (0..2)
            .map(|n| {
                (
                    cluster.metrics(n, 0).ops,
                    cluster.metrics(n, 0).latency.mean(),
                )
            })
            .collect();
        (
            metrics,
            cluster.packets_delivered(),
            cluster.fabric().packets_total(),
        )
    }

    #[test]
    fn shard_count_never_changes_results() {
        // The acceptance bar of the sharded loop: the same 4-node rack,
        // advanced as 1, 2 or 4 shards, replays bit-identically.
        let single = sharded_fingerprint(1, Some(1));
        assert!(single.0[0].0 > 0, "readers must make progress");
        assert_eq!(
            single,
            sharded_fingerprint(2, Some(1)),
            "2 shards must replay the 1-shard run"
        );
        assert_eq!(
            single,
            sharded_fingerprint(4, Some(1)),
            "4 shards must replay the 1-shard run"
        );
    }

    #[test]
    fn thread_count_never_changes_results() {
        // The tentpole acceptance bar of thread dispatch: the same sharded
        // rack driven by 1 worker, 2 workers or one per shard replays the
        // serial single-shard run bit for bit.
        let single = sharded_fingerprint(1, Some(1));
        assert!(single.0[0].0 > 0, "readers must make progress");
        for shards in [2usize, 4] {
            for threads in [2usize, 4] {
                assert_eq!(
                    single,
                    sharded_fingerprint(shards, Some(threads)),
                    "{shards} shards on {threads} threads must replay the serial run"
                );
            }
        }
    }

    fn quiet_rack_fingerprint(
        shards: usize,
        threads: Option<usize>,
    ) -> (Vec<(u64, Option<f64>)>, u64, u64) {
        // 32 nodes, 30 of them permanently idle: the interesting regime
        // for the O(active) window scheduler, which must skip the idle
        // nodes without consulting their queues.
        let mut cfg = ClusterConfig::with_nodes(32);
        cfg.memory_bytes = 4 * 1024 * 1024;
        cfg.shards = shards;
        cfg.threads = threads;
        let mut cluster = Cluster::new(cfg);
        for (reader, target) in [(0usize, 21u8), (13, 29)] {
            cluster
                .node_memory_mut(target as usize)
                .write_u64(Addr::new(0), 0);
            cluster.add_workload(
                reader,
                0,
                spec()
                    .store(target as usize)
                    .payload(256)
                    .mechanism(ReadMechanism::Sabre)
                    .iterations(4)
                    .build(&[Addr::new(0)]),
            );
        }
        // Far past quiescence, so the quiet tail is skipped in one step.
        cluster.run_for(Time::from_us(80));
        let metrics: Vec<(u64, Option<f64>)> = [0usize, 13]
            .iter()
            .map(|&n| {
                (
                    cluster.metrics(n, 0).ops,
                    cluster.metrics(n, 0).latency.mean(),
                )
            })
            .collect();
        (
            metrics,
            cluster.packets_delivered(),
            cluster.fabric().packets_total(),
        )
    }

    #[test]
    fn quiet_rack_skip_matches_the_serial_loop() {
        // The active-node hint heaps must be invisible in the results: a
        // mostly-idle 32-node rack replays the serial single-shard run bit
        // for bit at every shard x thread split, finishes every finite
        // workload and drains its packets. (Debug builds additionally
        // sweep every queue after each window to prove no idle-looking
        // node was skipped while holding work.)
        let serial = quiet_rack_fingerprint(1, Some(1));
        assert_eq!(serial.0[0].0, 4, "reader 0 must finish its iterations");
        assert_eq!(serial.0[1].0, 4, "reader 13 must finish its iterations");
        assert_eq!(serial.1, serial.2, "packets must drain at quiescence");
        for shards in [2usize, 8, 16] {
            for threads in [1usize, 4] {
                assert_eq!(
                    serial,
                    quiet_rack_fingerprint(shards, Some(threads)),
                    "{shards} shards on {threads} threads must replay the serial run"
                );
            }
        }
    }

    #[test]
    fn packets_are_conserved() {
        // Every packet the fabric accepted is delivered exactly once; a
        // finite workload drains to sent == delivered.
        let mut cluster = Cluster::new(small_cfg());
        cluster.node_memory_mut(1).write_u64(Addr::new(0), 0);
        cluster.add_workload(
            0,
            0,
            spec()
                .store(1)
                .payload(256)
                .mechanism(ReadMechanism::Sabre)
                .local_buf(Addr::new(1 << 20))
                .iterations(5)
                .build(&[Addr::new(0)]),
        );
        cluster.run_for(Time::from_us(50));
        assert_eq!(cluster.metrics(0, 0).ops, 5);
        let sent = cluster.fabric().packets_total();
        assert!(sent > 0);
        assert_eq!(
            sent,
            cluster.packets_delivered(),
            "in-flight packets must drain to zero at quiescence"
        );
    }

    #[test]
    fn sabre_latency_tracks_plain_read() {
        // Fig. 7a's headline: LightSABRes match plain remote reads.
        let mut latencies = Vec::new();
        for mech in [ReadMechanism::Raw, ReadMechanism::Sabre] {
            let mut cluster = Cluster::new(small_cfg());
            cluster.node_memory_mut(1).write_u64(Addr::new(0), 0);
            cluster.add_workload(
                0,
                0,
                spec()
                    .store(1)
                    .payload(1024)
                    .mechanism(mech)
                    .local_buf(Addr::new(1 << 20))
                    .iterations(20)
                    .build(&[Addr::new(0)]),
            );
            cluster.run_for(Time::from_us(50));
            assert_eq!(cluster.metrics(0, 0).ops, 20);
            latencies.push(cluster.metrics(0, 0).latency.mean().unwrap());
        }
        let (read, sabre) = (latencies[0], latencies[1]);
        assert!(
            (sabre - read).abs() / read < 0.25,
            "sabre {sabre} ns vs read {read} ns"
        );
    }
}
