//! Property tests of the fault-injection algebra: outage windows are
//! half-open and union under repetition, adjacent windows tile without a
//! gap, `validate` rejects out-of-range endpoints and inverted windows,
//! and a correlated leaf outage downs every member node for exactly the
//! declared window.

use proptest::prelude::*;

use sabre_fabric::RackTopology;
use sabre_rack::fault::{FaultPlan, FaultProfile, Outage};
use sabre_sim::Time;

/// A non-empty half-open window `[from, until)` within a microsecond-scale
/// horizon, as raw nanosecond bounds.
fn window() -> impl Strategy<Value = (u64, u64)> {
    (0u64..10_000, 1u64..5_000).prop_map(|(from, len)| (from, from + len))
}

proptest! {
    /// A node is down at `t` iff *some* declared window covers `t` —
    /// overlapping and duplicate windows union rather than interfere.
    #[test]
    fn node_down_is_the_union_of_its_windows(
        windows in proptest::collection::vec(window(), 1..6),
        probe in 0u64..20_000,
    ) {
        let mut plan = FaultPlan::new();
        for &(from, until) in &windows {
            plan = plan.crash_restore(3, Time::from_ns(from), Time::from_ns(until));
        }
        let t = Time::from_ns(probe);
        let expected = windows
            .iter()
            .any(|&(from, until)| probe >= from && probe < until);
        prop_assert_eq!(plan.node_down_at(3, t), expected);
        // Packets to or from the node drop exactly when it is down.
        prop_assert_eq!(plan.drops_packet(3, 0, t), expected);
        prop_assert_eq!(plan.drops_packet(0, 3, t), expected);
        // Other nodes are untouched.
        prop_assert!(!plan.node_down_at(2, t));
    }

    /// Adjacent windows `[a, b)` + `[b, c)` tile: the node is down over
    /// the whole of `[a, c)` and back up at `c`.
    #[test]
    fn adjacent_windows_tile_without_a_gap(
        a in 0u64..5_000,
        len1 in 1u64..2_000,
        len2 in 1u64..2_000,
        frac in 0.0f64..1.0,
    ) {
        let b = a + len1;
        let c = b + len2;
        let plan = FaultPlan::new()
            .crash_restore(1, Time::from_ns(a), Time::from_ns(b))
            .crash_restore(1, Time::from_ns(b), Time::from_ns(c));
        let inside = a + ((c - a - 1) as f64 * frac) as u64;
        prop_assert!(plan.node_down_at(1, Time::from_ns(inside)));
        prop_assert!(plan.node_down_at(1, Time::from_ns(b)), "no seam at the join");
        prop_assert!(!plan.node_down_at(1, Time::from_ns(c)));
        if a > 0 {
            prop_assert!(!plan.node_down_at(1, Time::from_ns(a - 1)));
        }
    }

    /// Link outages are symmetric in their endpoints and independent of
    /// node crashes.
    #[test]
    fn link_outages_are_symmetric(
        w in window(),
        a in 0usize..8,
        b in 0usize..8,
        probe in 0u64..20_000,
    ) {
        let b = if a == b { (b + 1) % 8 } else { b };
        let (from, until) = w;
        let plan = FaultPlan::new().link_outage(a, b, Time::from_ns(from), Time::from_ns(until));
        let t = Time::from_ns(probe);
        let expected = probe >= from && probe < until;
        prop_assert_eq!(plan.link_down_at(a, b, t), expected);
        prop_assert_eq!(plan.link_down_at(b, a, t), expected);
        prop_assert_eq!(plan.drops_packet(a, b, t), expected);
        prop_assert!(!plan.node_down_at(a, t), "a cut link crashes nobody");
        prop_assert!(!plan.node_down_at(b, t));
    }

    /// `validate` accepts exactly the racks large enough to contain every
    /// declared endpoint.
    #[test]
    fn validate_rejects_out_of_range_nodes(
        node in 0usize..16,
        peer in 0usize..16,
        w in window(),
        nodes in 1usize..20,
    ) {
        let peer = if node == peer { (peer + 1) % 16 } else { peer };
        let (from, until) = w;
        let plan = FaultPlan::new()
            .crash_restore(node, Time::from_ns(from), Time::from_ns(until))
            .link_outage(node, peer, Time::from_ns(from), Time::from_ns(until));
        let fits = node < nodes && peer < nodes;
        prop_assert_eq!(plan.validate(nodes).is_ok(), fits);
    }

    /// Inverted or empty windows never get into a plan: every builder
    /// panics on `from >= until`.
    #[test]
    fn inverted_windows_are_rejected_at_construction(
        node in 0usize..8,
        from in 0u64..10_000,
        backwards in 0u64..10_000,
    ) {
        let (lo, hi) = (from.min(backwards), from.max(backwards));
        let inverted = std::panic::catch_unwind(|| {
            FaultPlan::new().crash_restore(node, Time::from_ns(hi), Time::from_ns(lo))
        });
        prop_assert!(inverted.is_err(), "inverted window must panic");
        let empty = std::panic::catch_unwind(|| {
            FaultPlan::new().crash_restore(node, Time::from_ns(from), Time::from_ns(from))
        });
        prop_assert!(empty.is_err(), "empty window must panic");
    }

    /// A leaf outage downs *every* member node of the leaf for the whole
    /// window — the correlated-failure guarantee — and records itself.
    #[test]
    fn leaf_outage_downs_all_members_for_the_window(
        radix in 1u8..6,
        leaf in 0usize..4,
        w in window(),
        frac in 0.0f64..1.0,
    ) {
        let (from, until) = w;
        let rack = RackTopology::FatTree { radix, oversubscription: 2 };
        let plan =
            FaultPlan::new().leaf_outage(rack, leaf, Time::from_ns(from), Time::from_ns(until));
        prop_assert_eq!(plan.leaf_outages().len(), 1);
        let inside = from + ((until - from - 1) as f64 * frac) as u64;
        let members = leaf * radix as usize..(leaf + 1) * radix as usize;
        for node in members.clone() {
            prop_assert_eq!(rack.leaf_of(node), Some(leaf));
            for t in [from, inside, until - 1] {
                prop_assert!(plan.node_down_at(node, Time::from_ns(t)));
            }
            prop_assert!(!plan.node_down_at(node, Time::from_ns(until)));
            if from > 0 {
                prop_assert!(!plan.node_down_at(node, Time::from_ns(from - 1)));
            }
        }
        // Non-members are untouched.
        let outsider = (leaf + 1) * radix as usize;
        prop_assert!(!plan.node_down_at(outsider, Time::from_ns(inside)));
        // No cross-leaf packet reaches or leaves a member while the leaf
        // is dark: the uplink bundle is effectively severed.
        for node in members {
            prop_assert!(plan.drops_packet(node, outsider, Time::from_ns(inside)));
            prop_assert!(plan.drops_packet(outsider, node, Time::from_ns(inside)));
        }
    }

    /// Profile-generated plans are deterministic per seed, in-horizon, and
    /// always pass validation on a rack containing their nodes.
    #[test]
    fn fault_profile_generates_valid_deterministic_plans(
        seed in 0u64..1_000,
        mtbf_us in 5u64..50,
        mttr_us in 1u64..20,
    ) {
        let profile = FaultProfile {
            nodes: vec![2, 5],
            mtbf: Time::from_us(mtbf_us),
            mttr: Time::from_us(mttr_us),
            horizon: Time::from_us(300),
        };
        let plan = profile.generate(seed);
        prop_assert_eq!(&plan, &profile.generate(seed));
        prop_assert!(plan.validate(6).is_ok());
        for &(n, Outage { from, until }) in plan.node_outages() {
            prop_assert!(n == 2 || n == 5);
            prop_assert!(from < profile.horizon);
            prop_assert!(until.is_some());
        }
    }
}
