//! Property tests of the reader→shard placement policies: whatever the
//! role split and fabric family, [`PlacementPolicy::NearestShard`] never
//! pairs a reader with a *strictly farther* shard than the round-robin
//! assignment would — the guarantee that makes it a safe default upgrade
//! — and every policy always returns a store node.

use proptest::prelude::*;

use sabre_fabric::RackTopology;
use sabre_rack::{NodeRole, PlacementPolicy, Topology};

/// Role vectors of 2–12 nodes with at least one reader and one store, as
/// a bitmask (bit set = store), fixed up to guarantee both roles exist.
fn roles() -> impl Strategy<Value = Vec<NodeRole>> {
    (2usize..13, any::<u16>()).prop_map(|(nodes, mask)| {
        let mut roles: Vec<NodeRole> = (0..nodes)
            .map(|n| {
                if mask & (1 << n) != 0 {
                    NodeRole::Store
                } else {
                    NodeRole::Reader
                }
            })
            .collect();
        // Guarantee both roles are present.
        roles[0] = NodeRole::Reader;
        let last = nodes - 1;
        roles[last] = NodeRole::Store;
        roles
    })
}

/// Every fabric family the rack supports, sized for up to 12 nodes.
fn racks() -> impl Strategy<Value = RackTopology> {
    (0u8..3, 1u8..5, 1u8..5).prop_map(|(family, radix, oversubscription)| match family {
        0 => RackTopology::Direct,
        1 => RackTopology::Mesh { cols: radix },
        _ => RackTopology::FatTree {
            radix,
            oversubscription,
        },
    })
}

proptest! {
    /// The satellite invariant: for the same topology, NearestShard's pick
    /// is never at a strictly larger hop distance than RoundRobin's.
    #[test]
    fn nearest_shard_is_never_farther_than_round_robin(
        roles in roles(),
        rack in racks(),
    ) {
        let rr = Topology::new(roles.clone());
        let near = Topology::new(roles).with_placement(PlacementPolicy::NearestShard);
        let readers = rr.reader_nodes();
        for (i, &reader) in readers.iter().enumerate() {
            let rr_pick = rr.store_for_reader(i, rack);
            let near_pick = near.store_for_reader(i, rack);
            prop_assert!(
                rack.hops(reader, near_pick) <= rack.hops(reader, rr_pick),
                "reader {reader} (index {i}) on {rack:?}: nearest chose {near_pick} \
                 ({} hops) over round-robin's {rr_pick} ({} hops)",
                rack.hops(reader, near_pick),
                rack.hops(reader, rr_pick),
            );
        }
    }

    /// Every policy returns a store node for every reader index (striped
    /// included), so factories can index shard handles safely.
    #[test]
    fn every_policy_returns_a_store_node(
        roles in roles(),
        rack in racks(),
        extra_index in 0usize..64,
    ) {
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::NearestShard,
            PlacementPolicy::Striped,
        ] {
            let t = Topology::new(roles.clone()).with_placement(policy);
            let stores = t.store_nodes();
            for i in (0..t.reader_nodes().len()).chain([extra_index]) {
                let pick = t.store_for_reader(i, rack);
                prop_assert!(
                    stores.contains(&pick),
                    "{policy:?} returned non-store node {pick}"
                );
            }
        }
    }
}
