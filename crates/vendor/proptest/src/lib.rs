//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds in environments without network access to a crates
//! registry, so the subset of the proptest 1.x API its property tests use is
//! provided here: the [`proptest!`] macro, `prop_assert*` macros,
//! [`prop_oneof!`](crate::prop_oneof) macro, [`strategy::Just`], [`arbitrary::any`],
//! [`collection::vec`], range/tuple strategies, `prop_map`, and a
//! deterministic [`test_runner::TestRng`].
//!
//! Differences from the real crate (deliberate, to stay small):
//!
//! * **no shrinking** — a failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input;
//! * **fixed derivation** — each test's RNG is seeded from a hash of its
//!   module path and name (override globally with `PROPTEST_SEED`), so runs
//!   are reproducible for a fixed toolchain;
//! * the number of cases defaults to 256, like upstream, and can be lowered
//!   globally with `PROPTEST_CASES` for smoke runs.
//!
//! The surface is source-compatible with proptest 1.x, so swapping this shim
//! for the real crate is a one-line change in the workspace manifest.

pub mod test_runner {
    //! Test execution: configuration, RNG, and failure plumbing.

    use std::fmt;

    /// Runner configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    /// The name proptest exports in its prelude.
    pub type ProptestConfig = Config;

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            // 0 would make every property pass vacuously.
            Config {
                cases: cases.max(1),
            }
        }
    }

    /// A failed property case (carries the formatted assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator driving strategy sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from a test's identifier, so every property
        /// test gets an independent, reproducible stream. `PROPTEST_SEED`
        /// perturbs all streams at once.
        pub fn deterministic(test_name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x005A_B2E5_u64);
            // FNV-1a over the test name, mixed with the seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample from an empty range");
            loop {
                let x = self.next_u64();
                let m = (x as u128).wrapping_mul(n as u128);
                if (m as u64) >= n.wrapping_neg() % n {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of an associated type.
    ///
    /// Unlike the real proptest there is no value tree / shrinking: a
    /// strategy simply samples a value from the test RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot sample from empty range {:?}",
                        self
                    );
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(
                self.start < self.end,
                "cannot sample from empty range {:?}",
                self
            );
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform choice among boxed alternatives (built by the `prop_oneof!` macro).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`: full-domain uniform generation.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value covering the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Full finite domain (like upstream's default, which excludes
            // NaN and the infinities), not just [0, 1).
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of type `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.start < self.size.end,
                "cannot sample a length from empty range {:?}",
                self.size
            );
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import property tests start from.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!(
                            "property `{}` failed at case {}/{}: {}\n\
                             (deterministic shim: rerun the same binary to reproduce; \
                             set PROPTEST_SEED to explore other streams)",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_in_bounds(x in 10u64..20, v in crate::collection::vec(0u32..5, 0..8)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(v.len() < 8);
            for e in v {
                prop_assert!(e < 5, "element {} out of range", e);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn oneof_and_map_work(
            choice in prop_oneof![Just(1u32), Just(2u32)],
            even in (0u64..100).prop_map(|v| v * 2),
        ) {
            prop_assert!(choice == 1u32 || choice == 2u32);
            prop_assert_eq!(even % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
