//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without network access to a crates
//! registry, so the few pieces of the rand 0.9 API it actually uses are
//! provided here: the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and a
//! [`rngs::StdRng`] backed by xoshiro256++ (seeded via SplitMix64). The
//! surface is source-compatible with rand 0.9, so swapping this shim for the
//! real crate is a one-line change in the workspace manifest.

use std::ops::Range;

/// The core of a random number generator: raw integer and byte output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's
/// equivalent of sampling from rand's `StandardUniform` distribution).
pub trait UniformSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniformly distributed value.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` without modulo bias (Lemire's method, with
/// rejection in the biased strip).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly over its full domain
    /// (`[0, 1)` for floats).
    fn random<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12), but
    /// this workspace only relies on determinism for a fixed toolchain, not
    /// on any particular stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod distr {
    //! Non-uniform distributions (the shim's subset of `rand_distr`).

    use super::RngCore;

    /// The Zipf (zeta) distribution over ranks `1..=n`: rank `k` is drawn
    /// with probability proportional to `1 / k^exponent`.
    ///
    /// Sampling uses rejection-inversion (Hörmann & Derflinger, "Rejection-
    /// inversion to generate variates from monotone discrete
    /// distributions"), the same scheme as Apache Commons'
    /// `RejectionInversionZipfSampler`: O(1) per sample with no `O(n)`
    /// table, so skewed key-popularity models can cover stores of any size.
    /// Each sample consumes a variable (rejection-dependent) number of
    /// uniform draws from the caller's generator, which stays fully
    /// deterministic for a seeded generator.
    #[derive(Debug, Clone)]
    pub struct Zipf {
        n: u64,
        exponent: f64,
        h_integral_x1: f64,
        h_integral_n: f64,
        s: f64,
    }

    impl Zipf {
        /// A Zipf distribution over `1..=n` with the given exponent.
        ///
        /// # Panics
        ///
        /// Panics if `n` is zero or `exponent` is not strictly positive
        /// and finite.
        pub fn new(n: u64, exponent: f64) -> Self {
            assert!(n > 0, "Zipf needs at least one rank");
            assert!(
                exponent.is_finite() && exponent > 0.0,
                "Zipf exponent must be positive, got {exponent}"
            );
            let h_integral_x1 = h_integral(1.5, exponent) - 1.0;
            let h_integral_n = h_integral(n as f64 + 0.5, exponent);
            let s =
                2.0 - h_integral_inverse(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
            Zipf {
                n,
                exponent,
                h_integral_x1,
                h_integral_n,
                s,
            }
        }

        /// Number of ranks.
        pub fn n(&self) -> u64 {
            self.n
        }

        /// The skew exponent.
        pub fn exponent(&self) -> f64 {
            self.exponent
        }

        /// Draws one rank in `1..=n` (1 is the most popular).
        pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            if self.n == 1 {
                return 1;
            }
            loop {
                // u uniform in (h_integral_n, h_integral_x1].
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let u = self.h_integral_n + unit * (self.h_integral_x1 - self.h_integral_n);
                let x = h_integral_inverse(u, self.exponent);
                let k = (x.round() as u64).clamp(1, self.n);
                // Accept if k is close enough to x, or by the exact
                // rejection test against the histogram bar of k.
                if k as f64 - x <= self.s
                    || u >= h_integral(k as f64 + 0.5, self.exponent) - h(k as f64, self.exponent)
                {
                    return k;
                }
            }
        }
    }

    /// `H(x) = ((x^(1-e)) - 1) / (1 - e)`, the integral of `h`; `ln x` in
    /// the limit `e -> 1` (computed stably via `expm1`/`ln_1p`).
    fn h_integral(x: f64, e: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - e) * log_x) * log_x
    }

    /// `h(x) = x^-e`.
    fn h(x: f64, e: f64) -> f64 {
        (-e * x.ln()).exp()
    }

    /// Inverse of [`h_integral`].
    fn h_integral_inverse(u: f64, e: f64) -> f64 {
        let mut t = u * (1.0 - e);
        // Clamp to the domain of ln_1p (t <= -1 only from rounding).
        if t < -1.0 {
            t = -1.0;
        }
        (helper1(t) * u).exp()
    }

    /// `ln(1+x)/x`, stable near zero.
    fn helper1(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.ln_1p() / x
        } else {
            1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
        }
    }

    /// `(exp(x)-1)/x`, stable near zero.
    fn helper2(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.exp_m1() / x
        } else {
            1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distr::Zipf;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zipf_stays_in_range_and_is_deterministic() {
        let z = Zipf::new(100, 0.99);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let k = z.sample(&mut a);
            assert!((1..=100).contains(&k));
            assert_eq!(k, z.sample(&mut b));
        }
    }

    #[test]
    fn zipf_empirical_ranks_match_skew() {
        // With exponent e, p(k)/p(2k) = 2^e; check the empirical ratio of
        // rank-1 to rank-2 counts against 2^e for two skew settings.
        for (exponent, samples) in [(0.99f64, 200_000u64), (1.5, 200_000)] {
            let z = Zipf::new(1000, exponent);
            let mut rng = StdRng::seed_from_u64(0xC0FFEE);
            let mut counts = vec![0u64; 1001];
            for _ in 0..samples {
                counts[z.sample(&mut rng) as usize] += 1;
            }
            // Ranks are ordered: head beats the mid, mid beats the tail.
            assert!(counts[1] > counts[10] && counts[10] > counts[100]);
            let ratio = counts[1] as f64 / counts[2] as f64;
            let want = 2f64.powf(exponent);
            assert!(
                (ratio - want).abs() / want < 0.1,
                "exponent {exponent}: rank1/rank2 = {ratio:.3}, want ~{want:.3}"
            );
        }
    }

    #[test]
    fn zipf_single_rank_and_high_skew() {
        let z = Zipf::new(1, 1.0);
        let mut r = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut r), 1);
        // Very high skew: nearly every sample is rank 1.
        let z = Zipf::new(64, 4.0);
        let hits = (0..1000).filter(|_| z.sample(&mut r) == 1).count();
        assert!(hits > 900, "{hits}");
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn zipf_rejects_non_positive_exponent() {
        let _ = Zipf::new(10, 0.0);
    }
}
