//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! This workspace builds in environments without network access to a crates
//! registry, so the subset of the criterion 0.5 API its benches use is
//! provided here: [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs a short warm-up,
//! then takes a fixed number of timed batches and reports the **median**
//! nanoseconds per iteration with the **median absolute deviation** (MAD)
//! as the robust spread estimate — enough statistics for committed
//! baselines and regression eyeballing; swap in the real crate for serious
//! measurement. Reporting:
//!
//! * one line per benchmark on **stderr** (stdout stays clean for runners
//!   that golden-diff their output);
//! * with `SABRES_BENCH_JSON=<path>` set, the full result set is also
//!   written to `<path>` as JSON (`{group, bench, median_ns, mad_ns,
//!   samples, throughput?}` records) — how `BENCH_baseline.json` is
//!   (re)generated;
//! * `SABRES_BENCH_QUICK=1` shrinks the pass count and calibration budget
//!   for CI smoke runs;
//! * with `SABRES_BENCH_BASELINE=<path>` set, the run becomes a
//!   **regression gate**: each finished benchmark is compared against the
//!   matching record of the baseline JSON, and the process exits non-zero
//!   if any median exceeds `baseline × 2 + N × MAD + 100 ns` (the ratio
//!   and floor absorb host-to-host variance, the MAD term scales with the
//!   baseline's own measured noise; `N` defaults to 8 and is overridable
//!   via `SABRES_BENCH_GATE_MAD`). Benches absent from the baseline pass
//!   ungated, so adding a benchmark never requires regenerating it first.
//!
//! Relative `<path>`s are resolved by searching upward from the current
//! directory, because cargo runs bench binaries from the package root
//! while the committed baseline lives at the workspace root.

use std::time::{Duration, Instant};

/// How elements given to [`Bencher::iter_batched`] are batched. The shim
/// always materializes one input per iteration, so the variants only exist
/// for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Per-iteration inputs of unknown size.
    PerIteration,
}

/// Units for reporting a benchmark's processing rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Whether the quick (CI smoke) profile is active.
fn quick() -> bool {
    std::env::var("SABRES_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    median_ns: f64,
    /// Median absolute deviation of the per-pass ns/iter samples.
    mad_ns: f64,
    /// Timed passes per benchmark (from the group's `sample_size`).
    passes: usize,
}

impl Bencher {
    fn measure<F: FnMut() -> Duration>(&mut self, mut timed_pass: F) {
        // Warm up, then take the median (+ MAD) of the configured passes.
        timed_pass();
        let mut samples: Vec<f64> = (0..self.passes)
            .map(|_| timed_pass().as_nanos() as f64)
            .collect();
        self.median_ns = median_in_place(&mut samples);
        let mut deviations: Vec<f64> = samples.iter().map(|s| (s - self.median_ns).abs()).collect();
        self.mad_ns = median_in_place(&mut deviations);
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate with one timed call so heavyweight routines (whole
        // simulated experiments) run once per pass while nanosecond-scale
        // kernels get batched enough to out-resolve the clock.
        let start = Instant::now();
        std::hint::black_box(routine());
        let probe_ns = start.elapsed().as_nanos().max(1);
        let budget = if quick() { 200_000 } else { 1_000_000 };
        let iters = (budget / probe_ns).clamp(1, 64) as u32;
        self.measure(|| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed() / iters
        });
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
    }
}

/// Median of `samples` (sorts in place); 0.0 for an empty slice.
fn median_in_place(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// One finished benchmark's statistics.
#[derive(Debug, Clone)]
struct BenchResult {
    group: String,
    bench: String,
    median_ns: f64,
    mad_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
}

/// Default MAD multiple of the regression gate
/// (`SABRES_BENCH_GATE_MAD` overrides it).
const GATE_MAD_DEFAULT: f64 = 8.0;

/// Relative headroom of the gate: a median may grow to this multiple of
/// the baseline before the MAD term even matters — absorbs host-to-host
/// clock and cache differences.
const GATE_RATIO: f64 = 2.0;

/// Absolute gate floor in nanoseconds, so timer-resolution jitter on
/// sub-10 ns kernels can never trip the gate.
const GATE_FLOOR_NS: f64 = 100.0;

/// Extracts a `"key": "string"` field from one JSON record, undoing the
/// `\\`/`\"` escapes [`Criterion::to_json`] writes.
fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Extracts a `"key": number` field from one JSON record.
fn json_num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Resolves a baseline/JSON path: absolute paths and paths that exist
/// from the current directory pass through; otherwise ancestors are
/// searched, because cargo runs bench binaries from the *package* root
/// while `BENCH_baseline.json` is committed at the workspace root.
fn resolve_path(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() || p.exists() {
        return p.to_path_buf();
    }
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let candidate = d.join(p);
        if candidate.exists() {
            return candidate;
        }
        dir = d.parent().map(std::path::Path::to_path_buf);
    }
    p.to_path_buf()
}

/// Parses a results document [`Criterion::to_json`] wrote (one record per
/// line); lines without the expected fields are skipped, so a truncated
/// or hand-edited baseline degrades to a smaller gate, never a crash.
fn parse_results(json: &str) -> Vec<BenchResult> {
    json.lines()
        .filter_map(|line| {
            Some(BenchResult {
                group: json_str_field(line, "group")?,
                bench: json_str_field(line, "bench")?,
                median_ns: json_num_field(line, "median_ns")?,
                mad_ns: json_num_field(line, "mad_ns")?,
                samples: json_num_field(line, "samples").unwrap_or(0.0) as usize,
                throughput: None,
            })
        })
        .collect()
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed passes each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(3, 1000);
        self
    }

    /// Reports subsequent benchmarks' rates in the given units.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            median_ns: 0.0,
            mad_ns: 0.0,
            passes: if quick() {
                self.samples.min(3)
            } else {
                self.samples
            },
        };
        f(&mut bencher);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if bencher.median_ns > 0.0 => {
                format!(" ({:.1} MiB/s)", n as f64 / bencher.median_ns * 953.67)
            }
            Some(Throughput::Elements(n)) if bencher.median_ns > 0.0 => {
                format!(" ({:.1} Melem/s)", n as f64 / bencher.median_ns * 1000.0)
            }
            _ => String::new(),
        };
        eprintln!(
            "bench {}/{:<40} {:>12.1} ns/iter (±{:.1} MAD){}",
            self.name, id, bencher.median_ns, bencher.mad_ns, rate
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            bench: id.to_string(),
            median_ns: bencher.median_ns,
            mad_ns: bencher.mad_ns,
            samples: bencher.passes,
            throughput: self.throughput,
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point collecting benchmark groups.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            samples: 7,
            criterion: self,
        }
    }

    /// Prints the closing summary; with `SABRES_BENCH_JSON=<path>` set,
    /// also writes every result as JSON to `<path>`, and with
    /// `SABRES_BENCH_BASELINE=<path>` set, enforces the regression gate
    /// against that baseline (exiting non-zero on any regression).
    pub fn final_summary(&mut self) {
        if let Ok(path) = std::env::var("SABRES_BENCH_JSON") {
            if !path.is_empty() {
                let resolved = resolve_path(&path);
                if let Err(e) = std::fs::write(&resolved, self.to_json()) {
                    eprintln!("warning: could not write {}: {e}", resolved.display());
                } else {
                    eprintln!("bench results written to {}", resolved.display());
                }
            }
        }
        self.enforce_baseline();
    }

    /// The regression gate: compares every finished benchmark against the
    /// `SABRES_BENCH_BASELINE` document and exits non-zero on any median
    /// beyond the gate. A gate explicitly requested but unreadable is a
    /// CI misconfiguration, and also fails the run.
    fn enforce_baseline(&self) {
        let Ok(path) = std::env::var("SABRES_BENCH_BASELINE") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let resolved = resolve_path(&path);
        let text = match std::fs::read_to_string(&resolved) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "error: could not read bench baseline {}: {e}",
                    resolved.display()
                );
                std::process::exit(1);
            }
        };
        let mad_factor = std::env::var("SABRES_BENCH_GATE_MAD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(GATE_MAD_DEFAULT);
        let failures = self.gate_against(&text, mad_factor);
        if failures.is_empty() {
            eprintln!(
                "bench baseline gate: {} benches within the gate of {}",
                self.results.len(),
                resolved.display()
            );
        } else {
            for f in &failures {
                eprintln!("bench regression: {f}");
            }
            eprintln!(
                "bench baseline gate failed: {} regression(s) vs {}",
                failures.len(),
                resolved.display()
            );
            std::process::exit(1);
        }
    }

    /// The gate decisions against a baseline document: one message per
    /// benchmark whose median exceeds
    /// `baseline × GATE_RATIO + mad_factor × MAD + GATE_FLOOR_NS`.
    /// Benches missing from the baseline pass ungated.
    fn gate_against(&self, baseline: &str, mad_factor: f64) -> Vec<String> {
        let baseline = parse_results(baseline);
        self.results
            .iter()
            .filter_map(|r| {
                let b = baseline
                    .iter()
                    .find(|b| b.group == r.group && b.bench == r.bench)?;
                let allowed = b.median_ns * GATE_RATIO + mad_factor * b.mad_ns + GATE_FLOOR_NS;
                (r.median_ns > allowed).then(|| {
                    format!(
                        "{}/{}: {:.1} ns/iter exceeds the gate of {:.1} ns \
                         (baseline {:.1} ±{:.1} MAD)",
                        r.group, r.bench, r.median_ns, allowed, b.median_ns, b.mad_ns
                    )
                })
            })
            .collect()
    }

    /// The collected results as a JSON document.
    fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let tp = match r.throughput {
                Some(Throughput::Bytes(n)) => format!(", \"bytes_per_iter\": {n}"),
                Some(Throughput::Elements(n)) => format!(", \"elements_per_iter\": {n}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"bench\": \"{}\", \"median_ns\": {:.1}, \
                 \"mad_ns\": {:.1}, \"samples\": {}{}}}{}\n",
                esc(&r.group),
                esc(&r.bench),
                r.median_ns,
                r.mad_ns,
                r.samples,
                tp,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Collects benchmark functions into a group callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.throughput(Throughput::Bytes(8))
            .bench_function("spin", |b| {
                b.iter(|| {
                    count += 1;
                    count
                })
            });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(count > 0);
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].bench, "spin");
        assert!(c.results[0].median_ns >= 0.0);
        assert!(c.results[0].mad_ns >= 0.0);
    }

    #[test]
    fn median_and_mad() {
        let mut odd = vec![5.0, 1.0, 9.0];
        assert_eq!(median_in_place(&mut odd), 5.0);
        let mut even = vec![4.0, 1.0, 9.0, 6.0];
        assert_eq!(median_in_place(&mut even), 5.0);
        assert_eq!(median_in_place(&mut []), 0.0);
    }

    #[test]
    fn baseline_roundtrips_through_the_parser() {
        let mut c = Criterion::default();
        c.results.push(BenchResult {
            group: "g \"q\"".into(),
            bench: "b".into(),
            median_ns: 123.5,
            mad_ns: 4.5,
            samples: 7,
            throughput: Some(Throughput::Bytes(64)),
        });
        let parsed = parse_results(&c.to_json());
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].group, "g \"q\"");
        assert_eq!(parsed[0].bench, "b");
        assert_eq!(parsed[0].median_ns, 123.5);
        assert_eq!(parsed[0].mad_ns, 4.5);
        assert_eq!(parsed[0].samples, 7);
    }

    #[test]
    fn gate_passes_within_headroom_and_fails_beyond_it() {
        let baseline = "{\"group\": \"g\", \"bench\": \"b\", \
                        \"median_ns\": 1000.0, \"mad_ns\": 10.0, \"samples\": 7}";
        // allowed = 1000 * 2 + 8 * 10 + 100 = 2180 ns
        let mut c = Criterion::default();
        let mut result = BenchResult {
            group: "g".into(),
            bench: "b".into(),
            median_ns: 2180.0,
            mad_ns: 0.0,
            samples: 7,
            throughput: None,
        };
        c.results.push(result.clone());
        assert!(c.gate_against(baseline, GATE_MAD_DEFAULT).is_empty());
        result.median_ns = 2181.0;
        c.results[0] = result.clone();
        let failures = c.gate_against(baseline, GATE_MAD_DEFAULT);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("g/b"), "{failures:?}");
        // A bench the baseline has never seen passes ungated.
        result.bench = "new".into();
        c.results[0] = result;
        assert!(c.gate_against(baseline, GATE_MAD_DEFAULT).is_empty());
    }

    #[test]
    fn relative_paths_resolve_through_ancestors() {
        // Cargo runs this test from the crate root; the baseline at the
        // workspace root (three levels up) is only reachable by walking up.
        let ws = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(3)
            .expect("workspace root");
        assert_eq!(
            resolve_path("Cargo.toml"),
            std::path::PathBuf::from("Cargo.toml")
        );
        assert_eq!(
            resolve_path("BENCH_baseline.json"),
            ws.join("BENCH_baseline.json")
        );
        // Absolute paths pass through untouched, even when missing.
        let abs = ws.join("no-such-baseline.json");
        assert_eq!(resolve_path(abs.to_str().expect("utf8 path")), abs);
    }

    #[test]
    fn json_shape_is_sane() {
        let mut c = Criterion::default();
        c.results.push(BenchResult {
            group: "g".into(),
            bench: "b \"x\"".into(),
            median_ns: 1.5,
            mad_ns: 0.25,
            samples: 7,
            throughput: Some(Throughput::Bytes(64)),
        });
        let json = c.to_json();
        assert!(json.contains("\"group\": \"g\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"bytes_per_iter\": 64"));
        assert!(json.contains("\"median_ns\": 1.5"));
    }
}
