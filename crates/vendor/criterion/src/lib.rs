//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! This workspace builds in environments without network access to a crates
//! registry, so the subset of the criterion 0.5 API its benches use is
//! provided here: [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs a short warm-up,
//! then measures the median of a fixed number of timed batches and prints
//! one line per benchmark (with bytes/s when a throughput is set). That is
//! enough for `cargo bench --no-run` compile gating and for coarse local
//! regression eyeballing; swap in the real crate for serious measurement.

use std::time::{Duration, Instant};

/// How elements given to [`Bencher::iter_batched`] are batched. The shim
/// always materializes one input per iteration, so the variants only exist
/// for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Per-iteration inputs of unknown size.
    PerIteration,
}

/// Units for reporting a benchmark's processing rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
    /// Timed passes per benchmark (from the group's `sample_size`).
    passes: usize,
}

impl Bencher {
    fn measure<F: FnMut() -> Duration>(&mut self, mut timed_pass: F) {
        // Warm up, then take the median of the configured passes.
        timed_pass();
        let mut samples: Vec<f64> = (0..self.passes)
            .map(|_| timed_pass().as_nanos() as f64)
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate with one timed call so heavyweight routines (whole
        // simulated experiments) run once per pass while nanosecond-scale
        // kernels get batched enough to out-resolve the clock.
        let start = Instant::now();
        std::hint::black_box(routine());
        let probe_ns = start.elapsed().as_nanos().max(1);
        let iters = (1_000_000 / probe_ns).clamp(1, 64) as u32;
        self.measure(|| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed() / iters
        });
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed passes each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(3, 1000);
        self
    }

    /// Reports subsequent benchmarks' rates in the given units.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            passes: self.samples,
        };
        f(&mut bencher);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if bencher.ns_per_iter > 0.0 => {
                format!(" ({:.1} MiB/s)", n as f64 / bencher.ns_per_iter * 953.67)
            }
            Some(Throughput::Elements(n)) if bencher.ns_per_iter > 0.0 => {
                format!(" ({:.1} Melem/s)", n as f64 / bencher.ns_per_iter * 1000.0)
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{:<40} {:>12.1} ns/iter{}",
            self.name, id, bencher.ns_per_iter, rate
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point collecting benchmark groups.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            samples: 7,
            _criterion: self,
        }
    }

    /// Prints the closing summary (a no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Collects benchmark functions into a group callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.throughput(Throughput::Bytes(8))
            .bench_function("spin", |b| {
                b.iter(|| {
                    count += 1;
                    count
                })
            });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(count > 0);
    }
}
