//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! This workspace builds in environments without network access to a crates
//! registry, so the subset of the criterion 0.5 API its benches use is
//! provided here: [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs a short warm-up,
//! then takes a fixed number of timed batches and reports the **median**
//! nanoseconds per iteration with the **median absolute deviation** (MAD)
//! as the robust spread estimate — enough statistics for committed
//! baselines and regression eyeballing; swap in the real crate for serious
//! measurement. Reporting:
//!
//! * one line per benchmark on **stderr** (stdout stays clean for runners
//!   that golden-diff their output);
//! * with `SABRES_BENCH_JSON=<path>` set, the full result set is also
//!   written to `<path>` as JSON (`{group, bench, median_ns, mad_ns,
//!   samples, throughput?}` records) — how `BENCH_baseline.json` is
//!   (re)generated;
//! * `SABRES_BENCH_QUICK=1` shrinks the pass count and calibration budget
//!   for CI smoke runs.

use std::time::{Duration, Instant};

/// How elements given to [`Bencher::iter_batched`] are batched. The shim
/// always materializes one input per iteration, so the variants only exist
/// for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Per-iteration inputs of unknown size.
    PerIteration,
}

/// Units for reporting a benchmark's processing rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Whether the quick (CI smoke) profile is active.
fn quick() -> bool {
    std::env::var("SABRES_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    median_ns: f64,
    /// Median absolute deviation of the per-pass ns/iter samples.
    mad_ns: f64,
    /// Timed passes per benchmark (from the group's `sample_size`).
    passes: usize,
}

impl Bencher {
    fn measure<F: FnMut() -> Duration>(&mut self, mut timed_pass: F) {
        // Warm up, then take the median (+ MAD) of the configured passes.
        timed_pass();
        let mut samples: Vec<f64> = (0..self.passes)
            .map(|_| timed_pass().as_nanos() as f64)
            .collect();
        self.median_ns = median_in_place(&mut samples);
        let mut deviations: Vec<f64> = samples.iter().map(|s| (s - self.median_ns).abs()).collect();
        self.mad_ns = median_in_place(&mut deviations);
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate with one timed call so heavyweight routines (whole
        // simulated experiments) run once per pass while nanosecond-scale
        // kernels get batched enough to out-resolve the clock.
        let start = Instant::now();
        std::hint::black_box(routine());
        let probe_ns = start.elapsed().as_nanos().max(1);
        let budget = if quick() { 200_000 } else { 1_000_000 };
        let iters = (budget / probe_ns).clamp(1, 64) as u32;
        self.measure(|| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed() / iters
        });
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
    }
}

/// Median of `samples` (sorts in place); 0.0 for an empty slice.
fn median_in_place(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// One finished benchmark's statistics.
#[derive(Debug, Clone)]
struct BenchResult {
    group: String,
    bench: String,
    median_ns: f64,
    mad_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed passes each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(3, 1000);
        self
    }

    /// Reports subsequent benchmarks' rates in the given units.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            median_ns: 0.0,
            mad_ns: 0.0,
            passes: if quick() {
                self.samples.min(3)
            } else {
                self.samples
            },
        };
        f(&mut bencher);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if bencher.median_ns > 0.0 => {
                format!(" ({:.1} MiB/s)", n as f64 / bencher.median_ns * 953.67)
            }
            Some(Throughput::Elements(n)) if bencher.median_ns > 0.0 => {
                format!(" ({:.1} Melem/s)", n as f64 / bencher.median_ns * 1000.0)
            }
            _ => String::new(),
        };
        eprintln!(
            "bench {}/{:<40} {:>12.1} ns/iter (±{:.1} MAD){}",
            self.name, id, bencher.median_ns, bencher.mad_ns, rate
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            bench: id.to_string(),
            median_ns: bencher.median_ns,
            mad_ns: bencher.mad_ns,
            samples: bencher.passes,
            throughput: self.throughput,
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point collecting benchmark groups.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            samples: 7,
            criterion: self,
        }
    }

    /// Prints the closing summary; with `SABRES_BENCH_JSON=<path>` set,
    /// also writes every result as JSON to `<path>`.
    pub fn final_summary(&mut self) {
        let Ok(path) = std::env::var("SABRES_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let json = self.to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("bench results written to {path}");
        }
    }

    /// The collected results as a JSON document.
    fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let tp = match r.throughput {
                Some(Throughput::Bytes(n)) => format!(", \"bytes_per_iter\": {n}"),
                Some(Throughput::Elements(n)) => format!(", \"elements_per_iter\": {n}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"bench\": \"{}\", \"median_ns\": {:.1}, \
                 \"mad_ns\": {:.1}, \"samples\": {}{}}}{}\n",
                esc(&r.group),
                esc(&r.bench),
                r.median_ns,
                r.mad_ns,
                r.samples,
                tp,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Collects benchmark functions into a group callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.throughput(Throughput::Bytes(8))
            .bench_function("spin", |b| {
                b.iter(|| {
                    count += 1;
                    count
                })
            });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(count > 0);
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].bench, "spin");
        assert!(c.results[0].median_ns >= 0.0);
        assert!(c.results[0].mad_ns >= 0.0);
    }

    #[test]
    fn median_and_mad() {
        let mut odd = vec![5.0, 1.0, 9.0];
        assert_eq!(median_in_place(&mut odd), 5.0);
        let mut even = vec![4.0, 1.0, 9.0, 6.0];
        assert_eq!(median_in_place(&mut even), 5.0);
        assert_eq!(median_in_place(&mut []), 0.0);
    }

    #[test]
    fn json_shape_is_sane() {
        let mut c = Criterion::default();
        c.results.push(BenchResult {
            group: "g".into(),
            bench: "b \"x\"".into(),
            median_ns: 1.5,
            mad_ns: 0.25,
            samples: 7,
            throughput: Some(Throughput::Bytes(64)),
        });
        let json = c.to_json();
        assert!(json.contains("\"group\": \"g\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"bytes_per_iter\": 64"));
        assert!(json.contains("\"median_ns\": 1.5"));
    }
}
