//! Server-side atomic object capture for the alternative read protocols.
//!
//! [`ObjectCapture`] is the sans-IO state machine an R2P2 service pipeline
//! runs to assemble a consistent object image before streaming it back to
//! the reader in one burst. It is shared by two mechanisms:
//!
//! - **WfRegister** (Ianni et al.): read the header block, decode the
//!   publish word, then read exactly the published slot while watching it
//!   for invalidations. The writer only reuses a slot after
//!   `SLOTS - 1` further publishes, so a restart is rare and the loop
//!   terminates; the *reader-visible* abort rate is zero by construction —
//!   restarts happen inside the store and cost memory reads, not network
//!   round trips.
//! - **OhRam** (Hadjistasi et al.): read every block of the object while
//!   watching the whole range; deliver when the snapshot saw no
//!   invalidation and the version word is unlocked. Server-side OCC
//!   without any server-side locking — the client then relays a confirm
//!   write (the protocol's half round) without waiting for its ack.
//!
//! The capture watches [`sabre_mem::NodeMemory`] invalidations from the moment the
//! relevant range is known — for WfRegister that is the same instant the
//! publish word's block is consumed, so there is no window between
//! "snapshot the pointer" and "watch the slot" for a writer to slip
//! through.

use sabre_mem::{Addr, BlockAddr, BlockRange, BLOCK_BYTES};

/// Which protocol drives a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureKind {
    /// Wait-free multi-version register: header first, then one slot.
    WfRegister,
    /// Oh-RAM one-and-a-half-round read: the whole object under OCC.
    OhRam,
}

/// What the service pipeline must do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureStep {
    /// Issue memory reads for these blocks and feed each reply back via
    /// [`ObjectCapture::on_block`].
    Read(Vec<BlockAddr>),
    /// The image is consistent: stream these blocks (wire order) to the
    /// reader.
    Deliver(Vec<[u8; BLOCK_BYTES]>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// WfRegister only: waiting for the header block naming the slot.
    Header,
    /// Collecting the watched range (the published slot, or the whole
    /// object for OhRam).
    Collect {
        range: BlockRange,
        /// `collected[i]` is the data for `range.first() + i`.
        collected: Vec<Option<[u8; BLOCK_BYTES]>>,
        missing: usize,
        dirty: bool,
    },
}

/// A server-side capture of one object read. Sans-IO: the caller owns the
/// memory reads and invalidation feed.
#[derive(Debug, Clone)]
pub struct ObjectCapture {
    kind: CaptureKind,
    base: Addr,
    wire_bytes: u32,
    state: State,
    header: Option<[u8; BLOCK_BYTES]>,
    restarts: u64,
}

impl ObjectCapture {
    /// Starts a capture of the object at `base` transferring `wire_bytes`,
    /// returning the machine and its first step.
    pub fn new(kind: CaptureKind, base: Addr, wire_bytes: u32) -> (Self, CaptureStep) {
        let mut cap = ObjectCapture {
            kind,
            base,
            wire_bytes,
            state: State::Header,
            header: None,
            restarts: 0,
        };
        let step = cap.start();
        (cap, step)
    }

    /// Times the capture restarted because a writer raced the snapshot.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    fn start(&mut self) -> CaptureStep {
        match self.kind {
            CaptureKind::WfRegister => {
                self.state = State::Header;
                self.header = None;
                CaptureStep::Read(vec![self.base.block()])
            }
            CaptureKind::OhRam => {
                let range = BlockRange::covering(self.base, self.wire_bytes as u64);
                self.collect(range)
            }
        }
    }

    fn collect(&mut self, range: BlockRange) -> CaptureStep {
        let blocks: Vec<BlockAddr> = range.iter().collect();
        self.state = State::Collect {
            range,
            collected: vec![None; blocks.len()],
            missing: blocks.len(),
            dirty: false,
        };
        CaptureStep::Read(blocks)
    }

    /// Feeds one completed memory read back into the capture.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not one the capture asked for.
    pub fn on_block(&mut self, block: BlockAddr, data: [u8; BLOCK_BYTES]) -> CaptureStep {
        match &mut self.state {
            State::Header => {
                assert_eq!(block, self.base.block(), "unexpected header block");
                let word = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
                self.header = Some(data);
                // The slot region spans the wire minus the header block; the
                // published slot index scales it from the first slot's base.
                let slot_bytes = self.wire_bytes as u64 - BLOCK_BYTES as u64;
                let slot = word % crate::WfRegisterLayout::SLOTS;
                let slot_base = self.base + BLOCK_BYTES as u64 + slot * slot_bytes;
                // Watching starts here, in the same event that consumed the
                // publish word — any write to the slot after this memory
                // read raises an invalidation we will see.
                self.collect(BlockRange::covering(slot_base, slot_bytes))
            }
            State::Collect {
                range,
                collected,
                missing,
                dirty,
            } => {
                let idx = block
                    .distance_from(range.first())
                    .filter(|&d| d < collected.len() as u64)
                    .expect("block outside capture range") as usize;
                if collected[idx].is_none() {
                    *missing -= 1;
                }
                collected[idx] = Some(data);
                if *missing > 0 {
                    return CaptureStep::Read(vec![]);
                }
                let torn = *dirty || Self::version_locked(self.kind, collected);
                if torn {
                    self.restarts += 1;
                    return self.start();
                }
                let mut image = Vec::with_capacity(collected.len() + 1);
                if let Some(h) = self.header.take() {
                    image.push(h);
                }
                image.extend(collected.iter().map(|b| b.expect("all collected")));
                CaptureStep::Deliver(image)
            }
        }
    }

    /// OhRam reads the version word live with the object, so a writer
    /// caught mid-update (locked, odd version) forces a restart even when
    /// the lock store predates the capture and raised no invalidation.
    /// WfRegister slots carry a plain sequence word — never locked.
    fn version_locked(kind: CaptureKind, collected: &[Option<[u8; BLOCK_BYTES]>]) -> bool {
        match kind {
            CaptureKind::WfRegister => false,
            CaptureKind::OhRam => {
                let first = collected[0].expect("all collected");
                let version = u64::from_le_bytes(first[..8].try_into().expect("8 bytes"));
                version & 1 == 1
            }
        }
    }

    /// Notes a store to `block`. A write landing inside the watched range
    /// dirties the snapshot; for WfRegister, a write to the *header* block
    /// (a newer publish) leaves the captured slot intact and is ignored.
    pub fn on_invalidation(&mut self, block: BlockAddr) {
        if let State::Collect { range, dirty, .. } = &mut self.state {
            if range.contains(block) {
                *dirty = true;
            }
        }
    }
}

/// The scratch block OhRam confirm writes land on: the last block of the
/// store node's memory, far above any object or reader buffer. The confirm
/// carries the read's tag one-sidedly back to the store (completing the
/// protocol's write-back half round) without touching live data.
pub fn tag_board_addr(memory_bytes: u64) -> Addr {
    Addr::new(memory_bytes - BLOCK_BYTES as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WfRegisterLayout;
    use sabre_mem::NodeMemory;

    fn feed(cap: &mut ObjectCapture, mem: &NodeMemory, blocks: Vec<BlockAddr>) -> CaptureStep {
        let mut step = CaptureStep::Read(blocks);
        loop {
            match step {
                CaptureStep::Read(blocks) if blocks.is_empty() => {
                    panic!("capture stalled with no reads outstanding")
                }
                CaptureStep::Read(blocks) => {
                    let mut next = CaptureStep::Read(vec![]);
                    for b in blocks {
                        next = cap.on_block(b, mem.read_block(b));
                    }
                    step = next;
                }
                CaptureStep::Deliver(image) => return CaptureStep::Deliver(image),
            }
        }
    }

    fn wf_image(cap_and_mem: (&mut ObjectCapture, &NodeMemory), first: Vec<BlockAddr>) -> Vec<u8> {
        let (cap, mem) = cap_and_mem;
        match feed(cap, mem, first) {
            CaptureStep::Deliver(blocks) => blocks.concat(),
            step => panic!("expected delivery, got {step:?}"),
        }
    }

    #[test]
    fn wf_clean_capture_delivers_published_slot() {
        let mut mem = NodeMemory::new(1 << 16);
        let payload = vec![7u8; 100];
        WfRegisterLayout::init(&mut mem, Addr::new(0), &payload);
        let wire = WfRegisterLayout::wire_bytes(100) as u32;
        let (mut cap, step) = ObjectCapture::new(CaptureKind::WfRegister, Addr::new(0), wire);
        let first = match step {
            CaptureStep::Read(b) => b,
            step => panic!("expected header read, got {step:?}"),
        };
        assert_eq!(first, vec![Addr::new(0).block()]);
        let image = wf_image((&mut cap, &mem), first);
        assert_eq!(image.len() as u32, wire);
        assert_eq!(WfRegisterLayout::published_of(&image), (0, 0));
        assert_eq!(WfRegisterLayout::slot_seq_of(&image), 0);
        assert_eq!(WfRegisterLayout::payload_of(&image, 100), &payload[..]);
        assert_eq!(cap.restarts(), 0);
    }

    #[test]
    fn wf_restarts_when_published_slot_is_overwritten_mid_capture() {
        let mut mem = NodeMemory::new(1 << 16);
        let payload = vec![1u8; 100];
        WfRegisterLayout::init(&mut mem, Addr::new(0), &payload);
        let wire = WfRegisterLayout::wire_bytes(100) as u32;
        let (mut cap, step) = ObjectCapture::new(CaptureKind::WfRegister, Addr::new(0), wire);
        let CaptureStep::Read(hdr) = step else {
            panic!("expected read")
        };
        let step = cap.on_block(hdr[0], mem.read_block(hdr[0]));
        let CaptureStep::Read(slot_blocks) = step else {
            panic!("expected slot read")
        };
        // A (pathological) writer lapped all the way around and rewrote
        // slot 0 while the capture was reading it.
        let slot0 = WfRegisterLayout::slot_addr(Addr::new(0), 0, 100);
        mem.write_u64(slot0, 4);
        mem.write(slot0 + 8, &[2u8; 100]);
        mem.write_u64(Addr::new(0), WfRegisterLayout::pack(4, 0));
        cap.on_invalidation(slot0.block());
        cap.on_invalidation(Addr::new(0).block());
        let mut step = CaptureStep::Read(vec![]);
        for &b in &slot_blocks {
            step = cap.on_block(b, mem.read_block(b));
        }
        // Dirty snapshot: the capture restarts from the header.
        let CaptureStep::Read(retry) = step else {
            panic!("expected restart, got delivery of a torn image")
        };
        assert_eq!(retry, vec![Addr::new(0).block()]);
        assert_eq!(cap.restarts(), 1);
        let image = wf_image((&mut cap, &mem), retry);
        assert_eq!(WfRegisterLayout::published_of(&image), (4, 0));
        assert_eq!(WfRegisterLayout::slot_seq_of(&image), 4);
        assert_eq!(
            WfRegisterLayout::payload_of(&image, 100),
            &vec![2u8; 100][..]
        );
    }

    #[test]
    fn wf_ignores_publishes_of_other_slots() {
        let mut mem = NodeMemory::new(1 << 16);
        let payload = vec![3u8; 100];
        WfRegisterLayout::init(&mut mem, Addr::new(0), &payload);
        let wire = WfRegisterLayout::wire_bytes(100) as u32;
        let (mut cap, step) = ObjectCapture::new(CaptureKind::WfRegister, Addr::new(0), wire);
        let CaptureStep::Read(hdr) = step else {
            panic!("expected read")
        };
        let step = cap.on_block(hdr[0], mem.read_block(hdr[0]));
        let CaptureStep::Read(slot_blocks) = step else {
            panic!("expected slot read")
        };
        // Writer publishes seq 1 into slot 1 mid-capture: slot 0 is
        // untouched, so the in-flight snapshot of (0, slot 0) stays
        // consistent and must deliver without a restart.
        let slot1 = WfRegisterLayout::slot_addr(Addr::new(0), 1, 100);
        mem.write_u64(slot1, 1);
        mem.write(slot1 + 8, &[9u8; 100]);
        mem.write_u64(Addr::new(0), WfRegisterLayout::pack(1, 1));
        cap.on_invalidation(slot1.block());
        cap.on_invalidation(Addr::new(0).block());
        let image = wf_image((&mut cap, &mem), slot_blocks);
        assert_eq!(WfRegisterLayout::published_of(&image), (0, 0));
        assert_eq!(WfRegisterLayout::slot_seq_of(&image), 0);
        assert_eq!(WfRegisterLayout::payload_of(&image, 100), &payload[..]);
        assert_eq!(cap.restarts(), 0);
    }

    #[test]
    fn ohram_clean_capture_delivers_whole_object() {
        let mut mem = NodeMemory::new(1 << 16);
        // Clean layout shape: [version 2 | lock 0 | payload at +16].
        mem.write_u64(Addr::new(0), 2);
        mem.write(Addr::new(16), &[5u8; 100]);
        let wire = 128u32;
        let (mut cap, step) = ObjectCapture::new(CaptureKind::OhRam, Addr::new(0), wire);
        let CaptureStep::Read(blocks) = step else {
            panic!("expected read")
        };
        assert_eq!(blocks.len(), 2);
        let image = match feed(&mut cap, &mem, blocks) {
            CaptureStep::Deliver(b) => b.concat(),
            step => panic!("expected delivery, got {step:?}"),
        };
        assert_eq!(image.len(), 128);
        assert_eq!(&image[16..116], &vec![5u8; 100][..]);
        assert_eq!(cap.restarts(), 0);
    }

    #[test]
    fn ohram_restarts_on_locked_version_and_on_dirty_snapshot() {
        let mut mem = NodeMemory::new(1 << 16);
        mem.write_u64(Addr::new(0), 3); // odd: writer mid-update
        let (mut cap, step) = ObjectCapture::new(CaptureKind::OhRam, Addr::new(0), 128);
        let CaptureStep::Read(blocks) = step else {
            panic!("expected read")
        };
        let mut step = CaptureStep::Read(vec![]);
        for &b in &blocks {
            step = cap.on_block(b, mem.read_block(b));
        }
        let CaptureStep::Read(retry) = step else {
            panic!("locked version must not deliver")
        };
        assert_eq!(cap.restarts(), 1);
        // Writer finishes (even version) but dirties the second block
        // mid-recapture: restart again.
        mem.write_u64(Addr::new(0), 4);
        let step = cap.on_block(retry[0], mem.read_block(retry[0]));
        assert_eq!(step, CaptureStep::Read(vec![]));
        cap.on_invalidation(retry[1]);
        let step = cap.on_block(retry[1], mem.read_block(retry[1]));
        let CaptureStep::Read(retry2) = step else {
            panic!("dirty snapshot must not deliver")
        };
        assert_eq!(cap.restarts(), 2);
        // Quiescent now: delivers.
        match feed(&mut cap, &mem, retry2) {
            CaptureStep::Deliver(image) => {
                assert_eq!(u64::from_le_bytes(image[0][..8].try_into().unwrap()), 4);
            }
            step => panic!("expected delivery, got {step:?}"),
        }
    }

    #[test]
    fn tag_board_sits_on_the_last_block() {
        let addr = tag_board_addr(1 << 20);
        assert_eq!(addr.raw(), (1 << 20) - 64);
        assert_eq!(addr.block_offset(), 0);
    }
}
