//! Pilaf-style checksum atomicity: a CRC64 of the payload stored in the
//! object header, recomputed by every reader.
//!
//! The CRC is implemented here (CRC-64/ECMA-182: polynomial
//! `0x42F0E1EBA9EA3693`, zero init, no reflection, zero xorout) rather than
//! pulled from a crate — it keeps the dependency set to the approved list.
//! Its *simulated* cost is what matters for the paper's argument: ≈12 CPU
//! cycles per checksummed byte (§2.1), charged by
//! [`crate::cost::CpuCostModel::crc_time`]. The *host* cost matters too —
//! the checksum torture/figure runs recompute it for every read — so the
//! hot entry point ([`crc64_ecma`]) uses a slice-by-8 kernel: eight table
//! lookups fold eight message bytes per step, cutting the loop-carried
//! dependency chain from one table lookup per byte to one XOR tree per
//! word. [`crc64_ecma_scalar`] keeps the one-byte-at-a-time reference the
//! property tests (and the `kernels` bench baseline) compare against.

use sabre_mem::{Addr, NodeMemory, BLOCK_BYTES};

use crate::layout::AtomicityViolation;

const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][v]` is the
/// CRC of byte `v` followed by `k` zero bytes, so eight lookups — one per
/// byte of a 64-bit chunk, each shifted to its position — fold a whole
/// word at once.
fn crc_tables() -> &'static [[u64; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u64; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u64; 256]; 8];
        for (i, entry) in tables[0].iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ POLY
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = tables[k - 1][i];
                tables[k][i] = (prev << 8) ^ tables[0][(prev >> 56) as usize];
            }
        }
        tables
    })
}

/// CRC-64/ECMA-182 of `data` (slice-by-8).
///
/// # Example
///
/// ```
/// use sabre_sw::crc64_ecma;
///
/// // The standard check value for "123456789".
/// assert_eq!(crc64_ecma(b"123456789"), 0x6C40_DF5F_0B49_7347);
/// ```
pub fn crc64_ecma(data: &[u8]) -> u64 {
    let tables = crc_tables();
    let mut crc = 0u64;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        // MSB-first folding: the running CRC is XORed over the chunk's
        // leading bytes, then each byte advances through the CRC of
        // "that byte followed by its trailing zero bytes".
        let x = crc ^ u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        crc = tables[7][(x >> 56) as usize]
            ^ tables[6][(x >> 48) as usize & 0xFF]
            ^ tables[5][(x >> 40) as usize & 0xFF]
            ^ tables[4][(x >> 32) as usize & 0xFF]
            ^ tables[3][(x >> 24) as usize & 0xFF]
            ^ tables[2][(x >> 16) as usize & 0xFF]
            ^ tables[1][(x >> 8) as usize & 0xFF]
            ^ tables[0][x as usize & 0xFF];
    }
    for &b in chunks.remainder() {
        let idx = ((crc >> 56) ^ b as u64) & 0xFF;
        crc = (crc << 8) ^ tables[0][idx as usize];
    }
    crc
}

/// The byte-at-a-time CRC-64/ECMA-182 reference [`crc64_ecma`] is checked
/// against (and benchmarked as the baseline of).
pub fn crc64_ecma_scalar(data: &[u8]) -> u64 {
    let table = &crc_tables()[0];
    let mut crc = 0u64;
    for &b in data {
        let idx = ((crc >> 56) ^ b as u64) & 0xFF;
        crc = (crc << 8) ^ table[idx as usize];
    }
    crc
}

/// The Pilaf object layout: `[checksum u64][version u64][payload…]`,
/// block-aligned.
///
/// The version word is kept alongside the checksum so writers can still be
/// serialized by the odd/even protocol; readers validate with the checksum
/// alone (they do not trust any single word to be consistent with the
/// payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChecksumLayout;

impl ChecksumLayout {
    /// Header bytes (checksum + version).
    pub const HEADER_BYTES: usize = 16;

    /// Total footprint for `payload` bytes, block-aligned.
    pub fn object_bytes(payload: usize) -> usize {
        (Self::HEADER_BYTES + payload).div_ceil(BLOCK_BYTES) * BLOCK_BYTES
    }

    /// Encodes a full object image.
    pub fn encode(version: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; Self::object_bytes(payload.len())];
        out[..8].copy_from_slice(&crc64_ecma(payload).to_le_bytes());
        out[8..16].copy_from_slice(&version.to_le_bytes());
        out[16..16 + payload.len()].copy_from_slice(payload);
        out
    }

    /// Initializes an object at `base`.
    pub fn init(mem: &mut NodeMemory, base: Addr, payload: &[u8]) {
        mem.write(base, &Self::encode(0, payload));
    }

    /// Reader-side validation: recomputes the payload CRC and compares it
    /// with the stored one.
    ///
    /// # Errors
    ///
    /// [`AtomicityViolation::ChecksumMismatch`] when the image is torn.
    ///
    /// # Panics
    ///
    /// Panics if `image` is too short for `payload_len`.
    pub fn validate(image: &[u8], payload_len: usize) -> Result<&[u8], AtomicityViolation> {
        assert!(
            image.len() >= Self::HEADER_BYTES + payload_len,
            "image too short"
        );
        let stored = u64::from_le_bytes(image[..8].try_into().expect("8 bytes"));
        let payload = &image[16..16 + payload_len];
        if crc64_ecma(payload) != stored {
            return Err(AtomicityViolation::ChecksumMismatch);
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_check_value() {
        assert_eq!(crc64_ecma(b"123456789"), 0x6C40_DF5F_0B49_7347);
        assert_eq!(crc64_ecma_scalar(b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn slice_by_8_matches_scalar_at_every_alignment() {
        // Lengths straddling the 8-byte fold boundary (0..=7 tail bytes)
        // and a couple of large buffers.
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 131 + 17) as u8).collect();
        for len in (0..=64).chain([255, 256, 257, 1000, 1024]) {
            assert_eq!(
                crc64_ecma(&data[..len]),
                crc64_ecma_scalar(&data[..len]),
                "divergence at length {len}"
            );
        }
    }

    #[test]
    fn crc_distinguishes_inputs() {
        assert_ne!(crc64_ecma(b"hello"), crc64_ecma(b"hellp"));
        assert_eq!(crc64_ecma(b""), 0);
    }

    #[test]
    fn crc_is_order_sensitive() {
        assert_ne!(crc64_ecma(b"ab"), crc64_ecma(b"ba"));
    }

    #[test]
    fn layout_round_trip() {
        let payload: Vec<u8> = (0..200u8).collect();
        let image = ChecksumLayout::encode(4, &payload);
        assert_eq!(
            ChecksumLayout::validate(&image, 200).expect("clean image"),
            &payload[..]
        );
    }

    #[test]
    fn torn_image_detected() {
        let payload = vec![9u8; 300];
        let mut image = ChecksumLayout::encode(2, &payload);
        image[100] ^= 0xFF; // a racing writer's byte
        assert_eq!(
            ChecksumLayout::validate(&image, 300),
            Err(AtomicityViolation::ChecksumMismatch)
        );
    }

    #[test]
    fn memory_round_trip() {
        let mut mem = NodeMemory::new(4096);
        let payload = vec![5u8; 100];
        ChecksumLayout::init(&mut mem, Addr::new(64), &payload);
        let image = mem.read_vec(Addr::new(64), ChecksumLayout::object_bytes(100));
        assert!(ChecksumLayout::validate(&image, 100).is_ok());
    }
}
