//! The two object layouts the paper compares.
//!
//! **Clean layout** (used with SABRes): a 16-byte header (version word +
//! reader-lock word) followed by the contiguous payload. Nothing is
//! embedded in the data, so one-sided reads are zero-copy: the NI can DMA
//! straight into the application buffer and local readers consume the bytes
//! in place.
//!
//! **Per-cache-line versions layout** (FaRM, the state of the art in
//! software): every 64-byte line carries a version stamp — the full version
//! word in the head line, a replica of its low bits in every subsequent
//! line. Writers update all stamps; readers must compare every stamp
//! against the header *after* the transfer and strip the stamps out into a
//! clean buffer before the application may touch the data. We use 8-byte
//! stamps (l = 64), trading a little extra wire footprint for alignment,
//! exactly as the layout math below documents.

use sabre_mem::{Addr, NodeMemory, BLOCK_BYTES};

use crate::version::VersionWord;

/// A software-detected atomicity violation: the read raced a writer and the
/// caller must retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicityViolation {
    /// The header version was odd (writer in progress).
    WriterInProgress,
    /// A line's stamp disagreed with the header version.
    StampMismatch {
        /// Index of the first mismatching line.
        line: usize,
    },
    /// The recomputed checksum disagreed with the stored one.
    ChecksumMismatch,
}

impl std::fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AtomicityViolation::WriterInProgress => f.write_str("header version is odd"),
            AtomicityViolation::StampMismatch { line } => {
                write!(f, "version stamp mismatch in line {line}")
            }
            AtomicityViolation::ChecksumMismatch => f.write_str("checksum mismatch"),
        }
    }
}

impl std::error::Error for AtomicityViolation {}

/// The clean (SABRe-friendly) object layout.
///
/// ```text
/// offset 0: version word (u64)   offset 8: reader-lock word (u64)
/// offset 16..: payload
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanLayout;

impl CleanLayout {
    /// Header bytes preceding the payload.
    pub const HEADER_BYTES: usize = 16;

    /// Total in-memory object footprint for a payload of `payload` bytes,
    /// rounded up to whole cache blocks (objects are block-aligned).
    pub fn object_bytes(payload: usize) -> usize {
        (Self::HEADER_BYTES + payload).div_ceil(BLOCK_BYTES) * BLOCK_BYTES
    }

    /// Bytes that travel on the wire for a one-sided read of the object.
    pub fn wire_bytes(payload: usize) -> usize {
        Self::object_bytes(payload)
    }

    /// Address of the payload within an object at `base`.
    pub fn payload_addr(base: Addr) -> Addr {
        base + Self::HEADER_BYTES as u64
    }

    /// Initializes an object at `base` with version 0 and the payload.
    pub fn init(mem: &mut NodeMemory, base: Addr, payload: &[u8]) {
        mem.write_u64(base, 0);
        mem.write_u64(base + 8, 0);
        mem.write(Self::payload_addr(base), payload);
    }

    /// Reads the payload of an object image (as transferred) — zero
    /// validation needed beyond the SABRe's hardware guarantee.
    ///
    /// # Panics
    ///
    /// Panics if the image is shorter than header + `payload_len`.
    pub fn payload_of(image: &[u8], payload_len: usize) -> &[u8] {
        &image[Self::HEADER_BYTES..Self::HEADER_BYTES + payload_len]
    }

    /// The version word of an object image.
    pub fn version_of(image: &[u8]) -> VersionWord {
        VersionWord::new(u64::from_le_bytes(image[..8].try_into().expect("8 bytes")))
    }
}

/// FaRM's per-cache-line versions layout.
///
/// ```text
/// line 0:  [version u64][56 B data]
/// line i:  [stamp   u64][56 B data]      (stamp = version, i ≥ 1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerClLayout;

impl PerClLayout {
    /// Bytes of stamp per line (l = 64 bits).
    pub const STAMP_BYTES: usize = 8;

    /// Payload bytes carried per line.
    pub const DATA_PER_LINE: usize = BLOCK_BYTES - Self::STAMP_BYTES;

    /// Number of lines needed for `payload` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `payload == 0`.
    pub fn lines_needed(payload: usize) -> usize {
        assert!(payload > 0, "empty objects are not stored");
        payload.div_ceil(Self::DATA_PER_LINE)
    }

    /// Total in-memory (and on-wire) footprint for `payload` bytes — the
    /// stamp overhead is why per-CL objects move more bytes than clean ones
    /// (e.g. 8 KB of payload occupies 147 lines = 9408 B).
    pub fn object_bytes(payload: usize) -> usize {
        Self::lines_needed(payload) * BLOCK_BYTES
    }

    /// Bytes on the wire for a one-sided read (same as the footprint).
    pub fn wire_bytes(payload: usize) -> usize {
        Self::object_bytes(payload)
    }

    /// Encodes line `line` of an object holding `payload` at `version`.
    /// Used by simulated writers, which update one line per simulated store.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range for the payload.
    pub fn encode_line(version: VersionWord, payload: &[u8], line: usize) -> [u8; BLOCK_BYTES] {
        let lines = Self::lines_needed(payload.len());
        assert!(line < lines, "line {line} out of range ({lines} lines)");
        let mut out = [0u8; BLOCK_BYTES];
        out[..8].copy_from_slice(&version.raw().to_le_bytes());
        let start = line * Self::DATA_PER_LINE;
        let end = (start + Self::DATA_PER_LINE).min(payload.len());
        out[Self::STAMP_BYTES..Self::STAMP_BYTES + (end - start)]
            .copy_from_slice(&payload[start..end]);
        out
    }

    /// Encodes a whole object image (initialization fast path).
    pub fn encode(version: VersionWord, payload: &[u8]) -> Vec<u8> {
        let lines = Self::lines_needed(payload.len());
        let mut out = Vec::with_capacity(lines * BLOCK_BYTES);
        for line in 0..lines {
            out.extend_from_slice(&Self::encode_line(version, payload, line));
        }
        out
    }

    /// Initializes an object at `base` in simulated memory.
    pub fn init(mem: &mut NodeMemory, base: Addr, payload: &[u8]) {
        mem.write(base, &Self::encode(VersionWord::new(0), payload));
    }

    /// The post-transfer software atomicity check + strip (the cost the
    /// paper's hardware removes): verifies the header version is even and
    /// every line stamp matches it, then extracts the clean payload.
    ///
    /// # Errors
    ///
    /// Returns the violation the caller must retry on.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not the exact footprint for `payload_len`.
    pub fn validate_and_strip(
        image: &[u8],
        payload_len: usize,
    ) -> Result<Vec<u8>, AtomicityViolation> {
        let lines = Self::lines_needed(payload_len);
        assert_eq!(
            image.len(),
            lines * BLOCK_BYTES,
            "image size does not match payload length"
        );
        let header = VersionWord::new(u64::from_le_bytes(image[..8].try_into().expect("8 bytes")));
        if header.is_locked() {
            return Err(AtomicityViolation::WriterInProgress);
        }
        let mut payload = Vec::with_capacity(payload_len);
        for line in 0..lines {
            let off = line * BLOCK_BYTES;
            let stamp = u64::from_le_bytes(image[off..off + 8].try_into().expect("8 bytes"));
            if stamp != header.raw() {
                return Err(AtomicityViolation::StampMismatch { line });
            }
            let take = (payload_len - payload.len()).min(Self::DATA_PER_LINE);
            payload
                .extend_from_slice(&image[off + Self::STAMP_BYTES..off + Self::STAMP_BYTES + take]);
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_layout_geometry() {
        assert_eq!(CleanLayout::object_bytes(48), 64);
        assert_eq!(CleanLayout::object_bytes(49), 128);
        assert_eq!(CleanLayout::object_bytes(8192), 8192 + 64);
    }

    #[test]
    fn clean_layout_round_trip() {
        let mut mem = NodeMemory::new(4096);
        let payload: Vec<u8> = (0..100u8).collect();
        CleanLayout::init(&mut mem, Addr::new(0), &payload);
        let image = mem.read_vec(Addr::new(0), CleanLayout::object_bytes(100));
        assert_eq!(CleanLayout::version_of(&image).raw(), 0);
        assert_eq!(CleanLayout::payload_of(&image, 100), &payload[..]);
    }

    #[test]
    fn percl_geometry_matches_paper_math() {
        assert_eq!(PerClLayout::DATA_PER_LINE, 56);
        assert_eq!(PerClLayout::lines_needed(56), 1);
        assert_eq!(PerClLayout::lines_needed(57), 2);
        // 8 KB payload: 147 lines, 9408 B on the wire (≈15% overhead).
        assert_eq!(PerClLayout::lines_needed(8192), 147);
        assert_eq!(PerClLayout::wire_bytes(8192), 9408);
    }

    #[test]
    fn percl_round_trip() {
        let payload: Vec<u8> = (0..=255).cycle().take(1000).map(|b| b as u8).collect();
        let image = PerClLayout::encode(VersionWord::new(8), &payload);
        let out = PerClLayout::validate_and_strip(&image, 1000).expect("clean image validates");
        assert_eq!(out, payload);
    }

    #[test]
    fn percl_detects_writer_in_progress() {
        let payload = vec![7u8; 200];
        let image = PerClLayout::encode(VersionWord::new(3), &payload);
        assert_eq!(
            PerClLayout::validate_and_strip(&image, 200),
            Err(AtomicityViolation::WriterInProgress)
        );
    }

    #[test]
    fn percl_detects_torn_lines() {
        let payload = vec![1u8; 200]; // 4 lines
        let mut image = PerClLayout::encode(VersionWord::new(4), &payload);
        // Simulate a racing writer having rewritten line 2 at version 6.
        let newer = PerClLayout::encode_line(VersionWord::new(6), &[2u8; 200], 2);
        image[2 * BLOCK_BYTES..3 * BLOCK_BYTES].copy_from_slice(&newer);
        assert_eq!(
            PerClLayout::validate_and_strip(&image, 200),
            Err(AtomicityViolation::StampMismatch { line: 2 })
        );
    }

    #[test]
    fn percl_write_read_through_memory() {
        let mut mem = NodeMemory::new(4096);
        let payload: Vec<u8> = (0..100u8).collect();
        PerClLayout::init(&mut mem, Addr::new(0), &payload);
        let image = mem.read_vec(Addr::new(0), PerClLayout::object_bytes(100));
        assert_eq!(
            PerClLayout::validate_and_strip(&image, 100).unwrap(),
            payload
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_line_bounds() {
        let _ = PerClLayout::encode_line(VersionWord::new(0), &[0u8; 56], 1);
    }
}
