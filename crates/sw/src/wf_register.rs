//! The wait-free multi-version register layout (Ianni et al.'s (1,N)
//! multi-word register, adapted to one-sided object reads).
//!
//! Each object keeps [`WfRegisterLayout::SLOTS`] complete versions of its
//! payload plus a header block holding one *publish word* that names the
//! current version. The writer cycles through the slots: it writes the next
//! full version into the slot *after* the published one, then publishes
//! with a single atomic store of the packed `(seq, slot)` word. Readers
//! snapshot the publish word, then copy the named slot — which the writer
//! will not touch again until it has published `SLOTS - 1` newer versions —
//! so a reader always observes a complete, consistent version and never
//! aborts. The cost is footprint (`SLOTS` copies in memory) while the wire
//! transfer stays one header block + one slot.
//!
//! ```text
//! offset 0:               publish word (u64: seq * SLOTS + slot), padded
//!                         to one block so the publish store is atomic
//! offset 64 + i*slot:     slot i = [seq u64 | payload…], block-rounded
//! ```

use sabre_mem::{Addr, NodeMemory, BLOCK_BYTES};

/// The wait-free register object layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WfRegisterLayout;

impl WfRegisterLayout {
    /// Versions kept per object. The writer reuses a slot only after
    /// publishing `SLOTS - 1` newer versions, so a reader that snapshots
    /// the publish word and then copies the named slot races nothing
    /// unless the writer laps it `SLOTS - 1` times mid-copy.
    pub const SLOTS: u64 = 4;

    /// The header block holding the publish word (padded to a whole block
    /// so publishing is a single atomic store).
    pub const HEADER_BYTES: usize = BLOCK_BYTES;

    /// Bytes of slot header (the sequence word) preceding each slot's
    /// payload.
    pub const SLOT_HEADER_BYTES: usize = 8;

    /// Footprint of one version slot: seq word + payload, block-rounded.
    pub fn slot_bytes(payload: usize) -> usize {
        (Self::SLOT_HEADER_BYTES + payload).div_ceil(BLOCK_BYTES) * BLOCK_BYTES
    }

    /// Total in-memory footprint: header block + all slots.
    pub fn object_bytes(payload: usize) -> usize {
        Self::HEADER_BYTES + Self::SLOTS as usize * Self::slot_bytes(payload)
    }

    /// Bytes a read transfers: the header block + exactly one slot (the
    /// store serves the published version, not the whole slot array).
    pub fn wire_bytes(payload: usize) -> usize {
        Self::HEADER_BYTES + Self::slot_bytes(payload)
    }

    /// Packs a publish word from a version sequence number and the slot
    /// holding it.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= SLOTS`.
    pub fn pack(seq: u64, slot: u64) -> u64 {
        assert!(slot < Self::SLOTS, "slot {slot} out of range");
        seq * Self::SLOTS + slot
    }

    /// Splits a publish word into `(seq, slot)`.
    pub fn unpack(word: u64) -> (u64, u64) {
        (word / Self::SLOTS, word % Self::SLOTS)
    }

    /// Base address of slot `slot` of an object at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= SLOTS`.
    pub fn slot_addr(base: Addr, slot: u64, payload: usize) -> Addr {
        assert!(slot < Self::SLOTS, "slot {slot} out of range");
        base + Self::HEADER_BYTES as u64 + slot * Self::slot_bytes(payload) as u64
    }

    /// Initializes an object at `base`: seq 0 in slot 0 published, every
    /// slot pre-filled with the initial payload (so even a reader racing
    /// the very first update finds a complete version).
    pub fn init(mem: &mut NodeMemory, base: Addr, payload: &[u8]) {
        mem.write_u64(base, Self::pack(0, 0));
        for slot in 0..Self::SLOTS {
            let sb = Self::slot_addr(base, slot, payload.len());
            mem.write_u64(sb, 0);
            mem.write(sb + Self::SLOT_HEADER_BYTES as u64, payload);
        }
    }

    /// The `(seq, slot)` published in a wire image (header block + slot).
    pub fn published_of(image: &[u8]) -> (u64, u64) {
        Self::unpack(u64::from_le_bytes(image[..8].try_into().expect("8 bytes")))
    }

    /// The sequence word embedded in the transferred slot. A correctly
    /// captured image always satisfies `slot_seq_of == published_of().0`.
    pub fn slot_seq_of(image: &[u8]) -> u64 {
        u64::from_le_bytes(
            image[Self::HEADER_BYTES..Self::HEADER_BYTES + 8]
                .try_into()
                .expect("8 bytes"),
        )
    }

    /// The payload of a wire image.
    ///
    /// # Panics
    ///
    /// Panics if the image is shorter than header + seq word +
    /// `payload_len`.
    pub fn payload_of(image: &[u8], payload_len: usize) -> &[u8] {
        let start = Self::HEADER_BYTES + Self::SLOT_HEADER_BYTES;
        &image[start..start + payload_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        // 1 KB payload: slot = 1088 (17 blocks), object = 64 + 4*1088,
        // wire = 64 + 1088.
        assert_eq!(WfRegisterLayout::slot_bytes(1024), 1088);
        assert_eq!(WfRegisterLayout::object_bytes(1024), 64 + 4 * 1088);
        assert_eq!(WfRegisterLayout::wire_bytes(1024), 64 + 1088);
        // Tiny payloads still get a whole block per slot.
        assert_eq!(WfRegisterLayout::slot_bytes(8), 64);
    }

    #[test]
    fn pack_round_trips() {
        for seq in [0u64, 1, 7, 1 << 40] {
            for slot in 0..WfRegisterLayout::SLOTS {
                assert_eq!(
                    WfRegisterLayout::unpack(WfRegisterLayout::pack(seq, slot)),
                    (seq, slot)
                );
            }
        }
    }

    #[test]
    fn init_publishes_slot_zero_everywhere() {
        let mut mem = NodeMemory::new(1 << 16);
        let payload: Vec<u8> = (0..200u8).collect();
        WfRegisterLayout::init(&mut mem, Addr::new(0), &payload);
        assert_eq!(WfRegisterLayout::unpack(mem.read_u64(Addr::new(0))), (0, 0));
        for slot in 0..WfRegisterLayout::SLOTS {
            let sb = WfRegisterLayout::slot_addr(Addr::new(0), slot, 200);
            assert_eq!(mem.read_u64(sb), 0);
            assert_eq!(mem.read_vec(sb + 8, 200), payload);
        }
    }

    #[test]
    fn wire_image_accessors() {
        let payload = vec![9u8; 100];
        let mut image = vec![0u8; WfRegisterLayout::wire_bytes(100)];
        image[..8].copy_from_slice(&WfRegisterLayout::pack(5, 1).to_le_bytes());
        image[64..72].copy_from_slice(&5u64.to_le_bytes());
        image[72..172].copy_from_slice(&payload);
        assert_eq!(WfRegisterLayout::published_of(&image), (5, 1));
        assert_eq!(WfRegisterLayout::slot_seq_of(&image), 5);
        assert_eq!(WfRegisterLayout::payload_of(&image, 100), &payload[..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_bounds_checked() {
        let _ = WfRegisterLayout::slot_addr(Addr::new(0), WfRegisterLayout::SLOTS, 64);
    }
}
