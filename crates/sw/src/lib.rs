//! Software atomicity mechanisms for one-sided object reads.
//!
//! These are the *source-side* concurrency-control schemes of Table 1 that
//! the paper's hardware proposal replaces, implemented functionally (on real
//! bytes, so torn reads are detectable for real) plus the CPU cost model
//! used to charge their cycles in the timing simulation:
//!
//! * [`layout`] — the two object layouts: the **clean** layout used with
//!   SABRes (header + contiguous payload, zero-copy-friendly) and FaRM's
//!   **per-cache-line versions** layout (a version stamp embedded in every
//!   64-byte line, requiring post-transfer validation + stripping).
//! * [`version`] — the Masstree-style odd/even version protocol shared by
//!   all mechanisms, plus the shared reader-lock word used by
//!   destination-side locking.
//! * [`checksum`] — Pilaf's approach: a CRC64 (ECMA-182) over the payload
//!   stored in the header, recomputed by readers (≈12 cycles/byte).
//! * [`locking`] — DrTM-style *remote* lock acquisition: an extra RDMA CAS
//!   roundtrip before the data read (and the lease variant).
//! * [`cost`] — the calibrated CPU cost model (cycles per byte for strip /
//!   CRC / copy / read) used by the latency breakdowns of Figs. 1 and 9a.
//! * [`wf_register`] — the wait-free multi-version register layout
//!   (Ianni et al.): readers never abort, writers rotate version slots.
//! * [`capture`] — the server-side [`ObjectCapture`] state machine the
//!   R2P2 service pipeline runs for the WfRegister and Oh-RAM read
//!   protocols (assemble a consistent image, then stream it in one burst).

pub mod capture;
pub mod checksum;
pub mod cost;
pub mod layout;
pub mod locking;
pub mod version;
pub mod wf_register;

pub use capture::{tag_board_addr, CaptureKind, CaptureStep, ObjectCapture};
pub use checksum::{crc64_ecma, crc64_ecma_scalar, ChecksumLayout};
pub use cost::CpuCostModel;
pub use layout::{AtomicityViolation, CleanLayout, PerClLayout};
pub use version::{ReaderLockWord, VersionWord};
pub use wf_register::WfRegisterLayout;
