//! The calibrated CPU cost model.
//!
//! The paper's argument is about *software* overhead on the critical path,
//! so the simulation needs credible CPU-side costs for the software
//! atomicity mechanisms. We charge them analytically, in cycles, on the
//! Table 2 core (2 GHz, 3-wide OoO):
//!
//! | kernel | rate | source |
//! |---|---|---|
//! | per-CL validate+strip | ≈2 B/cycle | Fig. 1: stripping 8 KB ≈ 2 µs — the paper hand-tuned this kernel for maximum MLP |
//! | CRC64 | 12 cycles/B | §2.1: "about a dozen CPU cycles per checksummed byte" |
//! | memcpy (cache-resident) | 8 B/cycle | typical for a 3-wide core with 16 B loads/stores |
//! | streaming read, L1 | 16 B/cycle | two 8 B loads/cycle |
//! | streaming read, LLC | 6 B/cycle | ≈12 GB/s single-thread |
//! | streaming read, DRAM | 2.6 B/cycle | ≈5.2 GB/s single-thread with MLP |
//!
//! The rates are *calibration constants*, not claims of cycle accuracy;
//! EXPERIMENTS.md records how the resulting latency breakdowns compare to
//! the paper's.

use sabre_sim::{Freq, Time};

/// Where the bytes a core is consuming currently live. Determines the
/// streaming-read rate (the Fig. 9a "application" component differs between
/// baseline and SABRes precisely because of this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Data already in the L1d (e.g. just written by the strip kernel).
    L1,
    /// Data in the LLC (e.g. just DMA-ed in by the NI).
    Llc,
    /// Data in DRAM.
    Memory,
}

/// The per-core cost model.
#[derive(Debug, Clone)]
pub struct CpuCostModel {
    /// Core clock (Table 2: 2 GHz).
    pub clock: Freq,
    /// Per-CL validate+strip throughput, bytes of *wire image* per cycle.
    pub strip_bytes_per_cycle: f64,
    /// CRC64 cost in cycles per byte.
    pub crc_cycles_per_byte: f64,
    /// Cache-resident memcpy throughput in bytes per cycle.
    pub memcpy_bytes_per_cycle: f64,
    /// Streaming-read throughput from L1, bytes per cycle.
    pub read_l1_bytes_per_cycle: f64,
    /// Streaming-read throughput from LLC, bytes per cycle.
    pub read_llc_bytes_per_cycle: f64,
    /// Streaming-read throughput from DRAM, bytes per cycle.
    pub read_mem_bytes_per_cycle: f64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel {
            clock: Freq::ghz(2.0),
            strip_bytes_per_cycle: 2.0,
            crc_cycles_per_byte: 12.0,
            memcpy_bytes_per_cycle: 8.0,
            read_l1_bytes_per_cycle: 16.0,
            read_llc_bytes_per_cycle: 6.0,
            read_mem_bytes_per_cycle: 2.6,
        }
    }
}

impl CpuCostModel {
    /// Duration of `n` whole cycles.
    pub fn cycles(&self, n: u64) -> Time {
        self.clock.cycles(n)
    }

    /// Time to validate + strip a per-CL image of `wire_bytes` (the Fig. 1
    /// "version stripping" component).
    pub fn strip_time(&self, wire_bytes: usize) -> Time {
        self.clock
            .cycles_f64(wire_bytes as f64 / self.strip_bytes_per_cycle)
    }

    /// Time to CRC64 `bytes` of payload (Pilaf readers and writers).
    pub fn crc_time(&self, bytes: usize) -> Time {
        self.clock
            .cycles_f64(bytes as f64 * self.crc_cycles_per_byte)
    }

    /// Time to copy `bytes` between cache-resident buffers.
    pub fn memcpy_time(&self, bytes: usize) -> Time {
        self.clock
            .cycles_f64(bytes as f64 / self.memcpy_bytes_per_cycle)
    }

    /// Time for the application to stream-read `bytes` from `src`.
    pub fn read_time(&self, bytes: usize, src: DataSource) -> Time {
        let rate = match src {
            DataSource::L1 => self.read_l1_bytes_per_cycle,
            DataSource::Llc => self.read_llc_bytes_per_cycle,
            DataSource::Memory => self.read_mem_bytes_per_cycle,
        };
        self.clock.cycles_f64(bytes as f64 / rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_rate_matches_fig1_scale() {
        let m = CpuCostModel::default();
        // 8 KB payload = 9408 wire bytes → ≈2.35 µs at 2 B/cycle @ 2 GHz.
        let t = m.strip_time(9408);
        assert!((t.as_us() - 2.352).abs() < 0.01, "{t}");
        // Small objects are cheap: 192 B ≈ 48 ns.
        assert_eq!(m.strip_time(192), Time::from_ns(48));
    }

    #[test]
    fn crc_is_an_order_of_magnitude_slower() {
        let m = CpuCostModel::default();
        // 8 KB at 12 cycles/B @ 2 GHz ≈ 49 µs — the §2.1 "tens of thousands
        // of CPU cycles" figure.
        let t = m.crc_time(8192);
        assert!((t.as_us() - 49.152).abs() < 0.01, "{t}");
        assert!(m.crc_time(8192) > m.strip_time(9408) * 10);
    }

    #[test]
    fn read_rates_ordered_by_locality() {
        let m = CpuCostModel::default();
        let l1 = m.read_time(4096, DataSource::L1);
        let llc = m.read_time(4096, DataSource::Llc);
        let mem = m.read_time(4096, DataSource::Memory);
        assert!(l1 < llc && llc < mem);
    }

    #[test]
    fn memcpy_time_example() {
        let m = CpuCostModel::default();
        // 8 KB at 8 B/cycle = 1024 cycles = 512 ns.
        assert_eq!(m.memcpy_time(8192), Time::from_ns(512));
    }

    #[test]
    fn cycles_helper() {
        let m = CpuCostModel::default();
        assert_eq!(m.cycles(10), Time::from_ns(5));
    }
}
