//! Source-side remote locking (DrTM-style), the top-left quadrant of
//! Table 1.
//!
//! A reader that wants an atomic remote object read under this scheme pays:
//!
//! 1. a one-sided **remote CAS** on the object's lock word (one full network
//!    roundtrip) to acquire the lock;
//! 2. the one-sided **data read** itself;
//! 3. a one-sided **unlock write** — fired asynchronously, so it adds
//!    occupancy but not latency.
//!
//! The paper's two criticisms are both observable here: the extra roundtrip
//! (vs. SABRes' zero) and the fault-tolerance coupling (a crashed reader
//! leaves the lock held — represented by an unreleased lock in simulated
//! memory). The lease variant bounds that exposure at the cost of
//! clock-skew sensitivity, modeled as an expiry timestamp.

use sabre_mem::{Addr, NodeMemory};
use sabre_sim::Time;

use crate::version::VersionWord;

/// Outcome of a remote CAS on a lock word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// The lock was acquired.
    Acquired,
    /// The word did not match (someone else holds the lock).
    Contended,
}

/// Performs the remote CAS a DrTM-style reader sends: atomically flips the
/// version word from even (free) to odd (held). Executed at a single
/// simulated instant at the destination's memory.
pub fn remote_cas_lock(mem: &mut NodeMemory, version_addr: Addr) -> CasOutcome {
    let v = VersionWord::load(mem, version_addr);
    if v.is_locked() {
        return CasOutcome::Contended;
    }
    v.locked().store(mem, version_addr);
    CasOutcome::Acquired
}

/// The matching unlock: flips the word back to even, *advancing* the
/// version so that optimistic readers racing the locked section retry.
///
/// # Panics
///
/// Panics if the lock is not held (protocol bug).
pub fn remote_unlock(mem: &mut NodeMemory, version_addr: Addr) {
    let v = VersionWord::load(mem, version_addr);
    v.unlocked().store(mem, version_addr);
}

/// A lease lock: a lock acquisition that self-expires, the DrTM answer to
/// the deadlock-on-failure problem. Sensitive to clock skew between the
/// machines — [`LeaseLock::is_valid_at`] takes the *local* clock, and a
/// skewed holder may believe the lease valid while the destination has
/// already re-granted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseLock {
    /// When the lease was granted (destination clock).
    pub granted_at: Time,
    /// Lease duration.
    pub duration: Time,
}

impl LeaseLock {
    /// Grants a lease at `now` for `duration`.
    pub fn grant(now: Time, duration: Time) -> Self {
        LeaseLock {
            granted_at: now,
            duration,
        }
    }

    /// Expiry instant (destination clock).
    pub fn expires_at(&self) -> Time {
        self.granted_at + self.duration
    }

    /// Whether the lease is still valid at `local_now + skew`: a holder
    /// whose clock runs behind the grantor's by `skew` believes the lease
    /// lasts longer than it does.
    pub fn is_valid_at(&self, local_now: Time, skew: Time) -> bool {
        local_now + skew < self.expires_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_lock_unlock_cycle() {
        let mut mem = NodeMemory::new(256);
        let va = Addr::new(0);
        assert_eq!(remote_cas_lock(&mut mem, va), CasOutcome::Acquired);
        assert_eq!(remote_cas_lock(&mut mem, va), CasOutcome::Contended);
        remote_unlock(&mut mem, va);
        // Version advanced past the critical section: 0 → 1 → 2.
        assert_eq!(VersionWord::load(&mem, va).raw(), 2);
        assert_eq!(remote_cas_lock(&mut mem, va), CasOutcome::Acquired);
    }

    #[test]
    #[should_panic(expected = "not locked")]
    fn unlock_free_lock_panics() {
        let mut mem = NodeMemory::new(256);
        remote_unlock(&mut mem, Addr::new(0));
    }

    #[test]
    fn lease_expiry() {
        let lease = LeaseLock::grant(Time::from_us(10), Time::from_us(5));
        assert!(lease.is_valid_at(Time::from_us(12), Time::ZERO));
        assert!(!lease.is_valid_at(Time::from_us(15), Time::ZERO));
    }

    #[test]
    fn clock_skew_shrinks_effective_lease() {
        let lease = LeaseLock::grant(Time::ZERO, Time::from_us(10));
        // With 4 us of skew the holder must stop 4 us early.
        assert!(lease.is_valid_at(Time::from_us(5), Time::from_us(4)));
        assert!(!lease.is_valid_at(Time::from_us(7), Time::from_us(4)));
    }
}
