//! The odd/even object version protocol (§4.2) and the shared reader-lock
//! word used by destination-side locking.
//!
//! Every object's header starts with a 64-bit version word, "similar in
//! philosophy to Masstree's object versions": writers increment it to
//! acquire exclusive access (making it odd) and increment it again when done
//! (making it even). An odd version therefore means *locked*; an even
//! version is a stable snapshot identifier.

use sabre_mem::{Addr, NodeMemory};

/// Typed view of a 64-bit odd/even version word.
///
/// # Example
///
/// ```
/// use sabre_sw::VersionWord;
///
/// let v = VersionWord::new(4);
/// assert!(!v.is_locked());
/// assert_eq!(v.locked().raw(), 5);
/// assert!(VersionWord::new(5).is_locked());
/// assert_eq!(VersionWord::new(5).unlocked().raw(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VersionWord(u64);

impl VersionWord {
    /// Wraps a raw version value.
    pub const fn new(raw: u64) -> Self {
        VersionWord(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether a writer currently holds the object (odd value).
    pub const fn is_locked(self) -> bool {
        self.0 % 2 == 1
    }

    /// The version after a writer's first increment (lock acquisition).
    ///
    /// # Panics
    ///
    /// Panics if already locked — writers must be serialized by the caller.
    pub fn locked(self) -> VersionWord {
        assert!(!self.is_locked(), "version already locked: {}", self.0);
        VersionWord(self.0 + 1)
    }

    /// The version after a writer's second increment (publish + unlock).
    ///
    /// # Panics
    ///
    /// Panics if not locked.
    pub fn unlocked(self) -> VersionWord {
        assert!(self.is_locked(), "version not locked: {}", self.0);
        VersionWord(self.0 + 1)
    }
}

/// Helpers for manipulating a version word in simulated memory. These model
/// single-block (hence atomic) accesses by local writer threads.
impl VersionWord {
    /// Loads the version word at `addr`.
    pub fn load(mem: &NodeMemory, addr: Addr) -> VersionWord {
        VersionWord(mem.read_u64(addr))
    }

    /// Stores `self` at `addr`.
    pub fn store(self, mem: &mut NodeMemory, addr: Addr) {
        mem.write_u64(addr, self.0);
    }
}

/// The shared reader-lock word used by destination-side locking
/// (`sabre_core::CcMode::Locking`): a count of readers currently holding
/// the object. Writers wait for zero; the LightSABRes engine increments and
/// decrements it with atomic RMWs.
///
/// By convention it lives at `version_addr + 8` in the clean layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ReaderLockWord(u64);

impl ReaderLockWord {
    /// Offset of the reader-lock word relative to the version word.
    pub const OFFSET_FROM_VERSION: u64 = 8;

    /// Number of readers currently holding the lock.
    pub const fn readers(self) -> u64 {
        self.0
    }

    /// Attempts a shared acquire at `version_addr`: fails if a writer holds
    /// the object (odd version). Performed as one atomic RMW at a single
    /// simulated instant.
    ///
    /// Returns whether the lock was acquired.
    pub fn try_shared_acquire(mem: &mut NodeMemory, version_addr: Addr) -> bool {
        if VersionWord::load(mem, version_addr).is_locked() {
            return false;
        }
        let lock_addr = version_addr + Self::OFFSET_FROM_VERSION;
        let count = mem.read_u64(lock_addr);
        mem.write_u64(lock_addr, count + 1);
        true
    }

    /// Releases one shared hold at `version_addr`.
    ///
    /// # Panics
    ///
    /// Panics if no reader holds the lock (a protocol bug).
    pub fn shared_release(mem: &mut NodeMemory, version_addr: Addr) {
        let lock_addr = version_addr + Self::OFFSET_FROM_VERSION;
        let count = mem.read_u64(lock_addr);
        assert!(count > 0, "reader-lock release without acquire");
        mem.write_u64(lock_addr, count - 1);
    }

    /// Whether a writer may proceed: no readers hold the lock.
    pub fn writer_may_lock(mem: &NodeMemory, version_addr: Addr) -> bool {
        mem.read_u64(version_addr + Self::OFFSET_FROM_VERSION) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_even_protocol() {
        let v0 = VersionWord::new(0);
        assert!(!v0.is_locked());
        let v1 = v0.locked();
        assert!(v1.is_locked());
        let v2 = v1.unlocked();
        assert!(!v2.is_locked());
        assert_eq!(v2.raw(), 2);
    }

    #[test]
    #[should_panic(expected = "already locked")]
    fn double_lock_panics() {
        let _ = VersionWord::new(1).locked();
    }

    #[test]
    #[should_panic(expected = "not locked")]
    fn unlock_free_panics() {
        let _ = VersionWord::new(2).unlocked();
    }

    #[test]
    fn memory_round_trip() {
        let mut mem = NodeMemory::new(256);
        VersionWord::new(42).store(&mut mem, Addr::new(64));
        assert_eq!(VersionWord::load(&mem, Addr::new(64)).raw(), 42);
    }

    #[test]
    fn reader_lock_protocol() {
        let mut mem = NodeMemory::new(256);
        let va = Addr::new(0);
        assert!(ReaderLockWord::writer_may_lock(&mem, va));
        assert!(ReaderLockWord::try_shared_acquire(&mut mem, va));
        assert!(ReaderLockWord::try_shared_acquire(&mut mem, va));
        assert!(!ReaderLockWord::writer_may_lock(&mem, va));
        ReaderLockWord::shared_release(&mut mem, va);
        ReaderLockWord::shared_release(&mut mem, va);
        assert!(ReaderLockWord::writer_may_lock(&mem, va));
    }

    #[test]
    fn reader_lock_blocked_by_writer() {
        let mut mem = NodeMemory::new(256);
        let va = Addr::new(0);
        VersionWord::new(3).store(&mut mem, va); // odd: writer holds
        assert!(!ReaderLockWord::try_shared_acquire(&mut mem, va));
        assert!(ReaderLockWord::writer_may_lock(&mem, va));
    }

    #[test]
    #[should_panic(expected = "without acquire")]
    fn release_without_acquire_panics() {
        let mut mem = NodeMemory::new(256);
        ReaderLockWord::shared_release(&mut mem, Addr::new(0));
    }
}
