//! Property tests of the alternative read protocols' server-side captures.
//!
//! The wait-free register's claim is *universal*: under any interleaving of
//! writer micro-steps (payload stores, slot seq stamp, publish) with
//! capture micro-steps (block reads), a reader observes a complete,
//! consistent version, versions are monotonically non-decreasing, and the
//! client never aborts — the capture always terminates in a delivery.
//! Oh-RAM's capture makes the same atomicity promise over the clean layout
//! (plus the 1.5-round fabric bound, pinned below on a real scenario).
//! Proptest explores the interleavings; the model writer below performs
//! byte-for-byte the stores the rack's [`sabre_rack::workloads::Writer`]
//! performs, one micro-step per scheduled turn.

use std::collections::VecDeque;

use proptest::prelude::*;

use sabre_mem::{Addr, BlockAddr, BlockRange, NodeMemory, BLOCK_BYTES};
use sabre_sw::{CaptureKind, CaptureStep, ObjectCapture, WfRegisterLayout};

/// Version `seq`'s payload: position-dependent so a torn image mixing two
/// versions differs from both in almost every byte.
fn body(seq: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (seq as u8)
                .wrapping_add(i as u8)
                .wrapping_mul(2)
                .wrapping_add(1)
        })
        .collect()
}

/// Splits a payload store into per-block micro-writes, exactly as the rack
/// writer's update chunks do (each store touches one cache block).
fn block_chunks(start: Addr, data: &[u8]) -> Vec<(Addr, Vec<u8>)> {
    let mut out = Vec::new();
    let mut addr = start;
    let mut rest = data;
    while !rest.is_empty() {
        let room = BLOCK_BYTES - addr.block_offset();
        let take = room.min(rest.len());
        out.push((addr, rest[..take].to_vec()));
        addr = addr + take as u64;
        rest = &rest[take..];
    }
    out
}

/// A single-writer model issuing one micro-store per `step` call, cycling
/// through versions forever. `pending` holds the in-flight version's
/// remaining stores (publish last).
struct ModelWriter {
    base: Addr,
    payload_len: usize,
    published: u64,
    pending: VecDeque<(Addr, Vec<u8>)>,
    wf: bool,
}

impl ModelWriter {
    fn new(base: Addr, payload_len: usize, wf: bool) -> Self {
        ModelWriter {
            base,
            payload_len,
            published: 0,
            pending: VecDeque::new(),
            wf,
        }
    }

    /// Queues version `published + 1`'s stores in the writer's real order.
    fn queue_next_version(&mut self) {
        let next = self.published + 1;
        let payload = body(next, self.payload_len);
        if self.wf {
            // Wait-free register: payload into the *next* slot, then the
            // slot's seq stamp, then the single-store publish word.
            let slot = next % WfRegisterLayout::SLOTS;
            let sb = WfRegisterLayout::slot_addr(self.base, slot, self.payload_len);
            self.pending.extend(block_chunks(
                sb + WfRegisterLayout::SLOT_HEADER_BYTES as u64,
                &payload,
            ));
            self.pending.push_back((sb, next.to_le_bytes().to_vec()));
            self.pending.push_back((
                self.base,
                WfRegisterLayout::pack(next, slot).to_le_bytes().to_vec(),
            ));
        } else {
            // Clean layout under Oh-RAM: lock (odd version), payload at
            // +16, unlock-and-publish (next even version).
            let v = self.published * 2;
            self.pending
                .push_back((self.base, (v + 1).to_le_bytes().to_vec()));
            self.pending.extend(block_chunks(self.base + 16, &payload));
            self.pending
                .push_back((self.base, (v + 2).to_le_bytes().to_vec()));
        }
    }

    /// Performs one micro-store, feeding its invalidations to the capture.
    fn step(&mut self, mem: &mut NodeMemory, cap: &mut ObjectCapture) {
        if self.pending.is_empty() {
            self.queue_next_version();
        }
        let (addr, data) = self.pending.pop_front().expect("just queued");
        mem.write(addr, &data);
        for block in BlockRange::covering(addr, data.len() as u64).iter() {
            cap.on_invalidation(block);
        }
        if self.pending.is_empty() {
            self.published += 1;
        }
    }

    /// Finishes the in-flight version (quiesces the writer).
    fn finish_version(&mut self, mem: &mut NodeMemory, cap: &mut ObjectCapture) {
        while !self.pending.is_empty() {
            self.step(mem, cap);
        }
    }
}

/// The capture side: one outstanding [`ObjectCapture`], restarted after
/// every delivery, feeding one block read per `step` call.
struct ModelReader {
    kind: CaptureKind,
    base: Addr,
    wire: u32,
    cap: ObjectCapture,
    pending: VecDeque<BlockAddr>,
    delivered: Vec<Vec<u8>>,
}

impl ModelReader {
    fn new(kind: CaptureKind, base: Addr, wire: u32) -> Self {
        let (cap, step) = ObjectCapture::new(kind, base, wire);
        let CaptureStep::Read(blocks) = step else {
            panic!("a fresh capture must read");
        };
        ModelReader {
            kind,
            base,
            wire,
            cap,
            pending: blocks.into(),
            delivered: Vec::new(),
        }
    }

    /// Serves one block read; on delivery records the image and starts the
    /// next capture.
    fn step(&mut self, mem: &NodeMemory) {
        let block = self.pending.pop_front().expect("capture always has reads");
        match self.cap.on_block(block, mem.read_block(block)) {
            CaptureStep::Read(blocks) => self.pending.extend(blocks),
            CaptureStep::Deliver(blocks) => {
                self.delivered.push(blocks.concat());
                let (cap, step) = ObjectCapture::new(self.kind, self.base, self.wire);
                self.cap = cap;
                let CaptureStep::Read(blocks) = step else {
                    panic!("a fresh capture must read");
                };
                self.pending = blocks.into();
            }
        }
    }
}

proptest! {
    /// The wait-free register under arbitrary writer interleavings:
    /// every delivered image is a complete published version (slot stamp
    /// matches the publish word, payload byte-exact), observed versions
    /// never decrease, never run ahead of the writer, and — the protocol's
    /// headline — the client *never aborts*: once the writer quiesces, the
    /// in-flight capture terminates in a bounded number of steps.
    #[test]
    fn wf_register_reads_are_monotone_consistent_and_abort_free(
        schedule in proptest::collection::vec(any::<bool>(), 0..600),
        payload_len in 1usize..160,
    ) {
        let base = Addr::new(0);
        let mut mem = NodeMemory::new(1 << 16);
        let init = body(0, payload_len);
        WfRegisterLayout::init(&mut mem, base, &init);
        let wire = WfRegisterLayout::wire_bytes(payload_len) as u32;
        let mut writer = ModelWriter::new(base, payload_len, true);
        let mut reader = ModelReader::new(CaptureKind::WfRegister, base, wire);
        for writer_turn in schedule {
            if writer_turn {
                writer.step(&mut mem, &mut reader.cap);
            } else {
                reader.step(&mem);
            }
        }
        // Quiesce the writer, then the capture MUST deliver — wait-freedom
        // means no client-visible abort path exists. 3 restart rounds of
        // header + slot reads bound the drain generously.
        writer.finish_version(&mut mem, &mut reader.cap);
        let before = reader.delivered.len();
        for _ in 0..4 * (wire as usize / BLOCK_BYTES + 2) {
            if reader.delivered.len() > before {
                break;
            }
            reader.step(&mem);
        }
        prop_assert!(
            reader.delivered.len() > before,
            "capture failed to deliver against a quiescent writer"
        );
        let mut last_seq = 0u64;
        for image in &reader.delivered {
            let (seq, slot) = WfRegisterLayout::published_of(image);
            prop_assert_eq!(slot, seq % WfRegisterLayout::SLOTS);
            prop_assert_eq!(
                WfRegisterLayout::slot_seq_of(image), seq,
                "slot stamp disagrees with the publish word: torn capture"
            );
            prop_assert_eq!(
                WfRegisterLayout::payload_of(image, payload_len),
                &body(seq, payload_len)[..],
                "payload is not version {}'s bytes", seq
            );
            prop_assert!(seq >= last_seq, "version went backwards: {} < {}", seq, last_seq);
            prop_assert!(seq <= writer.published, "read a version never published");
            last_seq = seq;
        }
    }

    /// Oh-RAM's capture over the clean layout makes the same atomicity
    /// promise: delivered images carry an even (unlocked) version whose
    /// payload is byte-exact, versions never decrease, and the capture
    /// terminates once the writer quiesces.
    #[test]
    fn ohram_capture_is_monotone_consistent_and_terminates(
        schedule in proptest::collection::vec(any::<bool>(), 0..600),
        payload_len in 1usize..160,
    ) {
        let base = Addr::new(0);
        let mut mem = NodeMemory::new(1 << 16);
        mem.write(base + 16, &body(0, payload_len));
        let wire = ((16 + payload_len).div_ceil(BLOCK_BYTES) * BLOCK_BYTES) as u32;
        let mut writer = ModelWriter::new(base, payload_len, false);
        let mut reader = ModelReader::new(CaptureKind::OhRam, base, wire);
        for writer_turn in schedule {
            if writer_turn {
                writer.step(&mut mem, &mut reader.cap);
            } else {
                reader.step(&mem);
            }
        }
        writer.finish_version(&mut mem, &mut reader.cap);
        let before = reader.delivered.len();
        for _ in 0..4 * (wire as usize / BLOCK_BYTES + 2) {
            if reader.delivered.len() > before {
                break;
            }
            reader.step(&mem);
        }
        prop_assert!(
            reader.delivered.len() > before,
            "capture failed to deliver against a quiescent writer"
        );
        let mut last_version = 0u64;
        for image in &reader.delivered {
            let version = u64::from_le_bytes(image[..8].try_into().expect("8 bytes"));
            prop_assert_eq!(version % 2, 0, "delivered a locked (mid-update) image");
            let seq = version / 2;
            prop_assert_eq!(
                &image[16..16 + payload_len],
                &body(seq, payload_len)[..],
                "payload is not version {}'s bytes", seq
            );
            prop_assert!(version >= last_version, "version went backwards");
            prop_assert!(seq <= writer.published, "read a version never published");
            last_version = version;
        }
    }
}

/// Oh-RAM's fabric bound, measured on a real two-node scenario with the
/// shipped pipeline: the reader transmits *exactly two* packets per read —
/// the query and the relayed confirm — against the per-block request
/// stream a SABRe emits, and the whole exchange routes at most 3/4 the
/// hops of the two-round SABRe (1.5 rounds vs 2).
#[test]
fn ohram_read_is_one_and_a_half_rounds_on_the_fabric() {
    use sabre_farm::{ScenarioStoreExt, StoreLayout};
    use sabre_rack::{spec, ReadMechanism, ScenarioBuilder};
    use sabre_sim::Time;

    let run = |mech: ReadMechanism| {
        let (scenario, _store) =
            ScenarioBuilder::new().store(1, StoreLayout::Clean, 1024, Some(64));
        let wire = StoreLayout::Clean.object_bytes(1024) as u32;
        let report = scenario
            .reader_spec(
                0,
                0,
                spec().store(1).payload(1024).mechanism(mech).wire(wire),
            )
            .run_for(Time::from_us(100));
        let ops = report.core(0, 0).ops;
        assert!(ops > 0, "{mech:?}: no ops completed");
        let fabric = report.cluster().fabric();
        let reader_sent = fabric.node_packets_sent(0);
        let hops: u64 = (0..2).map(|n| fabric.node_hops_sent(n)).sum();
        (ops, reader_sent, hops)
    };

    let (oh_ops, oh_sent, oh_hops) = run(ReadMechanism::OhRam { payload: 1024 });
    let (sa_ops, sa_sent, sa_hops) = run(ReadMechanism::Sabre);

    // Client side of 1.5 rounds: one query + one confirm per completed
    // read (at most one further query already in flight at cutoff).
    assert!(
        oh_sent >= 2 * oh_ops && oh_sent <= 2 * oh_ops + 2,
        "Oh-RAM reader sent {oh_sent} packets over {oh_ops} ops — not 2/op"
    );
    // A SABRe's reader streams per-block requests: many packets per read.
    assert!(
        sa_sent * oh_ops > 4 * oh_sent * sa_ops,
        "SABRe reader sent {sa_sent}/{sa_ops} ops — expected >8x Oh-RAM's rate"
    );
    // Total fabric work: 1.5 rounds route at most 3/4 of 2 rounds' hops.
    let oh_rate = oh_hops as f64 / oh_ops as f64;
    let sa_rate = sa_hops as f64 / sa_ops as f64;
    assert!(
        oh_rate <= 0.75 * sa_rate,
        "Oh-RAM {oh_rate:.1} hops/op vs SABRe {sa_rate:.1}: above the 1.5/2-round bound"
    );
}
