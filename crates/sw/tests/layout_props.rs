//! Property tests of the software atomicity layouts: round trips preserve
//! payloads exactly, and *any* single-byte corruption of the protected
//! region is detected.

use proptest::prelude::*;

use sabre_sw::layout::{AtomicityViolation, PerClLayout};
use sabre_sw::{crc64_ecma, ChecksumLayout, VersionWord};

proptest! {
    #[test]
    fn percl_round_trip_preserves_payload(
        payload in proptest::collection::vec(any::<u8>(), 1..4096),
        version in (0u64..1_000_000).prop_map(|v| v * 2), // even
    ) {
        let image = PerClLayout::encode(VersionWord::new(version), &payload);
        prop_assert_eq!(image.len() % 64, 0);
        let out = PerClLayout::validate_and_strip(&image, payload.len()).unwrap();
        prop_assert_eq!(out, payload);
    }

    #[test]
    fn percl_detects_any_stamp_corruption(
        payload in proptest::collection::vec(any::<u8>(), 57..4096),
        version in (1u64..1_000_000).prop_map(|v| v * 2),
        line_sel in any::<u64>(),
    ) {
        let mut image = PerClLayout::encode(VersionWord::new(version), &payload);
        let lines = image.len() / 64;
        // Corrupt one stamp (any line, incl. the header): must be caught.
        let line = (line_sel % lines as u64) as usize;
        image[line * 64] ^= 0x01;
        prop_assert!(PerClLayout::validate_and_strip(&image, payload.len()).is_err());
    }

    #[test]
    fn percl_odd_header_always_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..1024),
        version in (0u64..1_000_000).prop_map(|v| v * 2 + 1), // odd
    ) {
        let image = PerClLayout::encode(VersionWord::new(version), &payload);
        prop_assert_eq!(
            PerClLayout::validate_and_strip(&image, payload.len()),
            Err(AtomicityViolation::WriterInProgress)
        );
    }

    #[test]
    fn checksum_round_trip_and_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..4096),
        flip_at in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let image = ChecksumLayout::encode(0, &payload);
        prop_assert_eq!(
            ChecksumLayout::validate(&image, payload.len()).unwrap(),
            &payload[..]
        );
        // Flip one payload bit: the CRC must catch it.
        let mut torn = image.clone();
        let pos = 16 + (flip_at % payload.len() as u64) as usize;
        torn[pos] ^= 1 << flip_bit;
        prop_assert!(ChecksumLayout::validate(&torn, payload.len()).is_err());
    }

    #[test]
    fn crc64_slice_by_8_matches_scalar_reference(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        // The slice-by-8 kernel is a pure optimization: byte-for-byte the
        // same function as the scalar loop, at every length and content.
        prop_assert_eq!(
            sabre_sw::crc64_ecma(&payload),
            sabre_sw::crc64_ecma_scalar(&payload)
        );
    }

    #[test]
    fn crc64_is_a_function_and_detects_swaps(
        a in proptest::collection::vec(any::<u8>(), 2..512),
    ) {
        prop_assert_eq!(crc64_ecma(&a), crc64_ecma(&a));
        // Swapping two different bytes changes the CRC.
        let mut b = a.clone();
        if b[0] != b[1] {
            b.swap(0, 1);
            prop_assert_ne!(crc64_ecma(&a), crc64_ecma(&b));
        }
    }

    #[test]
    fn odd_even_protocol_linearizes(
        rounds in 1u64..50,
    ) {
        let mut v = VersionWord::new(0);
        for _ in 0..rounds {
            v = v.locked();
            prop_assert!(v.is_locked());
            v = v.unlocked();
            prop_assert!(!v.is_locked());
        }
        prop_assert_eq!(v.raw(), rounds * 2);
    }
}
