//! Property tests of the memory substrate: the set-associative tag array
//! against a naive LRU model, and block-range geometry.

use std::collections::VecDeque;

use proptest::prelude::*;

use sabre_mem::tags::SetAssocTags;
use sabre_mem::{Addr, BlockRange};

/// Naive per-set LRU lists.
struct LruModel {
    sets: usize,
    ways: usize,
    lists: Vec<VecDeque<u64>>, // front = MRU
}

impl LruModel {
    fn new(sets: usize, ways: usize) -> Self {
        LruModel {
            sets,
            ways,
            lists: vec![VecDeque::new(); sets],
        }
    }

    fn insert(&mut self, tag: u64) -> Option<u64> {
        let set = (tag % self.sets as u64) as usize;
        let list = &mut self.lists[set];
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            list.push_front(tag);
            return None;
        }
        list.push_front(tag);
        if list.len() > self.ways {
            list.pop_back()
        } else {
            None
        }
    }

    fn contains(&self, tag: u64) -> bool {
        let set = (tag % self.sets as u64) as usize;
        self.lists[set].contains(&tag)
    }
}

proptest! {
    #[test]
    fn tags_match_naive_lru(
        sets in 1usize..8,
        ways in 1usize..6,
        tags in proptest::collection::vec(0u64..64, 1..200),
    ) {
        let mut real = SetAssocTags::new(sets, ways);
        let mut model = LruModel::new(sets, ways);
        for &t in &tags {
            let evicted_real = real.insert(t);
            let evicted_model = model.insert(t);
            prop_assert_eq!(evicted_real, evicted_model, "insert({})", t);
        }
        for t in 0..64u64 {
            prop_assert_eq!(real.contains(t), model.contains(t), "contains({})", t);
        }
    }

    #[test]
    fn block_range_covers_exactly(
        base in 0u64..1_000_000u64,
        len in 1u64..100_000,
    ) {
        let range = BlockRange::covering(Addr::new(base), len);
        // Every byte of [base, base+len) is in a covered block.
        let first_byte_block = Addr::new(base).block();
        let last_byte_block = Addr::new(base + len - 1).block();
        prop_assert!(range.contains(first_byte_block));
        prop_assert!(range.contains(last_byte_block));
        // And no block outside is covered.
        prop_assert!(!range.contains(first_byte_block.offset(range.block_count())));
        // Count is minimal: removing the last block would lose coverage.
        prop_assert_eq!(
            range.block_count(),
            last_byte_block.index() - first_byte_block.index() + 1
        );
    }

    #[test]
    fn block_range_iter_is_consecutive(
        base_block in 0u64..1_000_000u64,
        count in 1u64..300,
    ) {
        let range = BlockRange::from_blocks(sabre_mem::BlockAddr::from_index(base_block), count);
        let blocks: Vec<u64> = range.iter().map(|b| b.index()).collect();
        prop_assert_eq!(blocks.len() as u64, count);
        for (i, b) in blocks.iter().enumerate() {
            prop_assert_eq!(*b, base_block + i as u64);
        }
    }
}
