//! Coherence invalidation messages.
//!
//! LightSABRes relies on the protocol controller's integration into the
//! chip's coherence domain: any write to a block (a local core's store, or a
//! DMA write) invalidates other on-chip copies, and the invalidation is
//! visible to integrated agents. LLC evictions likewise produce
//! invalidations toward agents that might be tracking the block — these are
//! the *false alarms* of §4.2.
//!
//! The assembly crate fans each [`Invalidation`] out to every R2P2 on the
//! node; each R2P2 probes its stream buffers by subtractor indexing, which
//! is exactly the paper's snooping scheme (no associative search).

use crate::block::BlockAddr;

/// Why an invalidation was generated. LightSABRes cannot observe the cause
/// (both arrive as plain coherence invalidations — that ambiguity is the
/// point of the base-block re-validation mechanism), but tests and
/// statistics can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvalCause {
    /// A core's store acquired exclusive ownership of the block.
    WriterStore,
    /// The block was displaced from the LLC.
    LlcEviction,
    /// A DMA engine (e.g. an inbound one-sided write) modified the block.
    DmaWrite,
}

/// A coherence invalidation for one cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Invalidation {
    /// The block whose on-chip copies are invalidated.
    pub block: BlockAddr,
    /// Why (observable by tests/stats only — see [`InvalCause`]).
    pub cause: InvalCause,
}

impl Invalidation {
    /// Convenience constructor.
    pub fn new(block: BlockAddr, cause: InvalCause) -> Self {
        Invalidation { block, cause }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Invalidation::new(BlockAddr::from_index(3), InvalCause::WriterStore);
        let b = Invalidation {
            block: BlockAddr::from_index(3),
            cause: InvalCause::WriterStore,
        };
        assert_eq!(a, b);
        assert_ne!(
            a,
            Invalidation::new(BlockAddr::from_index(3), InvalCause::LlcEviction)
        );
    }
}
