//! Timing for block accesses: queued DRAM channels and LLC banks.
//!
//! Parameters follow Table 2 of the paper: 50 ns DRAM with 4 × 25.6 GBps
//! DDR4 channels, a 6-cycle 16-bank NUCA LLC, and on-chip traversal
//! overheads calibrated so that the *average end-to-end memory latency seen
//! by an integrated controller is ≈90 ns* (the figure §5.1 quotes when
//! sizing the stream buffers via Little's law).

use sabre_sim::{FifoServer, Time};

use crate::block::{BlockAddr, BLOCK_BYTES};

/// Which level services a block access. The assembly layer decides this by
/// probing the [`crate::llc::Llc`] presence model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Hit in the last-level cache.
    Llc,
    /// Miss: serviced by a DRAM channel.
    Dram,
}

/// Timing parameters for one node's memory system.
#[derive(Debug, Clone)]
pub struct MemTimingConfig {
    /// DRAM array access latency (Table 2: 50 ns).
    pub dram_latency: Time,
    /// On-chip traversal + directory overhead added to a DRAM access, so
    /// that unloaded end-to-end DRAM reads land at ≈90 ns.
    pub dram_overhead: Time,
    /// End-to-end LLC hit latency from an edge controller (6-cycle bank
    /// access plus mesh traversal).
    pub llc_latency: Time,
    /// Number of DDR channels (Table 2: 4).
    pub channels: usize,
    /// Per-channel bandwidth in GB/s (Table 2: 25.6).
    pub channel_gbps: f64,
    /// Number of LLC banks (Table 2: 16, one per tile).
    pub llc_banks: usize,
    /// Per-bank service bandwidth in GB/s.
    pub llc_bank_gbps: f64,
}

impl Default for MemTimingConfig {
    fn default() -> Self {
        MemTimingConfig {
            dram_latency: Time::from_ns(50),
            dram_overhead: Time::from_ns(40),
            llc_latency: Time::from_ns(12),
            channels: 4,
            channel_gbps: 25.6,
            llc_banks: 16,
            llc_bank_gbps: 32.0,
        }
    }
}

impl MemTimingConfig {
    /// Unloaded end-to-end latency of one access at `level`.
    pub fn unloaded_latency(&self, level: ServiceLevel) -> Time {
        match level {
            ServiceLevel::Llc => self.llc_latency,
            ServiceLevel::Dram => self.dram_latency + self.dram_overhead,
        }
    }
}

/// One node's memory timing: a bank of queued servers per level.
///
/// # Example
///
/// ```
/// use sabre_mem::{BlockAddr, MemSystem, MemTimingConfig, ServiceLevel};
/// use sabre_sim::Time;
///
/// let mut ms = MemSystem::new(MemTimingConfig::default());
/// let done = ms.access(Time::ZERO, BlockAddr::from_index(0), ServiceLevel::Dram);
/// assert_eq!(done, Time::from_ns_f64(92.5)); // 2.5 ns occupancy + 90 ns latency
/// ```
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemTimingConfig,
    channels: Vec<FifoServer>,
    banks: Vec<FifoServer>,
    dram_accesses: u64,
    llc_accesses: u64,
}

impl MemSystem {
    /// Creates a memory system from its timing configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks.
    pub fn new(cfg: MemTimingConfig) -> Self {
        assert!(cfg.channels > 0, "need at least one DRAM channel");
        assert!(cfg.llc_banks > 0, "need at least one LLC bank");
        MemSystem {
            channels: vec![FifoServer::new(); cfg.channels],
            banks: vec![FifoServer::new(); cfg.llc_banks],
            cfg,
            dram_accesses: 0,
            llc_accesses: 0,
        }
    }

    /// The timing configuration.
    pub fn config(&self) -> &MemTimingConfig {
        &self.cfg
    }

    /// Services one block access arriving at `now`; returns its completion
    /// time (queueing + occupancy + latency). Blocks interleave across
    /// channels/banks by address, as in the modeled chip.
    pub fn access(&mut self, now: Time, block: BlockAddr, level: ServiceLevel) -> Time {
        match level {
            ServiceLevel::Dram => {
                self.dram_accesses += 1;
                let ch = (block.index() % self.channels.len() as u64) as usize;
                let occupancy =
                    sabre_sim::time::transfer_time(BLOCK_BYTES as u64, self.cfg.channel_gbps);
                let start = self.channels[ch].admit(now, occupancy);
                start + occupancy + self.cfg.dram_latency + self.cfg.dram_overhead
            }
            ServiceLevel::Llc => {
                self.llc_accesses += 1;
                let bank = (block.index() % self.banks.len() as u64) as usize;
                let occupancy =
                    sabre_sim::time::transfer_time(BLOCK_BYTES as u64, self.cfg.llc_bank_gbps);
                let start = self.banks[bank].admit(now, occupancy);
                start + occupancy + self.cfg.llc_latency
            }
        }
    }

    /// (DRAM accesses, LLC accesses) serviced so far.
    pub fn access_counts(&self) -> (u64, u64) {
        (self.dram_accesses, self.llc_accesses)
    }

    /// Aggregate DRAM utilization over `[0, horizon]` (mean across
    /// channels).
    pub fn dram_utilization(&self, horizon: Time) -> f64 {
        let sum: f64 = self.channels.iter().map(|c| c.utilization(horizon)).sum();
        sum / self.channels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latencies_match_table2() {
        let cfg = MemTimingConfig::default();
        assert_eq!(cfg.unloaded_latency(ServiceLevel::Dram), Time::from_ns(90));
        assert_eq!(cfg.unloaded_latency(ServiceLevel::Llc), Time::from_ns(12));
    }

    #[test]
    fn dram_queueing_appears_under_load() {
        let mut ms = MemSystem::new(MemTimingConfig::default());
        // 8 accesses to the SAME channel (stride = #channels).
        let stride = ms.config().channels as u64;
        let mut last = Time::ZERO;
        for i in 0..8 {
            last = ms.access(
                Time::ZERO,
                BlockAddr::from_index(i * stride),
                ServiceLevel::Dram,
            );
        }
        // The 8th starts after 7 × 2.5 ns of queueing.
        assert_eq!(last, Time::from_ns_f64(7.0 * 2.5 + 2.5 + 90.0));
    }

    #[test]
    fn channel_interleaving_gives_mlp() {
        let mut ms = MemSystem::new(MemTimingConfig::default());
        // 4 accesses to 4 different channels: no queueing at all.
        let done: Vec<Time> = (0..4)
            .map(|i| ms.access(Time::ZERO, BlockAddr::from_index(i), ServiceLevel::Dram))
            .collect();
        for d in done {
            assert_eq!(d, Time::from_ns_f64(92.5));
        }
    }

    #[test]
    fn aggregate_dram_bandwidth_is_respected() {
        // Stream 1 MB through DRAM; drain time ≈ 1 MB / 102.4 GBps ≈ 9.77 us.
        let mut ms = MemSystem::new(MemTimingConfig::default());
        let blocks = 1_048_576 / BLOCK_BYTES as u64;
        let mut last = Time::ZERO;
        for i in 0..blocks {
            last = last.max(ms.access(Time::ZERO, BlockAddr::from_index(i), ServiceLevel::Dram));
        }
        let expected_us = 1_048_576.0 / (4.0 * 25.6) / 1000.0;
        assert!(
            (last.as_us() - expected_us).abs() < 0.2,
            "drained in {last}, expected ≈{expected_us} us"
        );
    }

    #[test]
    fn llc_faster_than_dram() {
        let mut ms = MemSystem::new(MemTimingConfig::default());
        let l = ms.access(Time::ZERO, BlockAddr::from_index(0), ServiceLevel::Llc);
        let d = ms.access(Time::ZERO, BlockAddr::from_index(1), ServiceLevel::Dram);
        assert!(l < d);
        assert_eq!(ms.access_counts(), (1, 1));
    }
}
