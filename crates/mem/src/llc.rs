//! The last-level cache presence model.
//!
//! Table 2: shared block-interleaved NUCA LLC, 2 MB total, 16-way, 64 B
//! blocks. Only presence is modeled (data lives in `NodeMemory`); what the
//! rest of the system needs from the LLC is:
//!
//! * **latency class** for each access (LLC hit vs DRAM),
//! * **evictions**, because an eviction of a block tracked by a stream
//!   buffer raises an invalidation that LightSABRes must classify as a
//!   false alarm (§4.2) rather than a conflict.

use crate::block::BlockAddr;
use crate::tags::SetAssocTags;

/// Result of one LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcOutcome {
    /// Whether the block was present.
    pub hit: bool,
    /// A block displaced by the fill (misses only).
    pub evicted: Option<BlockAddr>,
}

/// The per-node LLC model.
///
/// # Example
///
/// ```
/// use sabre_mem::{BlockAddr, Llc};
///
/// let mut llc = Llc::with_geometry(2 * 1024 * 1024, 16);
/// let b = BlockAddr::from_index(42);
/// assert!(!llc.access(b).hit);  // cold miss, fills
/// assert!(llc.access(b).hit);   // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Llc {
    tags: SetAssocTags,
}

impl Llc {
    /// Creates an LLC with `capacity_bytes` capacity and `ways`
    /// associativity over 64 B blocks.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn with_geometry(capacity_bytes: usize, ways: usize) -> Self {
        Llc {
            tags: SetAssocTags::with_geometry(capacity_bytes, crate::block::BLOCK_BYTES, ways),
        }
    }

    /// Accesses `block`, filling on miss. Returns hit/miss and any eviction.
    pub fn access(&mut self, block: BlockAddr) -> LlcOutcome {
        if self.tags.touch(block.index()) {
            return LlcOutcome {
                hit: true,
                evicted: None,
            };
        }
        let evicted = self.tags.insert(block.index()).map(BlockAddr::from_index);
        LlcOutcome {
            hit: false,
            evicted,
        }
    }

    /// Probes for presence without updating replacement state.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.tags.contains(block.index())
    }

    /// Drops `block` from the cache (e.g. modeled back-invalidation);
    /// returns whether it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        self.tags.invalidate(block.index())
    }

    /// (hits, misses, evictions) since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.tags.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_hits() {
        let mut llc = Llc::with_geometry(64 * 16, 16); // single set of 16
        let b = BlockAddr::from_index(7);
        let first = llc.access(b);
        assert!(!first.hit);
        assert_eq!(first.evicted, None);
        assert!(llc.access(b).hit);
        assert!(llc.contains(b));
    }

    #[test]
    fn evicts_when_set_overflows() {
        let mut llc = Llc::with_geometry(64 * 2, 2); // one set, two ways
        llc.access(BlockAddr::from_index(1));
        llc.access(BlockAddr::from_index(2));
        let out = llc.access(BlockAddr::from_index(3));
        assert!(!out.hit);
        assert_eq!(out.evicted, Some(BlockAddr::from_index(1)));
    }

    #[test]
    fn working_set_smaller_than_capacity_stays_resident() {
        // Fig. 8 setup: 100 objects × 8 KB = 800 KB < 2 MB stays resident.
        let mut llc = Llc::with_geometry(2 * 1024 * 1024, 16);
        let blocks_per_obj = 8192 / 64;
        for pass in 0..3 {
            for obj in 0..100u64 {
                for i in 0..blocks_per_obj {
                    let b = BlockAddr::from_index(obj * blocks_per_obj + i);
                    let out = llc.access(b);
                    if pass > 0 {
                        assert!(out.hit, "pass {pass} obj {obj} block {i} missed");
                    }
                }
            }
        }
    }

    #[test]
    fn invalidate_removes() {
        let mut llc = Llc::with_geometry(64 * 4, 4);
        let b = BlockAddr::from_index(9);
        llc.access(b);
        assert!(llc.invalidate(b));
        assert!(!llc.contains(b));
        assert!(!llc.invalidate(b));
    }
}
