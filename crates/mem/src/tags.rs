//! A generic LRU set-associative tag array.
//!
//! Used for the LLC presence model (and reusable for any other
//! set-associative structure). Only tags are stored — data lives in
//! [`crate::memory::NodeMemory`] — because the simulation needs *presence*
//! (hit/miss/eviction), not duplicated contents.

/// An LRU set-associative tag array over `u64` tags.
///
/// # Example
///
/// ```
/// use sabre_mem::tags::SetAssocTags;
///
/// let mut t = SetAssocTags::new(2, 2); // 2 sets, 2 ways
/// assert_eq!(t.insert(0), None);       // miss, no eviction
/// assert_eq!(t.insert(2), None);       // same set (2 % 2 == 0), second way
/// assert!(t.contains(0));
/// assert_eq!(t.insert(4), Some(0));    // set full: LRU tag 0 evicted
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocTags {
    sets: usize,
    ways: usize,
    /// `entries[set * ways + way]`: tag, or `None` when invalid.
    entries: Vec<Option<u64>>,
    /// Monotone per-entry access stamps for LRU.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SetAssocTags {
    /// Creates an empty array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "sets and ways must be positive");
        SetAssocTags {
            sets,
            ways,
            entries: vec![None; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Creates an array sized for `capacity_bytes` of `line_bytes` lines at
    /// the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn with_geometry(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(ways) && lines > 0,
            "capacity {capacity_bytes} not divisible into {ways}-way sets of {line_bytes}B lines"
        );
        SetAssocTags::new(lines / ways, ways)
    }

    fn set_of(&self, tag: u64) -> usize {
        (tag % self.sets as u64) as usize
    }

    fn range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Whether `tag` is currently present (does not update LRU state).
    pub fn contains(&self, tag: u64) -> bool {
        let set = self.set_of(tag);
        self.entries[self.range(set)].contains(&Some(tag))
    }

    /// Touches `tag`: returns `true` on hit (refreshing LRU), `false` on
    /// miss (without inserting).
    pub fn touch(&mut self, tag: u64) -> bool {
        let set = self.set_of(tag);
        self.tick += 1;
        let range = self.range(set);
        for i in range {
            if self.entries[i] == Some(tag) {
                self.stamps[i] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Ensures `tag` is present. Returns the evicted tag, if insertion
    /// displaced one; `None` on hit or on filling an invalid way.
    pub fn insert(&mut self, tag: u64) -> Option<u64> {
        if self.touch(tag) {
            return None;
        }
        let set = self.set_of(tag);
        let range = self.range(set);
        // Prefer an invalid way.
        if let Some(i) = range.clone().find(|&i| self.entries[i].is_none()) {
            self.entries[i] = Some(tag);
            self.stamps[i] = self.tick;
            return None;
        }
        // Evict LRU.
        let victim = range.min_by_key(|&i| self.stamps[i]).expect("ways > 0");
        let evicted = self.entries[victim];
        self.entries[victim] = Some(tag);
        self.stamps[victim] = self.tick;
        self.evictions += 1;
        evicted
    }

    /// Removes `tag` if present; returns whether it was present.
    pub fn invalidate(&mut self, tag: u64) -> bool {
        let set = self.set_of(tag);
        for i in self.range(set) {
            if self.entries[i] == Some(tag) {
                self.entries[i] = None;
                return true;
            }
        }
        false
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// (hits, misses, evictions) since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_basic() {
        let mut t = SetAssocTags::new(4, 2);
        assert!(!t.touch(5));
        assert_eq!(t.insert(5), None);
        assert!(t.touch(5));
        assert!(t.contains(5));
        let (h, m, _) = t.stats();
        // Two misses (explicit touch + the probe inside insert), one hit.
        assert_eq!((h, m), (1, 2));
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = SetAssocTags::new(1, 3);
        t.insert(10);
        t.insert(20);
        t.insert(30);
        // Refresh 10 so 20 becomes LRU.
        assert!(t.touch(10));
        assert_eq!(t.insert(40), Some(20));
        assert!(t.contains(10));
        assert!(!t.contains(20));
    }

    #[test]
    fn invalidate_frees_way() {
        let mut t = SetAssocTags::new(1, 2);
        t.insert(1);
        t.insert(2);
        assert!(t.invalidate(1));
        assert!(!t.invalidate(1));
        // Now an insert fills the invalid way without eviction.
        assert_eq!(t.insert(3), None);
    }

    #[test]
    fn geometry_constructor() {
        // 2 MB, 64 B lines, 16-way: 2048 sets (Table 2 LLC).
        let t = SetAssocTags::with_geometry(2 * 1024 * 1024, 64, 16);
        assert_eq!(t.sets(), 2048);
        assert_eq!(t.ways(), 16);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut t = SetAssocTags::new(2, 1);
        t.insert(0); // set 0
        t.insert(1); // set 1
        assert!(t.contains(0));
        assert!(t.contains(1));
        // Inserting 2 (set 0) evicts 0, not 1.
        assert_eq!(t.insert(2), Some(0));
        assert!(t.contains(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_geometry_rejected() {
        let _ = SetAssocTags::new(0, 1);
    }
}
