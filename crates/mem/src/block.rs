//! Addresses, cache blocks and (super)pages.
//!
//! soNUMA (and RDMA practice generally) registers memory regions backed by
//! superpages, which is why the paper treats page-boundary crossings inside a
//! SABRe's window of vulnerability as rare. We model 2 MB superpages.

use std::fmt;
use std::ops::{Add, Sub};

/// Size of a cache block in bytes (Table 2: 64-byte blocks everywhere).
pub const BLOCK_BYTES: usize = 64;

/// Size of a superpage in bytes (2 MB, the common RDMA/soNUMA registration
/// granularity the paper assumes in §4.1).
pub const PAGE_BYTES: usize = 2 * 1024 * 1024;

/// A byte address inside one node's physical memory.
///
/// # Example
///
/// ```
/// use sabre_mem::{Addr, BLOCK_BYTES};
///
/// let a = Addr::new(130);
/// assert_eq!(a.block().index(), 2);
/// assert_eq!(a.block_offset(), 2);
/// assert_eq!(a.align_down_to_block(), Addr::new(128));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    pub const fn new(a: u64) -> Self {
        Addr(a)
    }

    /// Raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache block containing this address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_BYTES as u64)
    }

    /// Offset of this address within its cache block.
    pub const fn block_offset(self) -> usize {
        (self.0 % BLOCK_BYTES as u64) as usize
    }

    /// Rounds down to the containing block's first byte.
    pub const fn align_down_to_block(self) -> Addr {
        Addr(self.0 - self.0 % BLOCK_BYTES as u64)
    }

    /// Whether this address is block-aligned.
    pub const fn is_block_aligned(self) -> bool {
        self.0.is_multiple_of(BLOCK_BYTES as u64)
    }

    /// The superpage index containing this address.
    pub const fn page(self) -> u64 {
        self.0 / PAGE_BYTES as u64
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-block index (byte address divided by [`BLOCK_BYTES`]).
///
/// Stream buffers, the directory and the snoop network all operate on block
/// addresses; `BlockAddr` keeps them from being confused with byte
/// addresses at compile time.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block index.
    pub const fn from_index(i: u64) -> Self {
        BlockAddr(i)
    }

    /// The block index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Byte address of the block's first byte.
    pub const fn first_byte(self) -> Addr {
        Addr(self.0 * BLOCK_BYTES as u64)
    }

    /// The block `n` blocks after this one.
    pub const fn offset(self, n: u64) -> BlockAddr {
        BlockAddr(self.0 + n)
    }

    /// Distance in blocks from `base` to `self`, or `None` if `self` is
    /// before `base`. This is the "subtractor" operation each stream buffer
    /// performs on every snooped message (§4.2).
    pub fn distance_from(self, base: BlockAddr) -> Option<u64> {
        self.0.checked_sub(base.0)
    }

    /// The superpage index containing this block.
    pub const fn page(self) -> u64 {
        self.0 * BLOCK_BYTES as u64 / PAGE_BYTES as u64
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// The half-open range of blocks covering `len` bytes starting at `base`.
///
/// # Example
///
/// ```
/// use sabre_mem::{Addr, BlockRange};
///
/// // A 130-byte object starting at byte 0 spans 3 blocks.
/// let r = BlockRange::covering(Addr::new(0), 130);
/// assert_eq!(r.block_count(), 3);
/// let blocks: Vec<u64> = r.iter().map(|b| b.index()).collect();
/// assert_eq!(blocks, vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRange {
    first: BlockAddr,
    count: u64,
}

impl BlockRange {
    /// The minimal block range covering `len` bytes starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn covering(base: Addr, len: u64) -> Self {
        assert!(len > 0, "empty range");
        let first = base.block();
        let last = (base + (len - 1)).block();
        BlockRange {
            first,
            count: last.index() - first.index() + 1,
        }
    }

    /// A range of exactly `count` blocks starting at `first`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn from_blocks(first: BlockAddr, count: u64) -> Self {
        assert!(count > 0, "empty range");
        BlockRange { first, count }
    }

    /// First block of the range.
    pub fn first(self) -> BlockAddr {
        self.first
    }

    /// Number of blocks in the range.
    pub fn block_count(self) -> u64 {
        self.count
    }

    /// Whether `block` falls inside the range.
    pub fn contains(self, block: BlockAddr) -> bool {
        block
            .distance_from(self.first)
            .is_some_and(|d| d < self.count)
    }

    /// Whether the range crosses a superpage boundary. Inside the window of
    /// vulnerability a SABRe must stall at such a crossing (§4.1) because
    /// the next physical page may not be contiguous.
    pub fn crosses_page(self) -> bool {
        self.first.page() != self.first.offset(self.count - 1).page()
    }

    /// Iterates over the blocks of the range in address order.
    pub fn iter(self) -> impl Iterator<Item = BlockAddr> {
        (0..self.count).map(move |i| self.first.offset(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_mapping() {
        assert_eq!(Addr::new(0).block(), BlockAddr::from_index(0));
        assert_eq!(Addr::new(63).block(), BlockAddr::from_index(0));
        assert_eq!(Addr::new(64).block(), BlockAddr::from_index(1));
        assert_eq!(Addr::new(64).block_offset(), 0);
        assert_eq!(Addr::new(65).block_offset(), 1);
        assert!(Addr::new(128).is_block_aligned());
        assert!(!Addr::new(129).is_block_aligned());
    }

    #[test]
    fn block_round_trips() {
        let b = BlockAddr::from_index(17);
        assert_eq!(b.first_byte(), Addr::new(17 * 64));
        assert_eq!(b.first_byte().block(), b);
    }

    #[test]
    fn subtractor_distance() {
        let base = BlockAddr::from_index(100);
        assert_eq!(BlockAddr::from_index(105).distance_from(base), Some(5));
        assert_eq!(BlockAddr::from_index(100).distance_from(base), Some(0));
        assert_eq!(BlockAddr::from_index(99).distance_from(base), None);
    }

    #[test]
    fn covering_ranges() {
        // Exactly one block.
        let r = BlockRange::covering(Addr::new(64), 64);
        assert_eq!(r.block_count(), 1);
        assert!(r.contains(BlockAddr::from_index(1)));
        assert!(!r.contains(BlockAddr::from_index(2)));
        // Unaligned start pulls in an extra block.
        let r = BlockRange::covering(Addr::new(60), 8);
        assert_eq!(r.block_count(), 2);
        // 8 KB object: 128 blocks.
        let r = BlockRange::covering(Addr::new(0), 8192);
        assert_eq!(r.block_count(), 128);
    }

    #[test]
    fn page_crossing_detection() {
        let page = PAGE_BYTES as u64;
        let r = BlockRange::covering(Addr::new(page - 64), 128);
        assert!(r.crosses_page());
        let r = BlockRange::covering(Addr::new(page - 128), 128);
        assert!(!r.crosses_page());
        let r = BlockRange::covering(Addr::new(0), 8192);
        assert!(!r.crosses_page());
    }

    #[test]
    fn range_iteration() {
        let r = BlockRange::from_blocks(BlockAddr::from_index(5), 3);
        let v: Vec<u64> = r.iter().map(|b| b.index()).collect();
        assert_eq!(v, vec![5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let _ = BlockRange::covering(Addr::new(0), 0);
    }
}
