//! Memory substrate for the SABRes reproduction.
//!
//! This crate models the per-node memory system of a soNUMA chip at the
//! granularity the paper's mechanism cares about — the **cache block**:
//!
//! * [`block`] — address types, the 64-byte block, block ranges, superpages.
//! * [`memory`] — [`NodeMemory`]: the functional byte store. Reads and
//!   writes happen at the simulated instant the memory system services them,
//!   so data races between a writer and a concurrent remote read produce
//!   *real* torn bytes that the atomicity mechanisms must catch.
//! * [`tags`] — a generic LRU set-associative tag array.
//! * [`llc`] — the 2 MB NUCA last-level cache model (presence + evictions;
//!   evictions matter because they generate the "false alarm" invalidations
//!   LightSABRes must not abort on).
//! * [`timing`] — queued DRAM channels and LLC banks producing completion
//!   times for block accesses (Table 2 parameters).
//! * [`snoop`] — invalidation messages fanned out to integrated protocol
//!   controllers, the hook LightSABRes' address-range snooping builds on.

pub mod block;
pub mod llc;
pub mod memory;
pub mod snoop;
pub mod tags;
pub mod timing;

pub use block::{Addr, BlockAddr, BlockRange, BLOCK_BYTES, PAGE_BYTES};
pub use llc::{Llc, LlcOutcome};
pub use memory::NodeMemory;
pub use snoop::{InvalCause, Invalidation};
pub use timing::{MemSystem, MemTimingConfig, ServiceLevel};
