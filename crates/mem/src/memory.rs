//! The functional byte store backing one node.
//!
//! `NodeMemory` is deliberately *functional only*: it answers "what bytes
//! are at this address" and tracks a per-block write epoch. All timing (who
//! gets serviced when) lives in [`crate::timing`]; all visibility (who gets
//! told about a write) lives in the snoop fan-out wired up by the assembly
//! crate. Because readers and writers touch `NodeMemory` at the simulated
//! instants their block accesses are serviced, interleavings produce real
//! torn data — which is exactly what the paper's atomicity mechanisms exist
//! to detect.

use crate::block::{Addr, BlockAddr, BLOCK_BYTES};

/// Byte-accurate memory of one node, with per-block write epochs.
///
/// # Example
///
/// ```
/// use sabre_mem::{Addr, NodeMemory};
///
/// let mut mem = NodeMemory::new(4096);
/// mem.write(Addr::new(100), &[1, 2, 3]);
/// assert_eq!(mem.read_vec(Addr::new(100), 3), vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct NodeMemory {
    bytes: Vec<u8>,
    /// Incremented on every write touching the block; lets tests and
    /// assertions detect concurrent modification cheaply.
    epochs: Vec<u32>,
}

impl NodeMemory {
    /// Allocates `size` bytes of zeroed memory, rounded up to a whole number
    /// of cache blocks.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "memory size must be positive");
        let size = size.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        NodeMemory {
            bytes: vec![0; size],
            epochs: vec![0; size / BLOCK_BYTES],
        }
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn read_vec(&self, addr: Addr, len: usize) -> Vec<u8> {
        self.slice(addr, len).to_vec()
    }

    /// Borrows `len` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn slice(&self, addr: Addr, len: usize) -> &[u8] {
        let start = addr.raw() as usize;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .unwrap_or_else(|| panic!("read past end of memory: {addr}+{len}"));
        &self.bytes[start..end]
    }

    /// Writes `data` starting at `addr`, bumping the epoch of every block
    /// touched.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let start = addr.raw() as usize;
        let end = start
            .checked_add(data.len())
            .filter(|&e| e <= self.bytes.len())
            .unwrap_or_else(|| panic!("write past end of memory: {addr}+{}", data.len()));
        self.bytes[start..end].copy_from_slice(data);
        let first = addr.block().index();
        let last = (addr + (data.len() as u64 - 1)).block().index();
        for b in first..=last {
            self.epochs[b as usize] += 1;
        }
    }

    /// Reads one whole cache block.
    ///
    /// # Panics
    ///
    /// Panics if the block is out of range.
    pub fn read_block(&self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        let mut out = [0u8; BLOCK_BYTES];
        out.copy_from_slice(self.slice(block.first_byte(), BLOCK_BYTES));
        out
    }

    /// Writes one whole cache block.
    ///
    /// # Panics
    ///
    /// Panics if the block is out of range.
    pub fn write_block(&mut self, block: BlockAddr, data: &[u8; BLOCK_BYTES]) {
        self.write(block.first_byte(), data);
    }

    /// Reads a 64-bit little-endian word at `addr` (used for object version
    /// headers).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.slice(addr, 8));
        u64::from_le_bytes(buf)
    }

    /// Writes a 64-bit little-endian word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Write epoch of a block (number of writes that have touched it).
    ///
    /// # Panics
    ///
    /// Panics if the block is out of range.
    pub fn epoch(&self, block: BlockAddr) -> u32 {
        self.epochs[block.index() as usize]
    }

    /// Number of blocks in this memory.
    pub fn block_count(&self) -> u64 {
        (self.bytes.len() / BLOCK_BYTES) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_to_blocks() {
        let m = NodeMemory::new(100);
        assert_eq!(m.size(), 128);
        assert_eq!(m.block_count(), 2);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = NodeMemory::new(1024);
        let data: Vec<u8> = (0..=255).collect();
        m.write(Addr::new(100), &data);
        assert_eq!(m.read_vec(Addr::new(100), 256), data);
        // Unwritten memory is zero.
        assert_eq!(m.read_vec(Addr::new(0), 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn block_round_trip() {
        let mut m = NodeMemory::new(1024);
        let mut blk = [0u8; BLOCK_BYTES];
        blk[0] = 0xAB;
        blk[63] = 0xCD;
        m.write_block(BlockAddr::from_index(3), &blk);
        assert_eq!(m.read_block(BlockAddr::from_index(3)), blk);
    }

    #[test]
    fn epochs_track_touched_blocks() {
        let mut m = NodeMemory::new(1024);
        assert_eq!(m.epoch(BlockAddr::from_index(0)), 0);
        // A 100-byte write starting at 60 touches blocks 0..=2.
        m.write(Addr::new(60), &[7u8; 100]);
        assert_eq!(m.epoch(BlockAddr::from_index(0)), 1);
        assert_eq!(m.epoch(BlockAddr::from_index(1)), 1);
        assert_eq!(m.epoch(BlockAddr::from_index(2)), 1);
        assert_eq!(m.epoch(BlockAddr::from_index(3)), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = NodeMemory::new(256);
        m.write_u64(Addr::new(8), 0xDEAD_BEEF_0123_4567);
        assert_eq!(m.read_u64(Addr::new(8)), 0xDEAD_BEEF_0123_4567);
    }

    #[test]
    fn empty_write_is_noop() {
        let mut m = NodeMemory::new(256);
        m.write(Addr::new(0), &[]);
        assert_eq!(m.epoch(BlockAddr::from_index(0)), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn oob_read_panics() {
        let m = NodeMemory::new(128);
        let _ = m.read_vec(Addr::new(120), 16);
    }

    #[test]
    #[should_panic(expected = "write past end")]
    fn oob_write_panics() {
        let mut m = NodeMemory::new(128);
        m.write(Addr::new(127), &[0, 0]);
    }
}
