//! The lossless inter-node rack fabric.
//!
//! Table 2: fixed 35 ns latency per hop, 100 GBps links. The paper's
//! evaluated topology is two directly connected nodes, i.e. one hop in
//! each direction; the N-node generalization routes over a
//! [`RackTopology`] (crossbar or 2D mesh), paying one hop latency per
//! mesh hop. Each direction of each node pair is an independent queued
//! bandwidth server, so request and reply streams do not contend with each
//! other but *do* contend with same-direction traffic — this is what caps
//! aggregate application throughput near 80–100 GBps in Figs. 7b and 8.
//!
//! [`ShardRouter`] is the deterministic cross-shard mailbox a partitioned
//! event loop exchanges fabric traffic through: per-source outboxes,
//! drained at synchronization barriers in a total order that depends only
//! on `(arrival time, source, per-source sequence)` — never on how nodes
//! are grouped into shards — so sharded simulation stays bit-identical to
//! single-shard simulation.

use sabre_sim::{BandwidthServer, HopStats, Time};

use crate::mesh::RackTopology;

/// Fabric parameters.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of nodes connected by the fabric.
    pub nodes: usize,
    /// Per-hop propagation latency (Table 2: 35 ns).
    pub hop_latency: Time,
    /// Link bandwidth in GB/s (Table 2: 100).
    pub link_gbps: f64,
    /// Per-packet wire overhead in bytes (header + CRC), added to every
    /// packet's serialization cost.
    pub header_bytes: u64,
    /// How the nodes are wired ([`RackTopology::Direct`] reproduces the
    /// paper's directly-connected pair).
    pub topology: RackTopology,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes: 2,
            hop_latency: Time::from_ns(35),
            link_gbps: 100.0,
            header_bytes: 16,
            topology: RackTopology::Direct,
        }
    }
}

impl FabricConfig {
    /// The default fabric resized to `nodes` nodes: the paper pair stays
    /// directly connected, larger racks route over a near-square 2D mesh.
    pub fn for_nodes(nodes: usize) -> Self {
        FabricConfig {
            nodes,
            topology: if nodes <= 2 {
                RackTopology::Direct
            } else {
                RackTopology::mesh_for(nodes)
            },
            ..FabricConfig::default()
        }
    }

    /// The smallest possible send-to-arrival delay of any internode packet
    /// — the conservative lookahead window a sharded event loop may
    /// advance a node without observing its peers.
    pub fn min_latency(&self) -> Time {
        self.hop_latency * self.topology.min_hops()
    }
}

/// One source node's outgoing side of the fabric: the directed link
/// servers (and packet counters) for every destination.
///
/// Ports are the unit a partitioned event loop hands to its shards: every
/// packet is *sent* through its source node's port, so a shard that owns a
/// contiguous range of nodes can own exactly those nodes' ports and never
/// touch another shard's link state. [`Fabric::split`] lends out the port
/// array alongside the shared (read-only) configuration.
#[derive(Debug)]
pub struct FabricPort {
    src: usize,
    /// Per-destination link state, keyed by destination and sorted for
    /// binary search. Allocated lazily on first send: most node pairs in a
    /// datacenter-scale fabric never talk (readers bind to a handful of
    /// stores), so the dense `Vec<BandwidthServer>` per port of the rack
    /// tier — O(nodes²) memory across the fabric — would waste hundreds of
    /// megabytes at 1024 nodes. A fresh server is idle at `Time::ZERO`, so
    /// lazy creation is arrival-for-arrival identical to preallocation.
    links: Vec<(u32, LinkState)>,
    /// Packets pushed onto any link so far.
    packets_sent: u64,
    /// Hops traversed by every packet sent from this port so far,
    /// including fat-tree uplink queueing penalties — the numerator of the
    /// per-node mean hop count the placement experiments report.
    hops_sent: u64,
    /// Hop-latency window index the uplink counter below covers.
    uplink_window: u64,
    /// Cross-leaf packets this port pushed within the current window.
    uplink_in_window: u64,
    /// Cross-leaf packets that exceeded the uplink's per-window budget and
    /// paid queueing hops.
    uplink_queued: u64,
    /// Arrival time of the last packet through the uplink bundle: the
    /// bundle is a FIFO queue, so a later packet (whose window counter may
    /// have reset) never overtakes an earlier queued one.
    uplink_tail: Time,
    /// Spine-latency window index the spine counter below covers.
    spine_window: u64,
    /// Cross-rack packets this port pushed within the current spine window.
    spine_in_window: u64,
    /// Cross-rack packets that exceeded the spine's per-window budget and
    /// paid a full `spine_latency` of queueing per queued predecessor.
    spine_queued: u64,
    /// Arrival time of the last packet through the rack's spine bundle
    /// (FIFO, like the leaf uplink).
    spine_tail: Time,
    /// Cross-rack packets sent from this port so far — the numerator of
    /// the cross-spine hop share `fig_datacenter` reports.
    spine_crossings: u64,
}

/// One lazily-created directed link: its queued bandwidth server plus the
/// packets pushed through it (conservation accounting: every send is
/// delivered exactly once).
#[derive(Debug)]
struct LinkState {
    server: BandwidthServer,
    sent: u64,
}

impl FabricPort {
    /// An idle port for `src` with no per-destination state yet.
    fn new(src: usize) -> Self {
        FabricPort {
            src,
            links: Vec::new(),
            packets_sent: 0,
            hops_sent: 0,
            uplink_window: 0,
            uplink_in_window: 0,
            uplink_queued: 0,
            uplink_tail: Time::ZERO,
            spine_window: 0,
            spine_in_window: 0,
            spine_queued: 0,
            spine_tail: Time::ZERO,
            spine_crossings: 0,
        }
    }

    /// The source node this port belongs to.
    pub fn src(&self) -> usize {
        self.src
    }

    /// The link state toward `dst`, if any packet has been sent there.
    fn link(&self, dst: usize) -> Option<&LinkState> {
        self.links
            .binary_search_by_key(&(dst as u32), |(d, _)| *d)
            .ok()
            .map(|i| &self.links[i].1)
    }

    /// The link state toward `dst`, created idle on first use.
    fn link_mut(&mut self, cfg: &FabricConfig, dst: usize) -> &mut LinkState {
        let idx = match self.links.binary_search_by_key(&(dst as u32), |(d, _)| *d) {
            Ok(i) => i,
            Err(i) => {
                self.links.insert(
                    i,
                    (
                        dst as u32,
                        LinkState {
                            server: BandwidthServer::new(cfg.link_gbps, Time::ZERO),
                            sent: 0,
                        },
                    ),
                );
                i
            }
        };
        &mut self.links[idx].1
    }

    /// Sends a packet with `payload_bytes` of payload from this port's
    /// source to `dst` no earlier than `now`; returns its arrival time at
    /// `dst`: serialization onto the (queued) directed link plus one
    /// [`FabricConfig::hop_latency`] per routed hop.
    ///
    /// On a [`RackTopology::FatTree`] (and within each
    /// [`RackTopology::Datacenter`] rack), cross-leaf packets contend for
    /// the leaf's oversubscribed uplink bundle: within each hop-latency
    /// window a port may push its leaf's share
    /// ([`RackTopology::uplink_budget`] = `radix / oversubscription`
    /// packets) uplink unpenalized; every packet beyond the budget pays
    /// one extra hop of latency *per queued predecessor* — a coarse,
    /// deterministic stand-in for spine-queue delay. The state is tracked
    /// per source port (each shard owns its own nodes' ports), so the
    /// sharded event loop's bit-identity is untouched; contention from
    /// leaf-mates sharing the physical bundle is approximated by each port
    /// holding the full window share.
    ///
    /// Cross-rack datacenter packets additionally traverse the inter-rack
    /// spine: the middle of their five traversals is charged at
    /// [`RackTopology::spine_latency`] instead of one hop latency, and
    /// the rack's spine bundle applies the same per-window discipline one
    /// level up — [`RackTopology::spine_budget`] packets per
    /// `spine_latency` window unpenalized, each excess packet delayed a
    /// full `spine_latency` per queued predecessor, FIFO across windows.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is this port's own node or out of range.
    pub fn send(&mut self, cfg: &FabricConfig, now: Time, dst: usize, payload_bytes: u64) -> Time {
        assert!(dst != self.src, "no self-links: {} -> {dst}", self.src);
        assert!(
            dst < cfg.nodes,
            "node index out of range: {} -> {dst}",
            self.src
        );
        self.packets_sent += 1;
        let mut hops = cfg.topology.hops(self.src, dst);
        let crosses = cfg.topology.crosses_uplink(self.src, dst);
        if crosses {
            let budget = cfg
                .topology
                .uplink_budget()
                .expect("uplink crossings only exist on leaf/spine fabrics");
            let window = now.as_ps() / cfg.hop_latency.as_ps().max(1);
            if window != self.uplink_window {
                self.uplink_window = window;
                self.uplink_in_window = 0;
            }
            self.uplink_in_window += 1;
            if self.uplink_in_window > budget {
                hops += self.uplink_in_window - budget;
                self.uplink_queued += 1;
            }
        }
        self.hops_sent += hops;
        let mut propagation = cfg.hop_latency * hops;
        let spine = cfg.topology.crosses_spine(self.src, dst);
        if spine {
            let spine_latency = cfg
                .topology
                .spine_latency()
                .expect("spine crossings only exist on datacenters");
            // The middle traversal is the long-haul inter-rack link: swap
            // one hop latency for the spine latency.
            propagation = propagation - cfg.hop_latency + spine_latency;
            self.spine_crossings += 1;
            let budget = cfg
                .topology
                .spine_budget()
                .expect("spine crossings only exist on datacenters");
            let window = now.as_ps() / spine_latency.as_ps().max(1);
            if window != self.spine_window {
                self.spine_window = window;
                self.spine_in_window = 0;
            }
            self.spine_in_window += 1;
            if self.spine_in_window > budget {
                propagation += spine_latency * (self.spine_in_window - budget);
                self.spine_queued += 1;
            }
        }
        let link = self.link_mut(cfg, dst);
        link.sent += 1;
        let mut arrival = link.server.transmit(now, payload_bytes + cfg.header_bytes) + propagation;
        if crosses {
            // The uplink bundle is a FIFO queue: a packet sent in a later
            // window (counter reset) never overtakes one still queued.
            arrival = arrival.max(self.uplink_tail);
            self.uplink_tail = arrival;
        }
        if spine {
            arrival = arrival.max(self.spine_tail);
            self.spine_tail = arrival;
        }
        arrival
    }
}

/// The rack fabric: a full mesh of directed links between node pairs, with
/// per-packet propagation latency derived from the routed hop count.
///
/// # Example
///
/// ```
/// use sabre_fabric::{Fabric, FabricConfig};
/// use sabre_sim::Time;
///
/// let mut fabric = Fabric::new(FabricConfig::default());
/// // A 64 B payload packet from node 0 to node 1: (64+16) B @ 100 GBps
/// // serialization (0.8 ns) + 35 ns hop.
/// let arrive = fabric.send(Time::ZERO, 0, 1, 64);
/// assert_eq!(arrive, Time::from_ns_f64(35.8));
/// ```
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    /// One outgoing port per source node.
    ports: Vec<FabricPort>,
}

impl Fabric {
    /// Creates the fabric.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes < 2` or the topology grid cannot place every
    /// node.
    pub fn new(cfg: FabricConfig) -> Self {
        assert!(cfg.nodes >= 2, "a fabric needs at least two nodes");
        match cfg.topology {
            RackTopology::Mesh { cols } => {
                assert!(cols >= 1, "mesh must be at least one column wide");
                // Every node's grid coordinate must fit the u8 MeshCoord,
                // or hop counts would silently truncate.
                let rows = cfg.nodes.div_ceil(cols as usize);
                assert!(
                    rows <= u8::MAX as usize + 1,
                    "topology grid cannot place every node: {} nodes on {} columns",
                    cfg.nodes,
                    cols
                );
            }
            RackTopology::FatTree {
                radix,
                oversubscription,
            } => {
                assert!(radix >= 1, "fat-tree leaves need at least one downlink");
                assert!(
                    oversubscription >= 1,
                    "oversubscription ratio must be at least 1:1"
                );
                let leaves = cfg.nodes.div_ceil(radix as usize);
                assert!(
                    leaves <= u8::MAX as usize + 1,
                    "topology grid cannot place every node: {} nodes on {}-node leaves",
                    cfg.nodes,
                    radix
                );
            }
            RackTopology::Datacenter {
                racks,
                radix,
                oversubscription,
                spine_latency,
            } => {
                assert!(racks >= 1, "a datacenter needs at least one rack");
                assert!(radix >= 2, "datacenter leaves need at least two downlinks");
                assert!(
                    oversubscription >= 1,
                    "oversubscription ratio must be at least 1:1"
                );
                let capacity = racks as usize * (radix as usize).pow(2);
                assert!(
                    cfg.nodes <= capacity,
                    "topology cannot place every node: {} nodes in {} racks of {}\u{b2}",
                    cfg.nodes,
                    racks,
                    radix
                );
                let leaves = cfg.nodes.div_ceil(radix as usize);
                assert!(
                    leaves <= u8::MAX as usize + 1,
                    "topology grid cannot place every node: {} nodes on {}-node leaves",
                    cfg.nodes,
                    radix
                );
                // The arrival lower bound `now + hop_latency × hops` (and
                // with it the sharded loop's lookahead safety) relies on
                // the spine traversal never being cheaper than the hop it
                // replaces.
                assert!(
                    spine_latency >= cfg.hop_latency,
                    "spine latency must be at least the per-hop latency"
                );
            }
            RackTopology::Direct => {}
        }
        let ports = (0..cfg.nodes).map(FabricPort::new).collect();
        Fabric { cfg, ports }
    }

    /// The configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Splits the fabric into its shared configuration and the per-source
    /// port array, so disjoint node ranges (shards) can send concurrently.
    pub fn split(&mut self) -> (&FabricConfig, &mut [FabricPort]) {
        (&self.cfg, &mut self.ports)
    }

    /// Hops a packet from `src` to `dst` traverses under the configured
    /// topology.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn hops(&self, src: usize, dst: usize) -> u64 {
        self.cfg.topology.hops(src, dst)
    }

    /// Sends a packet with `payload_bytes` of payload from `src` to `dst`
    /// no earlier than `now`; returns its arrival time at `dst`:
    /// serialization onto the (queued) directed link plus one
    /// [`FabricConfig::hop_latency`] per routed hop.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either index is out of range.
    pub fn send(&mut self, now: Time, src: usize, dst: usize, payload_bytes: u64) -> Time {
        assert!(
            src < self.cfg.nodes && dst < self.cfg.nodes,
            "node index out of range: {src} -> {dst}"
        );
        self.ports[src].send(&self.cfg, now, dst, payload_bytes)
    }

    /// Total bytes (incl. headers) pushed from `src` to `dst` so far
    /// (0 for node pairs that never exchanged a packet).
    pub fn link_bytes(&self, src: usize, dst: usize) -> u64 {
        self.ports[src]
            .link(dst)
            .map_or(0, |l| l.server.bytes_total())
    }

    /// Packets pushed from `src` to `dst` so far.
    pub fn link_packets(&self, src: usize, dst: usize) -> u64 {
        self.ports[src].link(dst).map_or(0, |l| l.sent)
    }

    /// Packets pushed from `src` onto any link so far.
    pub fn node_packets_sent(&self, src: usize) -> u64 {
        self.ports[src].packets_sent
    }

    /// Hops traversed by every packet sent from `src` so far, including
    /// fat-tree uplink queueing penalties (see [`FabricPort::send`]).
    /// Divided by [`Fabric::node_packets_sent`] this is the node's mean
    /// hop count — the placement-quality metric of the `fig_placement`
    /// experiment.
    pub fn node_hops_sent(&self, src: usize) -> u64 {
        self.ports[src].hops_sent
    }

    /// Cross-leaf packets from `src` that exceeded the fat-tree uplink's
    /// per-window budget and paid queueing latency (always 0 on the flat
    /// topologies).
    pub fn node_uplink_queued(&self, src: usize) -> u64 {
        self.ports[src].uplink_queued
    }

    /// Cross-rack packets sent from `src` over the inter-rack spine so far
    /// (always 0 off the datacenter topology).
    pub fn node_spine_crossings(&self, src: usize) -> u64 {
        self.ports[src].spine_crossings
    }

    /// Cross-rack packets from `src` that exceeded the spine bundle's
    /// per-window budget and paid a full `spine_latency` of queueing.
    pub fn node_spine_queued(&self, src: usize) -> u64 {
        self.ports[src].spine_queued
    }

    /// The streaming hop/queue counters of `src`'s port as a mergeable
    /// [`HopStats`] — the per-node row datacenter-scale reports aggregate
    /// without any per-event storage.
    pub fn node_hop_stats(&self, src: usize) -> HopStats {
        let p = &self.ports[src];
        HopStats {
            packets: p.packets_sent,
            hops: p.hops_sent,
            uplink_queued: p.uplink_queued,
            spine_crossings: p.spine_crossings,
            spine_queued: p.spine_queued,
        }
    }

    /// [`Fabric::node_hop_stats`] merged over every port — whole-fabric
    /// traffic accounting.
    pub fn hop_stats(&self) -> HopStats {
        let mut total = HopStats::default();
        for src in 0..self.ports.len() {
            total.merge(&self.node_hop_stats(src));
        }
        total
    }

    /// Packets pushed onto any link so far.
    pub fn packets_total(&self) -> u64 {
        self.ports.iter().map(|p| p.packets_sent).sum()
    }

    /// Cross-rack packets pushed over the inter-rack spine so far; with
    /// [`Fabric::packets_total`] this gives the cross-spine traffic share.
    pub fn spine_crossings_total(&self) -> u64 {
        self.ports.iter().map(|p| p.spine_crossings).sum()
    }

    /// Utilization of the `src → dst` link over `[0, horizon]`.
    pub fn link_utilization(&self, src: usize, dst: usize, horizon: Time) -> f64 {
        self.ports[src]
            .link(dst)
            .map_or(0.0, |l| l.server.utilization(horizon))
    }
}

/// A message waiting in an [`Outbox`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending<M> {
    at: Time,
    dst: usize,
    msg: M,
}

/// One source node's outbound mailbox in a [`ShardRouter`].
///
/// Like [`FabricPort`], outboxes are the per-source unit a partitioned
/// event loop hands to its shards: a shard pushes every cross-node message
/// through the sending node's own outbox, so concurrent shards never share
/// mailbox state. At the synchronization barrier the loop collects all
/// outboxes back (see [`ShardRouter::merge_sorted`]).
#[derive(Debug)]
pub struct Outbox<M> {
    src: usize,
    pending: Vec<Pending<M>>,
    pushed: u64,
}

impl<M> Outbox<M> {
    /// The source node this outbox belongs to.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Queues `msg` for delivery to `dst` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is this outbox's own node (fabric messages never
    /// self-deliver; local work belongs on the node's own queue).
    pub fn push(&mut self, dst: usize, at: Time, msg: M) {
        assert!(dst != self.src, "no self-delivery: {} -> {dst}", self.src);
        self.pending.push(Pending { at, dst, msg });
        self.pushed += 1;
    }

    /// Messages queued but not yet drained.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Deterministic cross-shard message exchange for a partitioned event
/// loop.
///
/// Each source node pushes timestamped messages into its own [`Outbox`]
/// while its shard advances; at every synchronization barrier the loop
/// drains all outboxes with [`ShardRouter::drain_sorted`] (or, when the
/// outboxes are lent out to shards, [`ShardRouter::merge_sorted`]), which
/// yields messages in a total order determined *only* by `(arrival time,
/// source node, per-source push order)`. Because neither the order shards
/// were advanced in nor the grouping of nodes into shards appears in the
/// key, delivering the drained messages in yielded order makes the
/// simulation bit-identical for every shard count — the property the
/// rack's torture tests pin down.
///
/// Conservation: every pushed message is yielded by exactly one
/// subsequent merge. When all drains go through
/// [`ShardRouter::drain_sorted`], this is observable as
/// [`ShardRouter::pushed_total`] = [`ShardRouter::drained_total`] +
/// [`ShardRouter::in_flight`]; drains performed directly over lent-out
/// outboxes ([`ShardRouter::merge_sorted`] — how the cluster's window
/// barrier runs) bypass the router's drained counter, so there
/// `pushed_total - in_flight` counts the messages merged so far.
#[derive(Debug)]
pub struct ShardRouter<M> {
    outboxes: Vec<Outbox<M>>,
    drained: u64,
}

impl<M> ShardRouter<M> {
    /// A router for `nodes` source nodes.
    pub fn new(nodes: usize) -> Self {
        ShardRouter {
            outboxes: (0..nodes)
                .map(|src| Outbox {
                    src,
                    pending: Vec::new(),
                    pushed: 0,
                })
                .collect(),
            drained: 0,
        }
    }

    /// Queues `msg` from `src` for delivery to `dst` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or `src == dst`.
    pub fn push(&mut self, src: usize, dst: usize, at: Time, msg: M) {
        self.outboxes[src].push(dst, at, msg);
    }

    /// The per-source outboxes, for lending disjoint ranges to concurrent
    /// shards. Drains performed directly on the slices (via
    /// [`ShardRouter::merge_sorted`]) bypass the router's drained counter.
    pub fn outboxes_mut(&mut self) -> &mut [Outbox<M>] {
        &mut self.outboxes
    }

    /// Messages pushed but not yet drained.
    pub fn in_flight(&self) -> usize {
        self.outboxes.iter().map(Outbox::len).sum()
    }

    /// Total messages ever pushed.
    pub fn pushed_total(&self) -> u64 {
        self.outboxes.iter().map(|o| o.pushed).sum()
    }

    /// Total messages ever drained.
    pub fn drained_total(&self) -> u64 {
        self.drained
    }

    /// Drains every outbox, yielding `(at, dst, msg)` in the deterministic
    /// merge order: ascending arrival time, ties broken by source node
    /// index, then by per-source push order. The caller inserts each
    /// message into `dst`'s event queue in yielded order.
    pub fn drain_sorted(&mut self) -> Vec<(Time, usize, M)> {
        let drained = Self::merge_sorted(self.outboxes.iter_mut());
        self.drained += drained.len() as u64;
        drained
    }

    /// [`ShardRouter::drain_sorted`] over an arbitrary set of outboxes —
    /// the barrier-time merge for a loop that lent its outboxes out to
    /// shards. The order contract is identical: `(arrival time, source
    /// node, per-source push order)`, independent of the iteration order
    /// of `outboxes` (sources tag their messages).
    pub fn merge_sorted<'a>(
        outboxes: impl IntoIterator<Item = &'a mut Outbox<M>>,
    ) -> Vec<(Time, usize, M)>
    where
        M: 'a,
    {
        let mut tagged: Vec<(Time, usize, usize, usize, M)> = Vec::new();
        for outbox in outboxes {
            let src = outbox.src;
            for (idx, p) in outbox.pending.drain(..).enumerate() {
                tagged.push((p.at, src, idx, p.dst, p.msg));
            }
        }
        tagged.sort_by_key(|t| (t.0, t.1, t.2));
        tagged
            .into_iter()
            .map(|(at, _, _, dst, m)| (at, dst, m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_packet_latency() {
        let mut f = Fabric::new(FabricConfig::default());
        // Header-only packet: 16 B = 0.16 ns + 35 ns.
        assert_eq!(f.send(Time::ZERO, 0, 1, 0), Time::from_ps(35_160));
    }

    #[test]
    fn directions_are_independent() {
        let mut f = Fabric::new(FabricConfig::default());
        let big = 100_000; // 1 us of serialization at 100 GBps
        let fwd = f.send(Time::ZERO, 0, 1, big);
        let rev = f.send(Time::ZERO, 1, 0, 64);
        assert!(rev < fwd, "reverse link must not queue behind forward");
    }

    #[test]
    fn same_direction_traffic_queues() {
        let mut f = Fabric::new(FabricConfig::default());
        let a = f.send(Time::ZERO, 0, 1, 8192);
        let b = f.send(Time::ZERO, 0, 1, 8192);
        assert!(b > a);
        assert_eq!(f.link_bytes(0, 1), 2 * (8192 + 16));
        assert_eq!(f.link_packets(0, 1), 2);
        assert_eq!(f.packets_total(), 2);
    }

    #[test]
    fn sustained_link_bandwidth() {
        // 1 MB of 64 B packets: with 16 B headers the wire moves 1.25 MB,
        // so drain ≈ 12.5 us at 100 GBps.
        let mut f = Fabric::new(FabricConfig::default());
        let mut last = Time::ZERO;
        for _ in 0..(1_000_000 / 64) {
            last = f.send(Time::ZERO, 0, 1, 64);
        }
        let expected_us = 1_000_000.0 * (80.0 / 64.0) / 100.0 / 1000.0;
        assert!((last.as_us() - expected_us).abs() < 0.1, "{last}");
    }

    #[test]
    #[should_panic(expected = "no self-links")]
    fn self_send_rejected() {
        let mut f = Fabric::new(FabricConfig::default());
        let _ = f.send(Time::ZERO, 1, 1, 64);
    }

    #[test]
    #[should_panic(expected = "cannot place every node")]
    fn overtall_mesh_rejected() {
        // 300 nodes on one column: row indices would overflow the u8
        // MeshCoord and silently shrink hop counts.
        let _ = Fabric::new(FabricConfig {
            nodes: 300,
            topology: RackTopology::Mesh { cols: 1 },
            ..FabricConfig::default()
        });
    }

    #[test]
    fn mesh_pairs_pay_per_hop_latency() {
        // 8 nodes on a 3-wide mesh: 0 -> 7 is 3 hops.
        let mut f = Fabric::new(FabricConfig::for_nodes(8));
        assert_eq!(f.hops(0, 7), 3);
        let one_hop = f.send(Time::ZERO, 0, 1, 0);
        let three_hops = f.send(Time::ZERO, 0, 7, 0);
        assert_eq!(
            three_hops - one_hop,
            Time::from_ns(70),
            "two extra hops at 35 ns each"
        );
    }

    #[test]
    fn fat_tree_pairs_pay_per_hop_latency() {
        // 8 nodes, radix 4: 0 -> 3 shares a leaf (1 hop), 0 -> 7 crosses
        // the spine (3 hops).
        let mut f = Fabric::new(FabricConfig {
            nodes: 8,
            topology: RackTopology::FatTree {
                radix: 4,
                oversubscription: 1,
            },
            ..FabricConfig::default()
        });
        let same_leaf = f.send(Time::ZERO, 0, 3, 0);
        let cross_leaf = f.send(Time::ZERO, 0, 7, 0);
        assert_eq!(
            cross_leaf - same_leaf,
            Time::from_ns(70),
            "two extra hops at 35 ns each"
        );
        assert_eq!(f.node_hops_sent(0), 4);
        assert_eq!(f.node_packets_sent(0), 2);
        assert_eq!(f.node_uplink_queued(0), 0, "full bisection never queues");
    }

    #[test]
    fn oversubscribed_uplink_queues_past_its_window_budget() {
        // radix 4 at 4:1 -> one cross-leaf packet per 35 ns window; the
        // k-th excess packet pays k extra hops of queueing latency.
        let mut f = Fabric::new(FabricConfig {
            nodes: 8,
            topology: RackTopology::FatTree {
                radix: 4,
                oversubscription: 4,
            },
            ..FabricConfig::default()
        });
        let first = f.send(Time::ZERO, 0, 7, 0);
        let second = f.send(Time::ZERO, 0, 7, 0);
        let third = f.send(Time::ZERO, 0, 7, 0);
        // Serialization queues 0.16 ns per packet; propagation adds one
        // extra hop to the second packet, two to the third.
        assert_eq!(second - first, Time::from_ps(160) + Time::from_ns(35));
        assert_eq!(third - second, Time::from_ps(160) + Time::from_ns(35));
        assert_eq!(f.node_uplink_queued(0), 2);
        assert_eq!(f.node_hops_sent(0), 3 + 4 + 5);
        // Same-leaf traffic never touches the uplink.
        let mut g = Fabric::new(FabricConfig {
            nodes: 8,
            topology: RackTopology::FatTree {
                radix: 4,
                oversubscription: 4,
            },
            ..FabricConfig::default()
        });
        let a = g.send(Time::ZERO, 0, 3, 0);
        let b = g.send(Time::ZERO, 0, 3, 0);
        assert_eq!(b - a, Time::from_ps(160), "only link serialization");
        assert_eq!(g.node_uplink_queued(0), 0);
    }

    #[test]
    fn uplink_budget_resets_every_window() {
        let mut f = Fabric::new(FabricConfig {
            nodes: 8,
            topology: RackTopology::FatTree {
                radix: 4,
                oversubscription: 4,
            },
            ..FabricConfig::default()
        });
        let _ = f.send(Time::ZERO, 0, 7, 0);
        let _ = f.send(Time::ZERO, 0, 7, 0); // queued
        assert_eq!(f.node_uplink_queued(0), 1);
        // The next window's first packet is inside the budget again.
        let _ = f.send(Time::from_ns(35), 0, 7, 0);
        assert_eq!(f.node_uplink_queued(0), 1);
    }

    /// A 2-rack × radix-4 (32-node) datacenter fabric at the given
    /// oversubscription, with a 350 ns spine.
    fn dc_fabric(oversubscription: u8) -> Fabric {
        Fabric::new(FabricConfig {
            nodes: 32,
            topology: RackTopology::datacenter_for(2, 4, oversubscription),
            ..FabricConfig::default()
        })
    }

    #[test]
    fn datacenter_route_classes_pay_their_latencies() {
        let mut f = dc_fabric(1);
        let same_leaf = f.send(Time::ZERO, 0, 3, 0); // 1 hop
        let same_rack = f.send(Time::ZERO, 0, 15, 0); // 3 hops
        let cross_rack = f.send(Time::ZERO, 0, 16, 0); // 4 hops + spine
        assert_eq!(same_rack - same_leaf, Time::from_ns(70));
        assert_eq!(
            cross_rack - same_rack,
            Time::from_ns(35) + Time::from_ns(350),
            "one more rack-local hop plus the 350 ns spine traversal"
        );
        assert_eq!(f.node_hops_sent(0), 1 + 3 + 5);
        assert_eq!(f.node_spine_crossings(0), 1);
        assert_eq!(f.spine_crossings_total(), 1);
        assert_eq!(f.node_spine_queued(0), 0, "full bisection never queues");
    }

    #[test]
    fn oversubscribed_spine_queues_past_its_window_budget() {
        // radix 4 at 2:1 -> spine budget 4/2² = 1 packet per 350 ns
        // window; the k-th excess cross-rack packet pays k extra spine
        // traversals. The leaf uplink (budget 2/35 ns) also queues the
        // third packet for one extra hop.
        let mut f = dc_fabric(2);
        let first = f.send(Time::ZERO, 0, 16, 0);
        let second = f.send(Time::ZERO, 0, 16, 0);
        let third = f.send(Time::ZERO, 0, 16, 0);
        assert_eq!(second - first, Time::from_ps(160) + Time::from_ns(350));
        assert_eq!(
            third - second,
            Time::from_ps(160) + Time::from_ns(350) + Time::from_ns(35),
            "two spine queue slots plus the leaf uplink's first penalty hop"
        );
        assert_eq!(f.node_spine_queued(0), 2);
        assert_eq!(f.node_spine_crossings(0), 3);
        // Rack-local traffic never touches the spine state.
        let mut g = dc_fabric(2);
        let _ = g.send(Time::ZERO, 0, 15, 0);
        let _ = g.send(Time::ZERO, 0, 15, 0);
        assert_eq!(g.node_spine_queued(0), 0);
        assert_eq!(g.node_spine_crossings(0), 0);
    }

    #[test]
    fn spine_budget_resets_every_spine_window() {
        let mut f = dc_fabric(2);
        let _ = f.send(Time::ZERO, 0, 16, 0);
        let _ = f.send(Time::ZERO, 0, 16, 0); // queued
        assert_eq!(f.node_spine_queued(0), 1);
        // The next 350 ns window's first packet is inside the budget, but
        // the spine FIFO still refuses to let it overtake the queued one.
        let queued_tail = f.send(Time::ZERO, 0, 16, 0);
        let next_window = f.send(Time::from_ns(350), 0, 16, 0);
        assert_eq!(f.node_spine_queued(0), 2, "in-budget packet never queues");
        assert!(next_window >= queued_tail, "spine is FIFO across windows");
    }

    #[test]
    fn single_rack_datacenter_matches_fat_tree_fabric() {
        let mut ft = Fabric::new(FabricConfig {
            nodes: 16,
            topology: RackTopology::FatTree {
                radix: 4,
                oversubscription: 2,
            },
            ..FabricConfig::default()
        });
        let mut dc = Fabric::new(FabricConfig {
            nodes: 16,
            topology: RackTopology::datacenter_for(1, 4, 2),
            ..FabricConfig::default()
        });
        for (src, dst, payload) in [(0, 3, 64u64), (0, 15, 64), (0, 15, 0), (12, 2, 4096)] {
            assert_eq!(
                ft.send(Time::ZERO, src, dst, payload),
                dc.send(Time::ZERO, src, dst, payload)
            );
        }
    }

    #[test]
    fn untouched_links_report_zero() {
        let f = dc_fabric(1);
        assert_eq!(f.link_bytes(0, 31), 0);
        assert_eq!(f.link_packets(0, 31), 0);
        assert_eq!(f.node_packets_sent(0), 0);
        assert_eq!(f.link_utilization(0, 31, Time::from_ns(100)), 0.0);
        assert_eq!(f.packets_total(), 0);
    }

    #[test]
    #[should_panic(expected = "spine latency must be at least")]
    fn sub_hop_spine_latency_rejected() {
        let _ = Fabric::new(FabricConfig {
            nodes: 32,
            topology: RackTopology::Datacenter {
                racks: 2,
                radix: 4,
                oversubscription: 1,
                spine_latency: Time::from_ns(1),
            },
            ..FabricConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "cannot place every node")]
    fn overfull_datacenter_rejected() {
        let _ = Fabric::new(FabricConfig {
            nodes: 33,
            topology: RackTopology::datacenter_for(2, 4, 1),
            ..FabricConfig::default()
        });
    }

    #[test]
    fn two_node_fat_tree_matches_direct_fabric() {
        let mut direct = Fabric::new(FabricConfig::default());
        let mut ft = Fabric::new(FabricConfig {
            topology: RackTopology::fat_tree_for(2, 4),
            ..FabricConfig::default()
        });
        for payload in [0u64, 64, 4096] {
            assert_eq!(
                direct.send(Time::ZERO, 0, 1, payload),
                ft.send(Time::ZERO, 0, 1, payload)
            );
        }
    }

    #[test]
    fn two_node_mesh_matches_direct_fabric() {
        let mut direct = Fabric::new(FabricConfig::default());
        let mut mesh = Fabric::new(FabricConfig {
            topology: RackTopology::mesh_for(2),
            ..FabricConfig::default()
        });
        for payload in [0u64, 64, 4096] {
            assert_eq!(
                direct.send(Time::ZERO, 0, 1, payload),
                mesh.send(Time::ZERO, 0, 1, payload)
            );
        }
    }

    #[test]
    fn router_merge_order_is_src_then_push_order_on_ties() {
        let mut r: ShardRouter<&str> = ShardRouter::new(3);
        let t = Time::from_ns(100);
        // Pushed in an order scrambled across sources.
        r.push(2, 0, t, "c0");
        r.push(0, 1, t, "a0");
        r.push(2, 1, t, "c1");
        r.push(1, 0, Time::from_ns(50), "b-early");
        r.push(0, 2, t, "a1");
        assert_eq!(r.in_flight(), 5);
        let order: Vec<&str> = r.drain_sorted().into_iter().map(|(_, _, m)| m).collect();
        assert_eq!(order, vec!["b-early", "a0", "a1", "c0", "c1"]);
        assert_eq!(r.in_flight(), 0);
        assert_eq!(r.pushed_total(), 5);
        assert_eq!(r.drained_total(), 5);
    }

    #[test]
    #[should_panic(expected = "no self-delivery")]
    fn router_self_delivery_rejected() {
        let mut r: ShardRouter<()> = ShardRouter::new(2);
        r.push(1, 1, Time::ZERO, ());
    }
}
