//! The lossless inter-node rack fabric.
//!
//! Table 2: fixed 35 ns latency per hop, 100 GBps links. The evaluated
//! topology is two directly connected nodes, i.e. one hop in each
//! direction. Each direction of each link is an independent queued
//! bandwidth server, so request and reply streams do not contend with each
//! other but *do* contend with same-direction traffic — this is what caps
//! aggregate application throughput near 80–100 GBps in Figs. 7b and 8.

use sabre_sim::{BandwidthServer, Time};

/// Fabric parameters.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of nodes connected by the fabric.
    pub nodes: usize,
    /// Per-hop propagation latency (Table 2: 35 ns).
    pub hop_latency: Time,
    /// Link bandwidth in GB/s (Table 2: 100).
    pub link_gbps: f64,
    /// Per-packet wire overhead in bytes (header + CRC), added to every
    /// packet's serialization cost.
    pub header_bytes: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes: 2,
            hop_latency: Time::from_ns(35),
            link_gbps: 100.0,
            header_bytes: 16,
        }
    }
}

/// The rack fabric: a full mesh of directed links between node pairs.
///
/// # Example
///
/// ```
/// use sabre_fabric::{Fabric, FabricConfig};
/// use sabre_sim::Time;
///
/// let mut fabric = Fabric::new(FabricConfig::default());
/// // A 64 B payload packet from node 0 to node 1: (64+16) B @ 100 GBps
/// // serialization (0.8 ns) + 35 ns hop.
/// let arrive = fabric.send(Time::ZERO, 0, 1, 64);
/// assert_eq!(arrive, Time::from_ns_f64(35.8));
/// ```
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    /// `links[src * nodes + dst]`, unused for `src == dst`.
    links: Vec<BandwidthServer>,
}

impl Fabric {
    /// Creates the fabric.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes < 2`.
    pub fn new(cfg: FabricConfig) -> Self {
        assert!(cfg.nodes >= 2, "a fabric needs at least two nodes");
        let links = (0..cfg.nodes * cfg.nodes)
            .map(|_| BandwidthServer::new(cfg.link_gbps, cfg.hop_latency))
            .collect();
        Fabric { cfg, links }
    }

    /// The configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Sends a packet with `payload_bytes` of payload from `src` to `dst`
    /// no earlier than `now`; returns its arrival time at `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either index is out of range.
    pub fn send(&mut self, now: Time, src: usize, dst: usize, payload_bytes: u64) -> Time {
        assert!(src != dst, "no self-links: {src} -> {dst}");
        assert!(
            src < self.cfg.nodes && dst < self.cfg.nodes,
            "node index out of range: {src} -> {dst}"
        );
        let idx = src * self.cfg.nodes + dst;
        self.links[idx].transmit(now, payload_bytes + self.cfg.header_bytes)
    }

    /// Total bytes (incl. headers) pushed from `src` to `dst` so far.
    pub fn link_bytes(&self, src: usize, dst: usize) -> u64 {
        self.links[src * self.cfg.nodes + dst].bytes_total()
    }

    /// Utilization of the `src → dst` link over `[0, horizon]`.
    pub fn link_utilization(&self, src: usize, dst: usize, horizon: Time) -> f64 {
        self.links[src * self.cfg.nodes + dst].utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_packet_latency() {
        let mut f = Fabric::new(FabricConfig::default());
        // Header-only packet: 16 B = 0.16 ns + 35 ns.
        assert_eq!(f.send(Time::ZERO, 0, 1, 0), Time::from_ps(35_160));
    }

    #[test]
    fn directions_are_independent() {
        let mut f = Fabric::new(FabricConfig::default());
        let big = 100_000; // 1 us of serialization at 100 GBps
        let fwd = f.send(Time::ZERO, 0, 1, big);
        let rev = f.send(Time::ZERO, 1, 0, 64);
        assert!(rev < fwd, "reverse link must not queue behind forward");
    }

    #[test]
    fn same_direction_traffic_queues() {
        let mut f = Fabric::new(FabricConfig::default());
        let a = f.send(Time::ZERO, 0, 1, 8192);
        let b = f.send(Time::ZERO, 0, 1, 8192);
        assert!(b > a);
        assert_eq!(f.link_bytes(0, 1), 2 * (8192 + 16));
    }

    #[test]
    fn sustained_link_bandwidth() {
        // 1 MB of 64 B packets: with 16 B headers the wire moves 1.25 MB,
        // so drain ≈ 12.5 us at 100 GBps.
        let mut f = Fabric::new(FabricConfig::default());
        let mut last = Time::ZERO;
        for _ in 0..(1_000_000 / 64) {
            last = f.send(Time::ZERO, 0, 1, 64);
        }
        let expected_us = 1_000_000.0 * (80.0 / 64.0) / 100.0 / 1000.0;
        assert!((last.as_us() - expected_us).abs() < 0.1, "{last}");
    }

    #[test]
    #[should_panic(expected = "no self-links")]
    fn self_send_rejected() {
        let mut f = Fabric::new(FabricConfig::default());
        let _ = f.send(Time::ZERO, 1, 1, 64);
    }
}
