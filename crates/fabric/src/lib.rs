//! Interconnect models: the on-chip 2D mesh and the inter-node rack fabric.
//!
//! Table 2 parameters:
//!
//! * on-chip: 2D mesh, 16-byte links, 3 cycles/hop (at the 2 GHz core
//!   clock);
//! * inter-node: lossless fabric, fixed 35 ns per hop (following the Anton 2
//!   unified-switching design the paper cites), 100 GBps links.
//!
//! The evaluation connects two nodes directly, so the inter-node path is a
//! single hop each way. Both directions are modeled as independent
//! [`BandwidthServer`](sabre_sim::BandwidthServer)s so that request and
//! reply traffic do not contend.

pub mod internode;
pub mod mesh;

pub use internode::{Fabric, FabricConfig};
pub use mesh::{MeshConfig, MeshCoord};
