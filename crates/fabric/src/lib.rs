//! Interconnect models: the on-chip 2D mesh and the inter-node rack fabric.
//!
//! Table 2 parameters:
//!
//! * on-chip: 2D mesh, 16-byte links, 3 cycles/hop (at the 2 GHz core
//!   clock);
//! * inter-node: lossless fabric, fixed 35 ns per hop (following the Anton 2
//!   unified-switching design the paper cites), 100 GBps links.
//!
//! The paper's evaluation connects two nodes directly, so the inter-node
//! path is a single hop each way; N-node racks route over a
//! [`RackTopology`] — a crossbar, a rack-level 2D mesh, or a two-level
//! leaf/spine fat tree whose cross-leaf uplinks may be oversubscribed —
//! paying one hop latency per routed hop (plus deterministic uplink
//! queueing on an oversubscribed fat tree). Every directed node pair is an
//! independent [`BandwidthServer`](sabre_sim::BandwidthServer) so that
//! request and reply traffic do not contend.
//!
//! [`ShardRouter`] provides the deterministic cross-shard message merge a
//! partitioned event loop synchronizes internode traffic through.

pub mod internode;
pub mod mesh;

pub use internode::{Fabric, FabricConfig, FabricPort, Outbox, ShardRouter};
pub use mesh::{MeshConfig, MeshCoord, RackTopology};
