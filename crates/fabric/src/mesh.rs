//! 2D meshes: the on-chip tile mesh (analytic model) and the rack-level
//! node mesh the N-node fabric routes over.
//!
//! The on-chip mesh carries traffic between cores, LLC banks, memory
//! controllers and the edge-placed RMC backends. We model it analytically:
//! a message's latency is `hops × hop_latency + serialization`, with hop
//! counts from Manhattan distance on the 4×4 tile grid. Contention on mesh
//! links is second-order for the paper's experiments (the bottlenecks are
//! DRAM channels, R2P2 issue bandwidth and the inter-node fabric) and is
//! deliberately not modeled; the calibrated end-to-end latencies in
//! `sabre-mem::timing` already include average mesh traversal.
//!
//! [`RackTopology`] reuses the same Manhattan-distance geometry one level
//! up: beyond the paper's directly-connected pair, rack nodes sit on a 2D
//! mesh and internode packets pay one
//! [`FabricConfig::hop_latency`](crate::FabricConfig::hop_latency) per hop
//! of dimension-ordered (XY) routing.

use sabre_sim::{Freq, Time};

/// A tile coordinate on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshCoord {
    /// Column index.
    pub x: u8,
    /// Row index.
    pub y: u8,
}

impl MeshCoord {
    /// Manhattan distance to `other` in hops.
    pub fn hops_to(self, other: MeshCoord) -> u64 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs() as u64;
        let dy = (self.y as i32 - other.y as i32).unsigned_abs() as u64;
        dx + dy
    }
}

/// Geometry and timing of the on-chip mesh.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Tiles per row/column (Table 2 chip: 4×4 = 16 tiles).
    pub dim: u8,
    /// Cycles per hop (Table 2: 3).
    pub cycles_per_hop: u64,
    /// Link width in bytes (Table 2: 16).
    pub link_bytes: u64,
    /// Clock the mesh runs at (core clock, 2 GHz).
    pub clock: Freq,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            dim: 4,
            cycles_per_hop: 3,
            link_bytes: 16,
            clock: Freq::ghz(2.0),
        }
    }
}

impl MeshConfig {
    /// Tile coordinate of tile `i` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn coord(&self, i: usize) -> MeshCoord {
        assert!(
            i < self.dim as usize * self.dim as usize,
            "tile {i} out of range"
        );
        MeshCoord {
            x: (i % self.dim as usize) as u8,
            y: (i / self.dim as usize) as u8,
        }
    }

    /// Latency of a `bytes`-byte message over `hops` hops: per-hop router
    /// latency plus serialization of the message onto a 16-byte-wide link.
    pub fn traversal(&self, hops: u64, bytes: u64) -> Time {
        let flits = bytes.div_ceil(self.link_bytes).max(1);
        // Head flit pays the full hop latency; body flits pipeline behind it
        // at one flit per cycle.
        self.clock.cycles(hops * self.cycles_per_hop + (flits - 1))
    }

    /// Average hop count between a uniformly random pair of distinct tiles.
    /// Used to calibrate average LLC/directory traversal latencies.
    pub fn average_hops(&self) -> f64 {
        let n = self.dim as usize * self.dim as usize;
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.coord(a).hops_to(self.coord(b));
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }
}

/// How the rack's nodes are wired together — the shape internode routes
/// (and therefore per-packet propagation latency) derive from.
///
/// The paper evaluates two directly connected nodes; [`RackTopology::Mesh`]
/// opens the beyond-paper N-node rack: nodes are placed row-major on a
/// `cols`-wide 2D grid and packets take the dimension-ordered (XY) route,
/// so the hop count between two nodes is their Manhattan distance.
/// [`RackTopology::FatTree`] adds the third interconnect family: a
/// two-level leaf/spine tree whose cross-leaf uplinks may be
/// oversubscribed.
///
/// `Mesh { cols }` with two nodes is exactly one hop each way, so the
/// degenerate mesh reproduces the paper's pair bit-for-bit — and so does a
/// `FatTree` whose first leaf holds both nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RackTopology {
    /// Every node pair directly connected: always one hop (the evaluated
    /// two-node rack, generalized as a full crossbar).
    Direct,
    /// Nodes row-major on a 2D grid `cols` wide; hops = Manhattan distance.
    Mesh {
        /// Grid width in nodes (≥ 1).
        cols: u8,
    },
    /// A two-level leaf/spine fat tree: nodes attach to leaf switches in
    /// contiguous groups of `radix` (node `n` sits on leaf `n / radix`).
    /// A packet between two nodes of the same leaf traverses one switch
    /// (1 hop); a cross-leaf packet goes leaf → spine → leaf (3 hops) over
    /// its leaf's **uplink bundle**, which admits only
    /// `radix / oversubscription` packets per hop-latency window before
    /// queueing — see [`RackTopology::uplink_budget`] and
    /// [`crate::FabricPort::send`] for the contention model.
    FatTree {
        /// Downlinks per leaf switch, i.e. nodes per leaf (≥ 1).
        radix: u8,
        /// Uplink oversubscription ratio `q` in `q:1` (≥ 1; `1` is a full
        /// bisection-bandwidth tree, `4` means the uplink bundle carries a
        /// quarter of the leaf's aggregate downlink bandwidth).
        oversubscription: u8,
    },
    /// The datacenter tier: `racks` racks, each a fat tree of `radix`
    /// leaves with `radix` nodes per leaf (`radix²` nodes per rack), the
    /// racks joined by an inter-rack **spine** whose per-hop latency is
    /// `spine_latency` — typically an order of magnitude above the
    /// intra-rack [`crate::FabricConfig::hop_latency`].
    ///
    /// Node `n` sits on leaf `n / radix` of rack `n / radix²`
    /// ([`RackTopology::leaf_of`] / [`RackTopology::rack_of`]). Routes:
    ///
    /// * same leaf — one switch traversal (1 hop);
    /// * same rack, different leaf — leaf → rack spine → leaf (3 hops),
    ///   paying the leaf uplink contention of the fat-tree model;
    /// * different rack — leaf → rack spine → **datacenter spine** → rack
    ///   spine → leaf (5 hops), where the middle traversal costs
    ///   `spine_latency` instead of one hop latency and contends for the
    ///   rack's spine uplink bundle ([`RackTopology::spine_budget`],
    ///   [`crate::FabricPort::send`]).
    Datacenter {
        /// Racks joined by the spine (≥ 1).
        racks: u8,
        /// Nodes per leaf *and* leaves per rack (≥ 2), so each rack holds
        /// `radix²` nodes.
        radix: u8,
        /// Uplink oversubscription ratio `q` in `q:1`, applied at both
        /// levels: each leaf's uplink bundle and each rack's spine bundle
        /// carry a `1/q` share of the aggregate bandwidth below them.
        oversubscription: u8,
        /// Per-traversal latency of the inter-rack spine (the long-haul
        /// link between rack spines). Must be at least the fabric's
        /// per-hop latency; typically many times larger.
        spine_latency: Time,
    },
}

impl RackTopology {
    /// A near-square mesh for `nodes` nodes (`cols = ceil(sqrt(nodes))`),
    /// the default shape for beyond-paper racks.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn mesh_for(nodes: usize) -> Self {
        assert!(nodes > 0, "a rack needs at least one node");
        let mut cols = 1usize;
        while cols * cols < nodes {
            cols += 1;
        }
        RackTopology::Mesh { cols: cols as u8 }
    }

    /// A two-leaf fat tree for `nodes` nodes (`radix = ceil(nodes / 2)`,
    /// floored at 2 so the paper pair shares one leaf) at the given
    /// oversubscription ratio — the default leaf/spine shape the placement
    /// experiments sweep against the mesh.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or needs a radix beyond `u8`.
    pub fn fat_tree_for(nodes: usize, oversubscription: u8) -> Self {
        assert!(nodes > 0, "a rack needs at least one node");
        let radix = nodes.div_ceil(2).max(2);
        assert!(radix <= u8::MAX as usize, "fat-tree radix exceeds u8");
        RackTopology::FatTree {
            radix: radix as u8,
            oversubscription,
        }
    }

    /// A datacenter of `racks` racks sized for the standard torture and
    /// figure quadrants: `radix`-node leaves, `radix` leaves per rack, a
    /// 350 ns inter-rack spine (10× the Table-2 hop latency) at the given
    /// oversubscription ratio.
    ///
    /// # Panics
    ///
    /// Panics if `racks` is zero or `radix < 2`.
    pub fn datacenter_for(racks: u8, radix: u8, oversubscription: u8) -> Self {
        assert!(racks >= 1, "a datacenter needs at least one rack");
        assert!(radix >= 2, "datacenter leaves need at least two downlinks");
        RackTopology::Datacenter {
            racks,
            radix,
            oversubscription,
            spine_latency: Time::from_ns(350),
        }
    }

    /// Grid coordinate of `node` (row-major placement; meaningless for
    /// [`RackTopology::Direct`], where every pair is one hop). For
    /// [`RackTopology::FatTree`] and [`RackTopology::Datacenter`] the row
    /// is the (global) leaf index and the column the position within the
    /// leaf.
    pub fn coord(self, node: usize) -> MeshCoord {
        let cols = match self {
            RackTopology::Direct => 1,
            RackTopology::Mesh { cols } => cols.max(1) as usize,
            RackTopology::FatTree { radix, .. } | RackTopology::Datacenter { radix, .. } => {
                radix.max(1) as usize
            }
        };
        MeshCoord {
            x: (node % cols) as u8,
            y: (node / cols) as u8,
        }
    }

    /// The leaf switch `node` attaches to, for [`RackTopology::FatTree`]
    /// and [`RackTopology::Datacenter`] (global leaf index — datacenter
    /// leaves number contiguously across racks); `None` for the flat
    /// topologies.
    pub fn leaf_of(self, node: usize) -> Option<usize> {
        match self {
            RackTopology::FatTree { radix, .. } | RackTopology::Datacenter { radix, .. } => {
                Some(node / radix.max(1) as usize)
            }
            _ => None,
        }
    }

    /// The rack `node` belongs to, for [`RackTopology::Datacenter`]
    /// (`node / radix²`); `None` for the single-rack topologies.
    pub fn rack_of(self, node: usize) -> Option<usize> {
        match self {
            RackTopology::Datacenter { radix, .. } => {
                let per_rack = (radix.max(1) as usize).pow(2);
                Some(node / per_rack)
            }
            _ => None,
        }
    }

    /// Nodes one rack holds: `radix²` for [`RackTopology::Datacenter`],
    /// `None` for the single-rack topologies (the whole fabric is the
    /// rack).
    pub fn nodes_per_rack(self) -> Option<usize> {
        match self {
            RackTopology::Datacenter { radix, .. } => Some((radix.max(1) as usize).pow(2)),
            _ => None,
        }
    }

    /// Whether a `src → dst` packet climbs a leaf uplink (fat tree and
    /// datacenter: the endpoints sit on different leaves).
    pub fn crosses_uplink(self, src: usize, dst: usize) -> bool {
        match self {
            RackTopology::FatTree { .. } | RackTopology::Datacenter { .. } => {
                self.leaf_of(src) != self.leaf_of(dst)
            }
            _ => false,
        }
    }

    /// Whether a `src → dst` packet traverses the inter-rack spine
    /// (datacenter only: the endpoints sit in different racks).
    pub fn crosses_spine(self, src: usize, dst: usize) -> bool {
        match self {
            RackTopology::Datacenter { .. } => self.rack_of(src) != self.rack_of(dst),
            _ => false,
        }
    }

    /// Packets a leaf's uplink bundle admits per hop-latency window before
    /// cross-leaf traffic starts queueing: `radix / oversubscription`,
    /// floored at one. `None` for topologies without uplinks.
    pub fn uplink_budget(self) -> Option<u64> {
        match self {
            RackTopology::FatTree {
                radix,
                oversubscription,
            }
            | RackTopology::Datacenter {
                radix,
                oversubscription,
                ..
            } => Some((radix.max(1) as u64 / oversubscription.max(1) as u64).max(1)),
            _ => None,
        }
    }

    /// Packets one source port may push across the inter-rack spine per
    /// `spine_latency` window before cross-rack traffic starts queueing —
    /// the rack's spine bundle share, oversubscribed once more on top of
    /// the leaf level: `radix / oversubscription²`, floored at one.
    /// `None` for topologies without an inter-rack spine.
    pub fn spine_budget(self) -> Option<u64> {
        match self {
            RackTopology::Datacenter {
                radix,
                oversubscription,
                ..
            } => {
                let q = oversubscription.max(1) as u64;
                Some((radix.max(1) as u64 / (q * q)).max(1))
            }
            _ => None,
        }
    }

    /// The inter-rack spine's per-traversal latency, `None` for
    /// single-rack topologies.
    pub fn spine_latency(self) -> Option<Time> {
        match self {
            RackTopology::Datacenter { spine_latency, .. } => Some(spine_latency),
            _ => None,
        }
    }

    /// Hops an internode packet from `src` to `dst` traverses (the
    /// *uncontended* route; fat-tree uplink queueing adds latency on top —
    /// see [`crate::FabricPort::send`]). On a datacenter the cross-rack
    /// route counts 5 traversals; the middle (inter-rack spine) one is
    /// charged at [`RackTopology::spine_latency`] rather than the per-hop
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` — the fabric never self-delivers.
    pub fn hops(self, src: usize, dst: usize) -> u64 {
        assert!(src != dst, "no self-delivery: {src} -> {dst}");
        match self {
            RackTopology::Direct => 1,
            RackTopology::Mesh { .. } => self.coord(src).hops_to(self.coord(dst)),
            RackTopology::FatTree { .. } => {
                if self.leaf_of(src) == self.leaf_of(dst) {
                    1 // up to the shared leaf switch and back down
                } else {
                    3 // leaf -> spine -> leaf
                }
            }
            RackTopology::Datacenter { .. } => {
                if self.leaf_of(src) == self.leaf_of(dst) {
                    1 // one shared leaf switch
                } else if self.rack_of(src) == self.rack_of(dst) {
                    3 // leaf -> rack spine -> leaf
                } else {
                    5 // leaf -> rack spine -> dc spine -> rack spine -> leaf
                }
            }
        }
    }

    /// The smallest hop count between any two distinct nodes — the
    /// conservative lookahead a sharded event loop may advance without
    /// cross-node synchronization. 1 in every shape with same-switch
    /// neighbors; the degenerate radix-1 fat tree has none (each node
    /// sits alone on its leaf), so every pair routes through the spine
    /// and the loop may safely look 3 hops ahead. Datacenter radices are
    /// at least 2 by construction, so same-leaf one-hop pairs always
    /// exist there.
    pub fn min_hops(self) -> u64 {
        match self {
            RackTopology::FatTree { radix: 0 | 1, .. } => 3,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = MeshCoord { x: 0, y: 0 };
        let b = MeshCoord { x: 3, y: 2 };
        assert_eq!(a.hops_to(b), 5);
        assert_eq!(b.hops_to(a), 5);
        assert_eq!(a.hops_to(a), 0);
    }

    #[test]
    fn coord_layout_row_major() {
        let cfg = MeshConfig::default();
        assert_eq!(cfg.coord(0), MeshCoord { x: 0, y: 0 });
        assert_eq!(cfg.coord(5), MeshCoord { x: 1, y: 1 });
        assert_eq!(cfg.coord(15), MeshCoord { x: 3, y: 3 });
    }

    #[test]
    fn traversal_latency() {
        let cfg = MeshConfig::default();
        // 2 hops, single-flit message: 6 cycles @ 2 GHz = 3 ns.
        assert_eq!(cfg.traversal(2, 8), Time::from_ns(3));
        // 64-byte message = 4 flits: 3 extra cycles of serialization.
        assert_eq!(cfg.traversal(2, 64), Time::from_ns_f64(4.5));
    }

    #[test]
    fn average_hops_for_4x4_mesh() {
        // Known value for a 4×4 mesh: 8/3 average hops between distinct
        // tiles (per-axis mean distance on 4 points is 20/16 = 1.25... times
        // 2 axes, normalized to distinct pairs = 8/3).
        let avg = MeshConfig::default().average_hops();
        assert!((avg - 8.0 / 3.0).abs() < 1e-9, "avg = {avg}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_bounds_checked() {
        let _ = MeshConfig::default().coord(16);
    }

    #[test]
    fn rack_mesh_degenerates_to_the_paper_pair() {
        // Two nodes on any mesh: one hop each way, exactly like Direct.
        for topo in [RackTopology::Direct, RackTopology::mesh_for(2)] {
            assert_eq!(topo.hops(0, 1), 1);
            assert_eq!(topo.hops(1, 0), 1);
        }
    }

    #[test]
    fn rack_mesh_shapes() {
        assert_eq!(RackTopology::mesh_for(2), RackTopology::Mesh { cols: 2 });
        assert_eq!(RackTopology::mesh_for(4), RackTopology::Mesh { cols: 2 });
        assert_eq!(RackTopology::mesh_for(8), RackTopology::Mesh { cols: 3 });
        // 8 nodes on a 3-wide grid: node 0 at (0,0), node 7 at (1,2).
        let topo = RackTopology::mesh_for(8);
        assert_eq!(topo.coord(7), MeshCoord { x: 1, y: 2 });
        assert_eq!(topo.hops(0, 7), 3);
        assert_eq!(topo.hops(7, 0), 3);
    }

    #[test]
    #[should_panic(expected = "no self-delivery")]
    fn rack_self_route_rejected() {
        let _ = RackTopology::mesh_for(4).hops(2, 2);
    }

    #[test]
    fn fat_tree_routes_by_leaf() {
        // 8 nodes, radix 4: leaves {0..3} and {4..7}.
        let ft = RackTopology::FatTree {
            radix: 4,
            oversubscription: 2,
        };
        assert_eq!(ft.leaf_of(3), Some(0));
        assert_eq!(ft.leaf_of(4), Some(1));
        assert_eq!(ft.hops(0, 3), 1, "same leaf is one switch traversal");
        assert_eq!(ft.hops(0, 4), 3, "cross leaf is leaf -> spine -> leaf");
        assert_eq!(ft.hops(4, 0), 3, "routes are symmetric");
        assert!(ft.crosses_uplink(0, 4));
        assert!(!ft.crosses_uplink(0, 3));
        assert_eq!(ft.min_hops(), 1);
    }

    #[test]
    fn radix_one_fat_tree_has_no_one_hop_pairs() {
        // Every node alone on its leaf: all routes cross the spine, so
        // the safe lookahead is the full 3-hop distance.
        let ft = RackTopology::FatTree {
            radix: 1,
            oversubscription: 1,
        };
        assert_eq!(ft.hops(0, 1), 3);
        assert_eq!(ft.hops(2, 5), 3);
        assert_eq!(ft.min_hops(), 3);
    }

    #[test]
    fn fat_tree_uplink_budget_is_the_oversubscribed_share() {
        let budget = |radix, oversubscription| {
            RackTopology::FatTree {
                radix,
                oversubscription,
            }
            .uplink_budget()
        };
        assert_eq!(budget(4, 1), Some(4), "full bisection: all downlinks");
        assert_eq!(budget(4, 2), Some(2));
        assert_eq!(budget(4, 4), Some(1));
        assert_eq!(budget(2, 4), Some(1), "budget floors at one packet");
        assert_eq!(RackTopology::Direct.uplink_budget(), None);
        assert_eq!(RackTopology::mesh_for(8).uplink_budget(), None);
    }

    #[test]
    fn fat_tree_degenerates_to_the_paper_pair() {
        // Two nodes on one leaf: one hop each way, no uplink — exactly
        // Direct.
        let ft = RackTopology::fat_tree_for(2, 4);
        assert_eq!(ft.hops(0, 1), 1);
        assert_eq!(ft.hops(1, 0), 1);
        assert!(!ft.crosses_uplink(0, 1));
    }

    #[test]
    fn datacenter_routes_by_leaf_and_rack() {
        // 2 racks × radix 4 = 32 nodes: rack 0 holds 0..16 on leaves
        // {0..3}, {4..7}, {8..11}, {12..15}; rack 1 holds 16..32.
        let dc = RackTopology::datacenter_for(2, 4, 2);
        assert_eq!(dc.leaf_of(3), Some(0));
        assert_eq!(dc.leaf_of(4), Some(1));
        assert_eq!(dc.leaf_of(16), Some(4), "leaves number across racks");
        assert_eq!(dc.rack_of(15), Some(0));
        assert_eq!(dc.rack_of(16), Some(1));
        assert_eq!(dc.nodes_per_rack(), Some(16));
        assert_eq!(dc.hops(0, 3), 1, "same leaf is one switch traversal");
        assert_eq!(dc.hops(0, 15), 3, "same rack crosses the rack spine");
        assert_eq!(dc.hops(0, 16), 5, "cross rack adds the dc spine");
        assert_eq!(dc.hops(16, 0), 5, "routes are symmetric");
        assert!(!dc.crosses_uplink(0, 3));
        assert!(dc.crosses_uplink(0, 15));
        assert!(dc.crosses_uplink(0, 16), "cross-rack climbs the leaf too");
        assert!(!dc.crosses_spine(0, 15));
        assert!(dc.crosses_spine(0, 16));
        assert_eq!(dc.min_hops(), 1);
    }

    #[test]
    fn datacenter_budgets_oversubscribe_per_level() {
        let dc = |radix, q| RackTopology::datacenter_for(2, radix, q);
        // Leaf uplinks behave exactly like the single-rack fat tree.
        assert_eq!(dc(4, 1).uplink_budget(), Some(4));
        assert_eq!(dc(4, 2).uplink_budget(), Some(2));
        // The spine bundle is oversubscribed once more on top: radix/q².
        assert_eq!(dc(4, 1).spine_budget(), Some(4));
        assert_eq!(dc(4, 2).spine_budget(), Some(1));
        assert_eq!(dc(8, 2).spine_budget(), Some(2));
        assert_eq!(dc(2, 4).spine_budget(), Some(1), "floors at one packet");
        assert_eq!(RackTopology::fat_tree_for(8, 2).spine_budget(), None);
        assert_eq!(RackTopology::Direct.spine_latency(), None);
        assert_eq!(
            dc(4, 2).spine_latency(),
            Some(Time::from_ns(350)),
            "constructor pins the 10x-hop spine"
        );
    }

    #[test]
    fn single_rack_datacenter_routes_like_its_fat_tree() {
        let dc = RackTopology::datacenter_for(1, 4, 2);
        let ft = RackTopology::FatTree {
            radix: 4,
            oversubscription: 2,
        };
        for src in 0..16 {
            for dst in 0..16 {
                if src == dst {
                    continue;
                }
                assert_eq!(dc.hops(src, dst), ft.hops(src, dst));
                assert!(!dc.crosses_spine(src, dst));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two downlinks")]
    fn degenerate_datacenter_radix_rejected() {
        let _ = RackTopology::datacenter_for(4, 1, 1);
    }

    #[test]
    fn fat_tree_for_splits_into_two_leaves() {
        assert_eq!(
            RackTopology::fat_tree_for(8, 2),
            RackTopology::FatTree {
                radix: 4,
                oversubscription: 2
            }
        );
        assert_eq!(
            RackTopology::fat_tree_for(7, 1),
            RackTopology::FatTree {
                radix: 4,
                oversubscription: 1
            }
        );
    }
}
