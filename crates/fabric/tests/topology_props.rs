//! Property tests of the rack-level topology and the deterministic
//! cross-shard router: route symmetry, no self-delivery, and conservation
//! of in-flight messages — the invariants the sharded event loop's
//! bit-identity proof rests on.

use proptest::prelude::*;

use sabre_fabric::{Fabric, FabricConfig, RackTopology, ShardRouter};
use sabre_sim::Time;

/// A topology strategy covering the paper pair, crossbars, meshes,
/// (oversubscribed) fat trees and multi-rack datacenters from 2 to 12
/// nodes (datacenter node counts clamp to the racks' capacity).
fn topologies() -> impl Strategy<Value = (usize, RackTopology)> {
    (2usize..13, 0u8..4, 1u8..5, 1u8..5, 1u8..4).prop_map(
        |(nodes, family, radix, oversubscription, racks)| {
            let topo = match family {
                0 => RackTopology::Direct,
                1 => RackTopology::mesh_for(nodes),
                2 => RackTopology::FatTree {
                    radix,
                    oversubscription,
                },
                _ => RackTopology::datacenter_for(racks, radix.max(2), oversubscription),
            };
            let nodes = match topo {
                RackTopology::Datacenter { racks, radix, .. } => {
                    nodes.min(racks as usize * (radix as usize).pow(2))
                }
                _ => nodes,
            };
            (nodes, topo)
        },
    )
}

proptest! {
    /// Routes are symmetric: a reply retraces its request's hop count, so
    /// request/reply latencies are balanced whatever the placement.
    #[test]
    fn route_symmetry(point in topologies()) {
        let (nodes, topo) = point;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src != dst {
                    prop_assert_eq!(topo.hops(src, dst), topo.hops(dst, src));
                    prop_assert!(topo.hops(src, dst) >= topo.min_hops());
                }
            }
        }
    }

    /// Mesh hops are exactly the Manhattan distance of the row-major grid
    /// placement, and the triangle inequality holds (XY routing never
    /// beats a relay).
    #[test]
    fn mesh_hops_are_manhattan(point in topologies()) {
        let (nodes, topo) = point;
        for a in 0..nodes {
            for b in 0..nodes {
                if a == b { continue; }
                let direct = topo.hops(a, b);
                match topo {
                    RackTopology::Direct => prop_assert_eq!(direct, 1),
                    RackTopology::Mesh { .. } => {
                        prop_assert_eq!(direct, topo.coord(a).hops_to(topo.coord(b)));
                    }
                    RackTopology::FatTree { .. } => {
                        let expect = if topo.leaf_of(a) == topo.leaf_of(b) { 1 } else { 3 };
                        prop_assert_eq!(direct, expect);
                        prop_assert_eq!(topo.crosses_uplink(a, b), expect == 3);
                    }
                    RackTopology::Datacenter { .. } => {
                        let expect = if topo.leaf_of(a) == topo.leaf_of(b) {
                            1
                        } else if topo.rack_of(a) == topo.rack_of(b) {
                            3
                        } else {
                            5
                        };
                        prop_assert_eq!(direct, expect);
                        prop_assert_eq!(topo.crosses_uplink(a, b), expect >= 3);
                        prop_assert_eq!(topo.crosses_spine(a, b), expect == 5);
                    }
                }
                for via in 0..nodes {
                    if via != a && via != b {
                        prop_assert!(direct <= topo.hops(a, via) + topo.hops(via, b));
                    }
                }
            }
        }
    }

    /// Datacenter geometry is self-consistent: each leaf belongs to
    /// exactly one rack (`leaf_of(n) / radix == rack_of(n)`), same-leaf
    /// pairs share a rack, and the three route classes are strictly
    /// ordered — same-leaf (1) < intra-rack cross-leaf (3) < cross-rack
    /// over the spine (5).
    #[test]
    fn datacenter_geometry_is_consistent(
        racks in 1u8..5,
        radix in 2u8..6,
        oversubscription in 1u8..5,
    ) {
        let topo = RackTopology::datacenter_for(racks, radix, oversubscription);
        let nodes = racks as usize * (radix as usize).pow(2);
        for n in 0..nodes {
            let leaf = topo.leaf_of(n).expect("datacenter nodes sit on leaves");
            let rack = topo.rack_of(n).expect("datacenter nodes sit in racks");
            prop_assert_eq!(leaf / radix as usize, rack, "a leaf belongs to one rack");
            prop_assert!(rack < racks as usize);
        }
        for a in 0..nodes {
            for b in 0..nodes {
                if a == b { continue; }
                let hops = topo.hops(a, b);
                if topo.leaf_of(a) == topo.leaf_of(b) {
                    prop_assert_eq!(topo.rack_of(a), topo.rack_of(b));
                    prop_assert_eq!(hops, 1);
                    prop_assert!(!topo.crosses_uplink(a, b));
                    prop_assert!(!topo.crosses_spine(a, b));
                } else if topo.rack_of(a) == topo.rack_of(b) {
                    prop_assert_eq!(hops, 3);
                    prop_assert!(topo.crosses_uplink(a, b));
                    prop_assert!(!topo.crosses_spine(a, b));
                } else {
                    prop_assert_eq!(hops, 5);
                    prop_assert!(topo.crosses_uplink(a, b));
                    prop_assert!(topo.crosses_spine(a, b));
                }
                prop_assert!(hops >= topo.min_hops());
            }
        }
    }

    /// Every packet pushed onto the fabric is accounted to exactly one
    /// directed link, arrivals never precede the routed propagation
    /// latency, and same-link arrivals are FIFO.
    #[test]
    fn fabric_conserves_packets(
        point in topologies(),
        sends in proptest::collection::vec((0usize..12, 0usize..12, 0u64..4096, 0u64..500), 1..60),
    ) {
        let (nodes, topo) = point;
        let mut fabric = Fabric::new(FabricConfig {
            nodes,
            topology: topo,
            ..FabricConfig::default()
        });
        let hop = fabric.config().hop_latency;
        let mut count = 0u64;
        let mut spine_count = 0u64;
        let mut last_arrival = vec![Time::ZERO; nodes * nodes];
        let mut now = Time::ZERO;
        for &(src, dst, bytes, dt) in &sends {
            let (src, dst) = (src % nodes, dst % nodes);
            if src == dst { continue; }
            now += Time::from_ns(dt);
            let arrival = fabric.send(now, src, dst, bytes);
            count += 1;
            prop_assert!(arrival >= now + hop * topo.hops(src, dst));
            if topo.crosses_spine(src, dst) {
                spine_count += 1;
                let spine = topo.spine_latency().expect("spine crossings imply a spine");
                prop_assert!(
                    arrival >= now + hop * (topo.hops(src, dst) - 1) + spine,
                    "the middle traversal pays the full spine latency"
                );
            }
            let link = src * nodes + dst;
            prop_assert!(arrival >= last_arrival[link], "same-link arrivals are FIFO");
            last_arrival[link] = arrival;
        }
        prop_assert_eq!(fabric.packets_total(), count);
        prop_assert_eq!(
            fabric.spine_crossings_total(), spine_count,
            "every cross-rack packet crosses the spine exactly once"
        );
        let per_link: u64 = (0..nodes)
            .flat_map(|s| (0..nodes).map(move |d| (s, d)))
            .filter(|(s, d)| s != d)
            .map(|(s, d)| fabric.link_packets(s, d))
            .sum();
        prop_assert_eq!(per_link, count);
    }

    /// The shard router conserves messages (pushed = drained + in flight)
    /// and its merge order is a pure function of `(time, src, push
    /// order)`: scrambling the interleaving of pushes *across* sources —
    /// which is exactly what regrouping nodes into different shards does —
    /// never changes the drain order.
    #[test]
    fn router_conserves_and_merges_deterministically(
        msgs in proptest::collection::vec((0usize..6, 1usize..6, 0u64..50), 1..80),
        rot in 0usize..7,
    ) {
        let nodes = 6;
        // Reference: push in listed order.
        let mut a: ShardRouter<usize> = ShardRouter::new(nodes);
        for (i, &(src, step, t)) in msgs.iter().enumerate() {
            let dst = (src + step) % nodes;
            if dst == src { continue; }
            a.push(src, dst, Time::from_ns(t), i);
        }
        // Same messages, sources visited in a rotated round-robin order
        // (per-source relative order preserved, cross-source interleaving
        // completely different).
        let mut b: ShardRouter<usize> = ShardRouter::new(nodes);
        for s in 0..nodes {
            let s = (s + rot) % nodes;
            for (i, &(src, step, t)) in msgs.iter().enumerate() {
                let dst = (src + step) % nodes;
                if src != s || dst == src { continue; }
                b.push(src, dst, Time::from_ns(t), i);
            }
        }
        prop_assert_eq!(a.pushed_total(), b.pushed_total());
        let pushed = a.pushed_total();
        prop_assert_eq!(a.in_flight() as u64, pushed);
        let da = a.drain_sorted();
        let db = b.drain_sorted();
        // Times come out non-decreasing, whatever the push interleaving.
        for w in da.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "drain order must be time-sorted");
        }
        prop_assert_eq!(da, db);
        prop_assert_eq!(a.in_flight(), 0);
        prop_assert_eq!(a.drained_total(), pushed);
        // A second drain yields nothing (no duplication).
        prop_assert!(b.drain_sorted().is_empty());
    }
}

#[test]
fn drained_times_non_decreasing() {
    let mut r: ShardRouter<u32> = ShardRouter::new(4);
    for (i, t) in [90u64, 10, 50, 50, 10, 90].iter().enumerate() {
        r.push(i % 4, (i + 1) % 4, Time::from_ns(*t), i as u32);
    }
    let drained = r.drain_sorted();
    for w in drained.windows(2) {
        assert!(w[0].0 <= w[1].0, "drain order must be time-sorted");
    }
}
