//! **LightSABRes** — the paper's contribution: a lightweight destination-side
//! hardware engine providing *SABRes* (Single-site Atomic Bulk Reads), i.e.
//! one-sided remote object reads that are atomic across multiple cache
//! blocks.
//!
//! The engine lives inside a destination node's Remote Request Processing
//! Pipeline (R2P2) and is integrated into the chip's coherence domain. Its
//! job (§3–§4 of the paper):
//!
//! * overlap the object's **version/lock access with the data reads** to
//!   extract maximum memory-level parallelism, instead of serializing a
//!   read-version-then-data sequence;
//! * during the resulting **window of vulnerability** (from issuing the head
//!   block's read until its completion), track the object's address range in
//!   a **stream buffer** and snoop coherence invalidations against it with a
//!   simple subtractor — no associative search;
//! * **abort** the SABRe when an invalidation hits an already-read block
//!   inside the window (a racing writer), **ignore** invalidations after the
//!   window closes (LLC-eviction false alarms), and **re-validate** the
//!   header at the end whenever the base block itself was invalidated (the
//!   one ambiguous event);
//! * expose success/failure to software through the final validation reply —
//!   the hardware never retries (§5.1).
//!
//! The engine here is a *sans-IO state machine*: it never touches memory or
//! the network itself. Callers feed it packets, memory replies and
//! invalidations, and execute the [`Action`]s it emits. That makes the exact
//! protocol logic unit-testable in isolation, and reusable both under the
//! full discrete-event cluster in `sabre-rack` and under the randomized
//! schedules of the property-test suite.
//!
//! # Example
//!
//! ```
//! use sabre_core::{LightSabres, LightSabresConfig, SabreId, Action};
//! use sabre_mem::Addr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut eng = LightSabres::new(LightSabresConfig::default());
//! let id = SabreId { src_node: 0, src_pipe: 0, transfer: 1 };
//! // Register a 2-block (128 B) SABRe at address 0, version at offset 0.
//! let slot = eng.register(id, Addr::new(0), 128, 0)?;
//! eng.on_data_request(id)?;  // soNUMA data-request packets arrive...
//! eng.on_data_request(id)?;
//! // The engine now wants to issue both block reads (speculatively).
//! let first = eng.next_issue().expect("head block issuable");
//! assert_eq!(first.block_index, 0);
//! assert!(eng.next_issue().is_some());
//! # Ok(())
//! # }
//! ```

pub mod att;
pub mod config;
pub mod engine;
pub mod ids;
pub mod stream_buffer;

pub use att::{AttEntry, SabreState};
pub use config::{CcMode, LightSabresConfig, SpecMode};
pub use engine::{
    Action, BlockIssue, EngineStats, IssueKind, LightSabres, RegisterError, SabreError,
};
pub use ids::{SabreId, SlotId};
pub use stream_buffer::StreamBuffer;
