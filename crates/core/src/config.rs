//! Engine configuration and sizing.
//!
//! §4.1/§5.1: stream-buffer provisioning is *orthogonal to SABRe length* —
//! it depends only on the memory hierarchy and the controller's target peak
//! bandwidth. The number of stream buffers bounds inter-SABRe concurrency;
//! their depth bounds how many loads a single SABRe can have outstanding
//! during its window of vulnerability, and is sized by Little's law so that
//! the window never throttles issue at peak bandwidth.

use sabre_mem::BLOCK_BYTES;
use sabre_sim::Time;

/// Concurrency-control flavor the engine enforces at the destination
/// (Table 1, right column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CcMode {
    /// Optimistic: read the header version, snoop during the window,
    /// re-validate the header if the base block was invalidated. The mode
    /// the paper evaluates.
    #[default]
    Occ,
    /// Pessimistic: acquire a shared reader lock on the object at the
    /// destination before the read commits, release it after. Cancels both
    /// drawbacks of *remote* (source-side) locking: no extra roundtrip, no
    /// cross-node failure coupling.
    Locking,
}

/// Whether the engine overlaps the version/lock access with data reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpecMode {
    /// Full overlap guarded by address-range snooping (LightSABRes proper).
    #[default]
    Speculative,
    /// The strawman of §3.2: serialize read-version-then-data, exposing a
    /// full memory access latency before any data load. Evaluated in
    /// Fig. 7a as "LightSABRes - no speculation".
    ReadVersionFirst,
}

/// Static configuration of one LightSABRes engine instance.
#[derive(Debug, Clone, PartialEq)]
pub struct LightSabresConfig {
    /// Number of ATT entries / stream buffers, i.e. max concurrent SABRes
    /// per R2P2 (paper: 16).
    pub stream_buffers: usize,
    /// Stream-buffer depth in blocks — max outstanding loads per SABRe
    /// during the window of vulnerability (paper: 32).
    pub depth: u32,
    /// Concurrency-control mode.
    pub cc_mode: CcMode,
    /// Speculation mode.
    pub spec_mode: SpecMode,
}

impl Default for LightSabresConfig {
    fn default() -> Self {
        LightSabresConfig {
            stream_buffers: 16,
            depth: 32,
            cc_mode: CcMode::default(),
            spec_mode: SpecMode::default(),
        }
    }
}

impl LightSabresConfig {
    /// Stream-buffer depth required to sustain `gbps` of issue bandwidth
    /// across `mem_latency` of memory latency (Little's law), rounded up to
    /// the next power of two as hardware would.
    ///
    /// The paper's example: 20 GBps × 90 ns = 1800 B ≈ 28.1 blocks → 32.
    ///
    /// # Example
    ///
    /// ```
    /// use sabre_core::LightSabresConfig;
    /// use sabre_sim::Time;
    ///
    /// assert_eq!(LightSabresConfig::required_depth(20.0, Time::from_ns(90)), 32);
    /// ```
    pub fn required_depth(gbps: f64, mem_latency: Time) -> u32 {
        assert!(gbps > 0.0, "bandwidth must be positive");
        let bytes_in_flight = gbps * mem_latency.as_ns();
        let blocks = (bytes_in_flight / BLOCK_BYTES as f64).ceil() as u32;
        blocks.max(1).next_power_of_two()
    }

    /// SRAM cost of one ATT entry in bytes (§5.1: 24 B — id, base, length,
    /// counters, version field, state bits).
    pub const ATT_ENTRY_BYTES: usize = 24;

    /// SRAM cost of one stream buffer: the received-bitvector plus the base
    /// tag, length and control state (§5.1 quotes 11 B at depth 32, i.e.
    /// 4 B of bitvector + 7 B of tag/length).
    pub fn stream_buffer_bytes(&self) -> usize {
        (self.depth as usize).div_ceil(8) + 7
    }

    /// Total SRAM the engine adds to an R2P2.
    ///
    /// With the default configuration this reproduces the paper's 560 B
    /// figure (16 × (24 + 11)).
    pub fn total_sram_bytes(&self) -> usize {
        self.stream_buffers * (Self::ATT_ENTRY_BYTES + self.stream_buffer_bytes())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.stream_buffers == 0 {
            return Err("at least one stream buffer is required".into());
        }
        if self.stream_buffers > 256 {
            return Err("SlotId is 8-bit: at most 256 stream buffers".into());
        }
        if self.depth == 0 {
            return Err("stream-buffer depth must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = LightSabresConfig::default();
        assert_eq!(cfg.stream_buffers, 16);
        assert_eq!(cfg.depth, 32);
        assert_eq!(cfg.cc_mode, CcMode::Occ);
        assert_eq!(cfg.spec_mode, SpecMode::Speculative);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn sram_budget_matches_paper() {
        // §5.1: "560 bytes of SRAM storage" per R2P2.
        let cfg = LightSabresConfig::default();
        assert_eq!(cfg.stream_buffer_bytes(), 11);
        assert_eq!(cfg.total_sram_bytes(), 560);
    }

    #[test]
    fn little_law_sizing() {
        assert_eq!(
            LightSabresConfig::required_depth(20.0, Time::from_ns(90)),
            32
        );
        // Slower controller or faster memory needs less.
        assert_eq!(LightSabresConfig::required_depth(5.0, Time::from_ns(90)), 8);
        assert_eq!(LightSabresConfig::required_depth(0.1, Time::from_ns(10)), 1);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = LightSabresConfig {
            stream_buffers: 0,
            ..LightSabresConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.stream_buffers = 300;
        assert!(cfg.validate().is_err());
        cfg.stream_buffers = 16;
        cfg.depth = 0;
        assert!(cfg.validate().is_err());
    }
}
