//! The Active Transfers Table (ATT), §4.2 / Fig. 4.
//!
//! An ATT entry represents a SABRe during its lifetime and drives its
//! progress: how many request packets have arrived (soNUMA folds the
//! source-unrolled stream back into one entry, §5.1), how many loads have
//! been issued and replied, whether the window of vulnerability is still
//! open, the sampled header version, and the abort/revalidate flags.

use sabre_mem::{Addr, BlockAddr};

use crate::ids::SabreId;

/// Lifecycle of an ATT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabreState {
    /// Issuing and receiving data-block reads.
    Active,
    /// All data replies received; a header re-read is in flight because the
    /// base block was invalidated after the version sample (OCC only).
    Validating,
    /// Completion reported; a reader-lock release is still owed to the
    /// memory system (locking mode only). The slot is freed once the
    /// release issues.
    Releasing,
}

/// One Active Transfers Table entry.
///
/// Fields mirror the hardware structure of Fig. 4: tag (id), base address
/// and length, request/issue counters, the speculation bit, and the version
/// field captured when the head block is read.
#[derive(Debug, Clone)]
pub struct AttEntry {
    /// The SABRe this entry tracks.
    pub id: SabreId,
    /// Object base address (block-aligned).
    pub base: Addr,
    /// Length of the transfer in blocks.
    pub size_blocks: u32,
    /// Requested transfer size in bytes (for statistics; the payload is
    /// whole blocks).
    pub size_bytes: u32,
    /// Offset of the 64-bit version/lock word within the first block.
    pub version_offset: u32,
    /// Data-request packets received so far (issue may never exceed this —
    /// the request-reply flow-control invariant).
    pub request_count: u32,
    /// Block loads issued to the memory hierarchy.
    pub issue_count: u32,
    /// Block replies received from the memory hierarchy.
    pub reply_count: u32,
    /// The speculation bit: set while the window of vulnerability is open.
    pub speculating: bool,
    /// Version sampled from the head block (OCC), used by revalidation.
    pub version: Option<u64>,
    /// Set when the base block is invalidated after the version sample; the
    /// header must be re-read before success can be reported.
    pub revalidate: bool,
    /// Conflict detected: the SABRe will complete with `atomic = false`.
    /// Data movement continues so that every request still gets its reply.
    pub aborted: bool,
    /// Locking mode: the shared reader lock acquire has been issued.
    pub lock_issued: bool,
    /// Locking mode: the shared reader lock is currently held.
    pub lock_held: bool,
    /// A `Validate` header re-read has been issued (at most one).
    pub validate_issued: bool,
    /// Lifecycle state.
    pub state: SabreState,
}

impl AttEntry {
    /// Creates a fresh entry for a newly registered SABRe.
    pub fn new(id: SabreId, base: Addr, size_bytes: u32, version_offset: u32) -> Self {
        let size_blocks = sabre_mem::BlockRange::covering(base, size_bytes as u64).block_count();
        AttEntry {
            id,
            base,
            size_blocks: size_blocks as u32,
            size_bytes,
            version_offset,
            request_count: 0,
            issue_count: 0,
            reply_count: 0,
            speculating: true,
            version: None,
            revalidate: false,
            aborted: false,
            lock_issued: false,
            lock_held: false,
            validate_issued: false,
            state: SabreState::Active,
        }
    }

    /// The base block of the transfer.
    pub fn base_block(&self) -> BlockAddr {
        self.base.block()
    }

    /// Block address of the `i`-th block of the transfer.
    pub fn block(&self, i: u32) -> BlockAddr {
        self.base_block().offset(i as u64)
    }

    /// Address of the version/lock word.
    pub fn version_addr(&self) -> Addr {
        self.base + self.version_offset as u64
    }

    /// Whether every data reply has been received.
    pub fn data_complete(&self) -> bool {
        self.reply_count == self.size_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(size_bytes: u32) -> AttEntry {
        AttEntry::new(
            SabreId {
                src_node: 0,
                src_pipe: 0,
                transfer: 9,
            },
            Addr::new(1024),
            size_bytes,
            0,
        )
    }

    #[test]
    fn block_count_from_bytes() {
        assert_eq!(entry(64).size_blocks, 1);
        assert_eq!(entry(65).size_blocks, 2);
        assert_eq!(entry(8192).size_blocks, 128);
    }

    #[test]
    fn addresses() {
        let e = entry(128);
        assert_eq!(e.base_block(), BlockAddr::from_index(16));
        assert_eq!(e.block(1), BlockAddr::from_index(17));
        assert_eq!(e.version_addr(), Addr::new(1024));
    }

    #[test]
    fn fresh_entry_state() {
        let e = entry(128);
        assert!(e.speculating);
        assert!(!e.aborted);
        assert!(!e.revalidate);
        assert_eq!(e.state, SabreState::Active);
        assert!(!e.data_complete());
    }
}
