//! The LightSABRes engine: a sans-IO state machine implementing §4 of the
//! paper, plus the destination-locking variant of §3.2/Table 1 and the
//! non-speculative ablation of §7.1.
//!
//! # Protocol summary
//!
//! For each SABRe (OCC, speculative — the configuration the paper
//! evaluates):
//!
//! 1. A registration allocates an ATT entry and arms its stream buffer.
//! 2. Data-block loads issue in order with full MLP. While the **window of
//!    vulnerability** is open (head reply not yet received) issue is capped
//!    by the stream-buffer depth and stalls at superpage boundaries.
//! 3. The head reply samples the object's version: odd (writer in
//!    progress) aborts immediately; even closes the window.
//! 4. Coherence invalidations probe every stream buffer via subtractor:
//!    * data block already read, window open → **abort** (racing writer);
//!    * data block, window closed → ignore (must be an LLC eviction: any
//!      real writer would have bumped the version word first, which hits
//!      the base block);
//!    * base block after the version sample → set **revalidate**;
//! 5. When all replies are in: aborted → fail; `revalidate` → re-read the
//!    header and compare versions; otherwise → success.
//!
//! Aborted SABRes keep moving data: soNUMA's request-reply flow control
//! requires exactly one reply per request, and the hardware never retries
//! (§5.1) — failure is reported in the final validation message and the
//! decision to retry is software's.

use std::collections::HashMap;

use sabre_mem::{Addr, BlockAddr};

use crate::att::{AttEntry, SabreState};
use crate::config::{CcMode, LightSabresConfig, SpecMode};
use crate::ids::{SabreId, SlotId};
use crate::stream_buffer::{Probe, StreamBuffer};

/// Why a SABRe aborted (statistics / tests only; the wire protocol reports
/// just success or failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// An invalidation hit an already-read data block inside the window.
    WindowConflict,
    /// The sampled version was odd: a writer held the object.
    VersionLocked,
    /// Header re-read found a different version than the sample.
    ValidateMismatch,
    /// The shared reader lock could not be acquired (locking mode).
    LockFailed,
}

/// A memory operation the engine wants issued, returned by
/// [`LightSabres::next_issue`]. The caller owns actually performing it and
/// feeding the result back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockIssue {
    /// ATT slot this issue belongs to.
    pub slot: SlotId,
    /// Which of the SABRe's blocks (data reads) or 0 (header ops).
    pub block_index: u32,
    /// The block to access.
    pub block: BlockAddr,
    /// What kind of access.
    pub kind: IssueKind,
}

/// The kind of memory operation in a [`BlockIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// Read one payload block; reply via [`LightSabres::on_block_reply`].
    Data,
    /// Atomically try-acquire the shared reader lock at the version/lock
    /// word; reply via [`LightSabres::on_lock_reply`].
    LockAcquire,
    /// Release the shared reader lock (fire-and-forget).
    LockRelease,
    /// Re-read the header word; reply via [`LightSabres::on_validate_reply`].
    Validate,
}

/// Externally visible engine outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The SABRe finished; the R2P2 must send the final validation packet
    /// carrying `atomic`. Emitted exactly once per registered SABRe.
    Complete {
        /// Slot that completed (already released unless a lock release is
        /// still owed).
        slot: SlotId,
        /// The SABRe's identity.
        id: SabreId,
        /// Whether the read was atomic.
        atomic: bool,
    },
}

/// Errors from [`LightSabres::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterError {
    /// All ATT entries are busy; the caller must back-pressure.
    Full,
    /// A SABRe with the same id is already registered.
    DuplicateId,
    /// The base address is not block-aligned.
    UnalignedBase,
    /// Size must be positive.
    EmptySabre,
    /// The version word must lie inside the first block.
    VersionOutsideHeadBlock,
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            RegisterError::Full => "all ATT entries are busy",
            RegisterError::DuplicateId => "SABRe id already registered",
            RegisterError::UnalignedBase => "SABRe base address is not block-aligned",
            RegisterError::EmptySabre => "SABRe size must be positive",
            RegisterError::VersionOutsideHeadBlock => {
                "version word must lie inside the first block"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for RegisterError {}

/// Errors from feeding the engine an event for an unknown SABRe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabreError {
    /// No active SABRe with that id.
    UnknownId,
    /// More data-request packets arrived than the SABRe has blocks.
    TooManyRequests,
}

impl std::fmt::Display for SabreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            SabreError::UnknownId => "no active SABRe with that id",
            SabreError::TooManyRequests => "more request packets than SABRe blocks",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SabreError {}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// SABRes registered.
    pub registered: u64,
    /// SABRes completed atomically.
    pub completed_ok: u64,
    /// SABRes completed with an atomicity failure.
    pub completed_failed: u64,
    /// Aborts by an in-window invalidation on a read block.
    pub aborts_window_conflict: u64,
    /// Aborts by sampling an odd (locked) version.
    pub aborts_version_locked: u64,
    /// Aborts by header re-validation mismatch.
    pub aborts_validate_mismatch: u64,
    /// Aborts by failed reader-lock acquisition (locking mode).
    pub aborts_lock_failed: u64,
    /// Base-block invalidations that triggered a revalidation re-read.
    pub revalidations: u64,
    /// Invalidations ignored because the window had closed (eviction false
    /// alarms, §4.2).
    pub invals_ignored_after_window: u64,
    /// Issue attempts declined because the stream buffer was full
    /// (window-open depth stalls).
    pub depth_stalls: u64,
    /// Issue attempts declined at a superpage boundary inside the window.
    pub page_stalls: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters into this one (aggregation
    /// across pipelines).
    pub fn merge(&mut self, other: &EngineStats) {
        self.registered += other.registered;
        self.completed_ok += other.completed_ok;
        self.completed_failed += other.completed_failed;
        self.aborts_window_conflict += other.aborts_window_conflict;
        self.aborts_version_locked += other.aborts_version_locked;
        self.aborts_validate_mismatch += other.aborts_validate_mismatch;
        self.aborts_lock_failed += other.aborts_lock_failed;
        self.revalidations += other.revalidations;
        self.invals_ignored_after_window += other.invals_ignored_after_window;
        self.depth_stalls += other.depth_stalls;
        self.page_stalls += other.page_stalls;
    }
}

/// The LightSABRes engine state: the ATT, one stream buffer per entry, and
/// a round-robin transfer selector. See the [crate docs](crate) for the
/// protocol walk-through and an example.
#[derive(Debug)]
pub struct LightSabres {
    cfg: LightSabresConfig,
    entries: Vec<Option<AttEntry>>,
    buffers: Vec<StreamBuffer>,
    by_id: HashMap<SabreId, SlotId>,
    /// Round-robin cursor of the "select transfer" stage.
    cursor: usize,
    stats: EngineStats,
}

impl LightSabres {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`LightSabresConfig::validate`]).
    pub fn new(cfg: LightSabresConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid LightSabres configuration: {e}");
        }
        LightSabres {
            entries: (0..cfg.stream_buffers).map(|_| None).collect(),
            buffers: (0..cfg.stream_buffers)
                .map(|_| StreamBuffer::new(cfg.depth))
                .collect(),
            by_id: HashMap::new(),
            cursor: 0,
            cfg,
            stats: EngineStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LightSabresConfig {
        &self.cfg
    }

    /// Statistics counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Zeroes the statistics counters. In-flight SABRes are untouched —
    /// this only restarts *measurement*, e.g. at the end of a warmup
    /// window.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of currently occupied ATT entries.
    pub fn active_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether every ATT entry is busy (new registrations would fail).
    pub fn is_full(&self) -> bool {
        self.entries.iter().all(|e| e.is_some())
    }

    /// Read-only view of a slot's ATT entry (tests and tracing).
    pub fn entry(&self, slot: SlotId) -> Option<&AttEntry> {
        self.entries[slot.0 as usize].as_ref()
    }

    /// Registers a new SABRe (the registration packet of §5.2).
    ///
    /// # Errors
    ///
    /// See [`RegisterError`]; on [`RegisterError::Full`] the caller should
    /// queue and retry after a completion.
    pub fn register(
        &mut self,
        id: SabreId,
        base: Addr,
        size_bytes: u32,
        version_offset: u32,
    ) -> Result<SlotId, RegisterError> {
        if size_bytes == 0 {
            return Err(RegisterError::EmptySabre);
        }
        if !base.is_block_aligned() {
            return Err(RegisterError::UnalignedBase);
        }
        if version_offset as usize + 8 > sabre_mem::BLOCK_BYTES {
            return Err(RegisterError::VersionOutsideHeadBlock);
        }
        if self.by_id.contains_key(&id) {
            return Err(RegisterError::DuplicateId);
        }
        let free = self
            .entries
            .iter()
            .position(|e| e.is_none())
            .ok_or(RegisterError::Full)?;
        let entry = AttEntry::new(id, base, size_bytes, version_offset);
        self.buffers[free].arm(entry.base_block(), entry.size_blocks);
        self.entries[free] = Some(entry);
        let slot = SlotId(free as u8);
        self.by_id.insert(id, slot);
        self.stats.registered += 1;
        Ok(slot)
    }

    /// Records the arrival of one data-request packet for `id` (soNUMA
    /// source unrolling, §5.1). Issue never runs ahead of these.
    ///
    /// # Errors
    ///
    /// [`SabreError::UnknownId`] if the SABRe is not active,
    /// [`SabreError::TooManyRequests`] if more packets arrive than blocks.
    pub fn on_data_request(&mut self, id: SabreId) -> Result<(), SabreError> {
        let slot = *self.by_id.get(&id).ok_or(SabreError::UnknownId)?;
        let entry = self.entries[slot.0 as usize]
            .as_mut()
            .expect("by_id points at occupied slot");
        if entry.request_count >= entry.size_blocks {
            return Err(SabreError::TooManyRequests);
        }
        entry.request_count += 1;
        Ok(())
    }

    /// Pulls the next memory operation to issue, if any, in round-robin
    /// order over active SABRes (the "select transfer" + "unroll" stages of
    /// Fig. 4). The caller performs the access and feeds the reply back via
    /// the matching `on_*` method.
    pub fn next_issue(&mut self) -> Option<BlockIssue> {
        let n = self.entries.len();
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            if let Some(issue) = self.try_issue_slot(idx) {
                // Advance past the serviced slot for fairness.
                self.cursor = (idx + 1) % n;
                return Some(issue);
            }
        }
        None
    }

    fn try_issue_slot(&mut self, idx: usize) -> Option<BlockIssue> {
        let entry = self.entries[idx].as_mut()?;
        let slot = SlotId(idx as u8);

        // A pending reader-lock release has priority; it also frees the slot.
        if entry.state == SabreState::Releasing {
            let issue = BlockIssue {
                slot,
                block_index: 0,
                block: entry.version_addr().block(),
                kind: IssueKind::LockRelease,
            };
            self.free_slot(idx);
            return Some(issue);
        }

        // Locking mode: the reader-lock acquire is the head access.
        if self.cfg.cc_mode == CcMode::Locking && !entry.lock_issued && !entry.aborted {
            entry.lock_issued = true;
            return Some(BlockIssue {
                slot,
                block_index: 0,
                block: entry.version_addr().block(),
                kind: IssueKind::LockAcquire,
            });
        }

        // OCC revalidation: header re-read once data is complete.
        if entry.state == SabreState::Validating && !entry.validate_issued {
            entry.validate_issued = true;
            return Some(BlockIssue {
                slot,
                block_index: 0,
                block: entry.version_addr().block(),
                kind: IssueKind::Validate,
            });
        }

        // Data issue, subject to the §4.1/§5.1 gates.
        if entry.state != SabreState::Active {
            return None;
        }
        let i = entry.issue_count;
        if i >= entry.size_blocks || i >= entry.request_count {
            return None; // done issuing, or flow control
        }
        if entry.speculating && !entry.aborted {
            match self.cfg.spec_mode {
                SpecMode::Speculative => {
                    if self.cfg.cc_mode == CcMode::Occ && i > 0 && i >= self.cfg.depth {
                        self.stats.depth_stalls += 1;
                        return None; // stream buffer cannot hold the load
                    }
                    if self.cfg.cc_mode == CcMode::Locking && i >= self.cfg.depth {
                        self.stats.depth_stalls += 1;
                        return None;
                    }
                    if i > 0 && entry.block(i).page() != entry.base_block().page() {
                        self.stats.page_stalls += 1;
                        return None; // §4.1: stall at page boundary in window
                    }
                }
                SpecMode::ReadVersionFirst => {
                    // Strict serialization: in OCC only the head block may
                    // issue before the version is sampled; in locking mode
                    // no data at all before the lock is held.
                    let gate_open = match self.cfg.cc_mode {
                        CcMode::Occ => i == 0,
                        CcMode::Locking => false,
                    };
                    if !gate_open {
                        return None;
                    }
                }
            }
        }
        entry.issue_count += 1;
        Some(BlockIssue {
            slot,
            block_index: i,
            block: entry.block(i),
            kind: IssueKind::Data,
        })
    }

    /// Feeds back the reply for a data-block read. `data` is the block's
    /// contents at service time; the engine samples the version word from
    /// the head block. Returns completion actions, if any.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not active or the reply does not match an
    /// issued block (both would be simulator wiring bugs, not protocol
    /// conditions).
    pub fn on_block_reply(
        &mut self,
        slot: SlotId,
        block_index: u32,
        data: &[u8; sabre_mem::BLOCK_BYTES],
    ) -> Vec<Action> {
        let idx = slot.0 as usize;
        let entry = self.entries[idx]
            .as_mut()
            .unwrap_or_else(|| panic!("block reply for idle {slot}"));
        assert!(
            block_index < entry.issue_count,
            "reply for unissued block {block_index} of {}",
            entry.id
        );
        entry.reply_count += 1;
        assert!(
            entry.reply_count <= entry.size_blocks,
            "more replies than blocks for {}",
            entry.id
        );
        self.buffers[idx].mark_received(block_index);

        // Head reply: sample the version (OCC) and close the window.
        if block_index == 0 && self.cfg.cc_mode == CcMode::Occ && entry.version.is_none() {
            let off = entry.version_offset as usize;
            let word = u64::from_le_bytes(data[off..off + 8].try_into().expect("8-byte word"));
            entry.version = Some(word);
            entry.speculating = false;
            if word % 2 == 1 && !entry.aborted {
                entry.aborted = true;
                self.stats.aborts_version_locked += 1;
            }
        }

        self.maybe_complete(idx)
    }

    /// Feeds back the result of a reader-lock acquire (locking mode).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not active.
    pub fn on_lock_reply(&mut self, slot: SlotId, acquired: bool) -> Vec<Action> {
        let idx = slot.0 as usize;
        let entry = self.entries[idx]
            .as_mut()
            .unwrap_or_else(|| panic!("lock reply for idle {slot}"));
        assert!(
            entry.lock_issued,
            "lock reply without acquire for {}",
            entry.id
        );
        entry.speculating = false;
        if acquired {
            entry.lock_held = true;
            if entry.aborted {
                // Aborted while the acquire was in flight; undo it once the
                // transfer drains.
            }
        } else if !entry.aborted {
            entry.aborted = true;
            self.stats.aborts_lock_failed += 1;
        }
        self.maybe_complete(idx)
    }

    /// Feeds back the header re-read of the OCC revalidation stage.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the validating state.
    pub fn on_validate_reply(
        &mut self,
        slot: SlotId,
        data: &[u8; sabre_mem::BLOCK_BYTES],
    ) -> Vec<Action> {
        let idx = slot.0 as usize;
        let entry = self.entries[idx]
            .as_mut()
            .unwrap_or_else(|| panic!("validate reply for idle {slot}"));
        assert_eq!(
            entry.state,
            SabreState::Validating,
            "validate reply for {} in wrong state",
            entry.id
        );
        let off = entry.version_offset as usize;
        let word = u64::from_le_bytes(data[off..off + 8].try_into().expect("8-byte word"));
        let atomic = entry.version == Some(word);
        if !atomic {
            self.stats.aborts_validate_mismatch += 1;
        }
        vec![self.finish(idx, atomic)]
    }

    /// Delivers a coherence invalidation to the engine; every armed stream
    /// buffer is probed by subtractor (§4.2).
    ///
    /// Invalidations never complete a SABRe by themselves (completion is
    /// always driven by a reply), so this returns no actions; it only flips
    /// abort/revalidate state.
    pub fn on_invalidation(&mut self, block: BlockAddr) {
        for idx in 0..self.entries.len() {
            let Some(entry) = self.entries[idx].as_mut() else {
                continue;
            };
            if entry.state == SabreState::Releasing {
                continue; // already completed; only the lock release is owed
            }
            match self.buffers[idx].probe(block) {
                Probe::Miss => {}
                Probe::Base => {
                    match self.cfg.cc_mode {
                        CcMode::Occ => {
                            if entry.version.is_some() && !entry.aborted {
                                // The one ambiguous event: writer conflict or
                                // eviction. Never abort here — re-read the
                                // header when data completes (§4.2).
                                if !entry.revalidate {
                                    entry.revalidate = true;
                                    self.stats.revalidations += 1;
                                }
                                // If data had already completed and success
                                // was not yet reported we would be in
                                // Validating state already; reaching here
                                // with Active state means the re-read is
                                // still ahead of us.
                            }
                            // Window still open (version not sampled): the
                            // pending head read is ordered after this write
                            // and will observe its effect; nothing to do.
                        }
                        CcMode::Locking => {
                            // Before the lock is held the head block is
                            // ordinary speculative data; a hit on read data
                            // inside the window is a conflict.
                            if entry.speculating && self.buffers[idx].received(0) && !entry.aborted
                            {
                                entry.aborted = true;
                                self.stats.aborts_window_conflict += 1;
                            } else if !entry.speculating {
                                self.stats.invals_ignored_after_window += 1;
                            }
                        }
                    }
                }
                Probe::Data { received, .. } => {
                    if entry.speculating && received && !entry.aborted {
                        // §4.1: a write raced our already-consumed data while
                        // the version/lock outcome was still unknown.
                        entry.aborted = true;
                        self.stats.aborts_window_conflict += 1;
                    } else if !entry.speculating {
                        self.stats.invals_ignored_after_window += 1;
                    }
                }
            }
        }
    }

    /// Completion check after any reply; emits [`Action::Complete`] and
    /// either frees the slot or parks it for validation / lock release.
    fn maybe_complete(&mut self, idx: usize) -> Vec<Action> {
        let entry = self.entries[idx].as_mut().expect("occupied");
        if entry.state != SabreState::Active || !entry.data_complete() {
            return Vec::new();
        }
        // Locking mode must not report success until the lock outcome is
        // known (the acquire can outlast the data on a congested system).
        if self.cfg.cc_mode == CcMode::Locking
            && entry.lock_issued
            && !entry.lock_held
            && !entry.aborted
        {
            return Vec::new();
        }
        if entry.aborted {
            return vec![self.finish(idx, false)];
        }
        match self.cfg.cc_mode {
            CcMode::Occ => {
                if entry.revalidate {
                    entry.state = SabreState::Validating;
                    Vec::new()
                } else {
                    vec![self.finish(idx, true)]
                }
            }
            CcMode::Locking => vec![self.finish(idx, true)],
        }
    }

    /// Terminates slot `idx`, emitting its completion. The slot is freed
    /// immediately unless a reader-lock release is still owed.
    fn finish(&mut self, idx: usize, atomic: bool) -> Action {
        let entry = self.entries[idx].as_mut().expect("occupied");
        let id = entry.id;
        if atomic {
            self.stats.completed_ok += 1;
        } else {
            self.stats.completed_failed += 1;
        }
        let action = Action::Complete {
            slot: SlotId(idx as u8),
            id,
            atomic,
        };
        if entry.lock_held {
            entry.state = SabreState::Releasing;
            // `by_id` entry drops now: the SABRe is over on the wire.
            self.by_id.remove(&id);
            self.buffers[idx].release();
        } else {
            self.free_slot(idx);
        }
        action
    }

    fn free_slot(&mut self, idx: usize) {
        if let Some(entry) = self.entries[idx].take() {
            self.by_id.remove(&entry.id);
        }
        self.buffers[idx].release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_mem::BLOCK_BYTES;

    fn id(n: u32) -> SabreId {
        SabreId {
            src_node: 1,
            src_pipe: 0,
            transfer: n,
        }
    }

    fn block_with_version(v: u64) -> [u8; BLOCK_BYTES] {
        let mut b = [0u8; BLOCK_BYTES];
        b[..8].copy_from_slice(&v.to_le_bytes());
        b
    }

    /// Registers a SABRe and feeds all its data-request packets.
    fn register_full(eng: &mut LightSabres, n: u32, size: u32) -> SlotId {
        let slot = eng.register(id(n), Addr::new(0), size, 0).unwrap();
        let blocks = eng.entry(slot).unwrap().size_blocks;
        for _ in 0..blocks {
            eng.on_data_request(id(n)).unwrap();
        }
        slot
    }

    #[test]
    fn happy_path_two_blocks() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 128);
        // Both blocks issue speculatively.
        let i0 = eng.next_issue().unwrap();
        let i1 = eng.next_issue().unwrap();
        assert_eq!((i0.block_index, i1.block_index), (0, 1));
        assert_eq!(i0.kind, IssueKind::Data);
        assert!(eng.next_issue().is_none());
        // Replies arrive; head carries an even (unlocked) version.
        assert!(eng
            .on_block_reply(slot, 0, &block_with_version(4))
            .is_empty());
        let done = eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        assert_eq!(
            done,
            vec![Action::Complete {
                slot,
                id: id(1),
                atomic: true
            }]
        );
        assert_eq!(eng.stats().completed_ok, 1);
        assert_eq!(eng.active_count(), 0);
    }

    #[test]
    fn odd_version_aborts() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 128);
        eng.next_issue().unwrap();
        eng.next_issue().unwrap();
        eng.on_block_reply(slot, 0, &block_with_version(5));
        let done = eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        assert_eq!(
            done,
            vec![Action::Complete {
                slot,
                id: id(1),
                atomic: false
            }]
        );
        assert_eq!(eng.stats().aborts_version_locked, 1);
    }

    #[test]
    fn window_conflict_aborts() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 192); // 3 blocks
        for _ in 0..3 {
            eng.next_issue().unwrap();
        }
        // Block 2's reply arrives first (reordered memory system)...
        eng.on_block_reply(slot, 2, &[0u8; BLOCK_BYTES]);
        // ...then a writer invalidates it while the head is outstanding.
        eng.on_invalidation(BlockAddr::from_index(2));
        assert!(eng.entry(slot).unwrap().aborted);
        eng.on_block_reply(slot, 0, &block_with_version(2));
        let done = eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        assert_eq!(
            done,
            vec![Action::Complete {
                slot,
                id: id(1),
                atomic: false
            }]
        );
        assert_eq!(eng.stats().aborts_window_conflict, 1);
    }

    #[test]
    fn inval_on_unread_block_is_harmless() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 192);
        for _ in 0..3 {
            eng.next_issue().unwrap();
        }
        // Invalidate a block whose reply has not arrived: the eventual read
        // is ordered after the write, so it is not a conflict.
        eng.on_invalidation(BlockAddr::from_index(2));
        assert!(!eng.entry(slot).unwrap().aborted);
    }

    #[test]
    fn inval_after_window_is_ignored() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 192);
        for _ in 0..3 {
            eng.next_issue().unwrap();
        }
        eng.on_block_reply(slot, 0, &block_with_version(2)); // window closes
        eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        // Eviction-style invalidation on an already-read data block.
        eng.on_invalidation(BlockAddr::from_index(1));
        assert!(!eng.entry(slot).unwrap().aborted);
        assert_eq!(eng.stats().invals_ignored_after_window, 1);
        let done = eng.on_block_reply(slot, 2, &[0u8; BLOCK_BYTES]);
        assert!(matches!(done[0], Action::Complete { atomic: true, .. }));
    }

    #[test]
    fn base_inval_triggers_revalidation_success() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 128);
        eng.next_issue().unwrap();
        eng.next_issue().unwrap();
        eng.on_block_reply(slot, 0, &block_with_version(6));
        // Base block evicted (or writer — ambiguous): revalidate, not abort.
        eng.on_invalidation(BlockAddr::from_index(0));
        assert!(eng.entry(slot).unwrap().revalidate);
        assert!(eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]).is_empty());
        // The engine now wants the header re-read.
        let v = eng.next_issue().unwrap();
        assert_eq!(v.kind, IssueKind::Validate);
        let done = eng.on_validate_reply(slot, &block_with_version(6));
        assert!(matches!(done[0], Action::Complete { atomic: true, .. }));
        assert_eq!(eng.stats().revalidations, 1);
        assert_eq!(eng.stats().completed_ok, 1);
    }

    #[test]
    fn base_inval_revalidation_mismatch_fails() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 128);
        eng.next_issue().unwrap();
        eng.next_issue().unwrap();
        eng.on_block_reply(slot, 0, &block_with_version(6));
        eng.on_invalidation(BlockAddr::from_index(0));
        eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        let v = eng.next_issue().unwrap();
        assert_eq!(v.kind, IssueKind::Validate);
        // A writer got in: version moved to 8.
        let done = eng.on_validate_reply(slot, &block_with_version(8));
        assert!(matches!(done[0], Action::Complete { atomic: false, .. }));
        assert_eq!(eng.stats().aborts_validate_mismatch, 1);
    }

    #[test]
    fn base_inval_before_version_sample_is_ignored() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 128);
        eng.next_issue().unwrap();
        eng.next_issue().unwrap();
        // Writer touches the header before our head read was serviced: the
        // head read is ordered after it and will see the new version.
        eng.on_invalidation(BlockAddr::from_index(0));
        assert!(!eng.entry(slot).unwrap().revalidate);
        eng.on_block_reply(slot, 0, &block_with_version(2));
        let done = eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        assert!(matches!(done[0], Action::Complete { atomic: true, .. }));
    }

    #[test]
    fn flow_control_gates_issue() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let sid = id(1);
        eng.register(sid, Addr::new(0), 256, 0).unwrap(); // 4 blocks
        assert!(eng.next_issue().is_none(), "no requests yet");
        eng.on_data_request(sid).unwrap();
        eng.on_data_request(sid).unwrap();
        assert!(eng.next_issue().is_some());
        assert!(eng.next_issue().is_some());
        assert!(eng.next_issue().is_none(), "issue must not pass requests");
        eng.on_data_request(sid).unwrap();
        assert!(eng.next_issue().is_some());
    }

    #[test]
    fn depth_limits_window_issue() {
        let cfg = LightSabresConfig {
            depth: 4,
            ..LightSabresConfig::default()
        };
        let mut eng = LightSabres::new(cfg);
        let slot = register_full(&mut eng, 1, 64 * 16); // 16 blocks
        for _ in 0..4 {
            assert!(eng.next_issue().is_some());
        }
        assert!(eng.next_issue().is_none(), "depth 4 reached inside window");
        assert!(eng.stats().depth_stalls > 0);
        // Head reply closes the window; issue resumes past the depth.
        eng.on_block_reply(slot, 0, &block_with_version(0));
        for i in 4..16 {
            let issue = eng.next_issue().unwrap();
            assert_eq!(issue.block_index, i);
        }
        assert!(eng.next_issue().is_none());
    }

    #[test]
    fn page_boundary_stalls_window() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        // Start one block before a superpage boundary.
        let base = Addr::new(sabre_mem::PAGE_BYTES as u64 - 64);
        let sid = id(1);
        let slot = eng.register(sid, base, 192, 0).unwrap();
        for _ in 0..3 {
            eng.on_data_request(sid).unwrap();
        }
        let head = eng.next_issue().unwrap();
        assert_eq!(head.block_index, 0);
        assert!(eng.next_issue().is_none(), "crossing stalls in window");
        assert!(eng.stats().page_stalls > 0);
        eng.on_block_reply(slot, 0, &block_with_version(0));
        assert!(eng.next_issue().is_some(), "crossing allowed after window");
    }

    #[test]
    fn no_speculation_serializes_head() {
        let cfg = LightSabresConfig {
            spec_mode: SpecMode::ReadVersionFirst,
            ..LightSabresConfig::default()
        };
        let mut eng = LightSabres::new(cfg);
        let slot = register_full(&mut eng, 1, 256);
        let head = eng.next_issue().unwrap();
        assert_eq!(head.block_index, 0);
        assert!(eng.next_issue().is_none(), "strict read-version-then-data");
        eng.on_block_reply(slot, 0, &block_with_version(2));
        for i in 1..4 {
            assert_eq!(eng.next_issue().unwrap().block_index, i);
        }
    }

    #[test]
    fn att_fills_and_frees() {
        let cfg = LightSabresConfig {
            stream_buffers: 2,
            ..LightSabresConfig::default()
        };
        let mut eng = LightSabres::new(cfg);
        let s0 = register_full(&mut eng, 1, 64);
        let _s1 = register_full(&mut eng, 2, 64);
        assert!(eng.is_full());
        assert_eq!(
            eng.register(id(3), Addr::new(0), 64, 0),
            Err(RegisterError::Full)
        );
        // Complete the first: slot frees.
        let i = eng.next_issue().unwrap();
        assert_eq!(i.slot, s0);
        eng.on_block_reply(s0, 0, &block_with_version(0));
        assert!(!eng.is_full());
        assert!(eng.register(id(3), Addr::new(0), 64, 0).is_ok());
    }

    #[test]
    fn register_validation() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        assert_eq!(
            eng.register(id(1), Addr::new(1), 64, 0),
            Err(RegisterError::UnalignedBase)
        );
        assert_eq!(
            eng.register(id(1), Addr::new(0), 0, 0),
            Err(RegisterError::EmptySabre)
        );
        assert_eq!(
            eng.register(id(1), Addr::new(0), 64, 60),
            Err(RegisterError::VersionOutsideHeadBlock)
        );
        eng.register(id(1), Addr::new(0), 64, 0).unwrap();
        assert_eq!(
            eng.register(id(1), Addr::new(64), 64, 0),
            Err(RegisterError::DuplicateId)
        );
    }

    #[test]
    fn request_overflow_rejected() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let sid = id(1);
        eng.register(sid, Addr::new(0), 64, 0).unwrap();
        eng.on_data_request(sid).unwrap();
        assert_eq!(eng.on_data_request(sid), Err(SabreError::TooManyRequests));
        assert_eq!(eng.on_data_request(id(9)), Err(SabreError::UnknownId));
    }

    #[test]
    fn round_robin_interleaves_sabres() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        register_full(&mut eng, 1, 256);
        register_full(&mut eng, 2, 256);
        let seq: Vec<u8> = (0..4).map(|_| eng.next_issue().unwrap().slot.0).collect();
        assert_eq!(seq, vec![0, 1, 0, 1], "select-transfer must round-robin");
    }

    #[test]
    fn aborted_sabre_still_drains_all_replies() {
        // The request-reply flow-control invariant: one reply per request,
        // even after an abort.
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 256);
        for _ in 0..4 {
            eng.next_issue().unwrap();
        }
        eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        eng.on_invalidation(BlockAddr::from_index(1)); // abort
        assert!(eng.entry(slot).unwrap().aborted);
        eng.on_block_reply(slot, 0, &block_with_version(2));
        eng.on_block_reply(slot, 2, &[0u8; BLOCK_BYTES]);
        let done = eng.on_block_reply(slot, 3, &[0u8; BLOCK_BYTES]);
        assert!(matches!(done[0], Action::Complete { atomic: false, .. }));
        // Exactly one completion, after all four replies.
        assert_eq!(eng.stats().completed_failed, 1);
    }

    #[test]
    fn locking_mode_acquires_then_releases() {
        let cfg = LightSabresConfig {
            cc_mode: CcMode::Locking,
            ..LightSabresConfig::default()
        };
        let mut eng = LightSabres::new(cfg);
        let slot = register_full(&mut eng, 1, 128);
        let first = eng.next_issue().unwrap();
        assert_eq!(first.kind, IssueKind::LockAcquire);
        // Data still issues speculatively while the acquire is in flight.
        assert_eq!(eng.next_issue().unwrap().kind, IssueKind::Data);
        assert_eq!(eng.next_issue().unwrap().kind, IssueKind::Data);
        eng.on_lock_reply(slot, true);
        eng.on_block_reply(slot, 0, &block_with_version(2));
        let done = eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        assert!(matches!(done[0], Action::Complete { atomic: true, .. }));
        // The slot still owes the release and is not yet reusable.
        let rel = eng.next_issue().unwrap();
        assert_eq!(rel.kind, IssueKind::LockRelease);
        assert_eq!(eng.active_count(), 0);
    }

    #[test]
    fn locking_mode_failed_acquire_aborts() {
        let cfg = LightSabresConfig {
            cc_mode: CcMode::Locking,
            ..LightSabresConfig::default()
        };
        let mut eng = LightSabres::new(cfg);
        let slot = register_full(&mut eng, 1, 128);
        assert_eq!(eng.next_issue().unwrap().kind, IssueKind::LockAcquire);
        eng.next_issue().unwrap();
        eng.next_issue().unwrap();
        eng.on_lock_reply(slot, false);
        eng.on_block_reply(slot, 0, &block_with_version(3));
        let done = eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        assert!(matches!(done[0], Action::Complete { atomic: false, .. }));
        assert_eq!(eng.stats().aborts_lock_failed, 1);
        // No release owed: the lock was never held.
        assert!(eng.next_issue().is_none());
    }

    #[test]
    fn locking_window_conflict_aborts() {
        let cfg = LightSabresConfig {
            cc_mode: CcMode::Locking,
            ..LightSabresConfig::default()
        };
        let mut eng = LightSabres::new(cfg);
        let slot = register_full(&mut eng, 1, 128);
        eng.next_issue().unwrap(); // acquire
        eng.next_issue().unwrap(); // block 0
        eng.next_issue().unwrap(); // block 1
        eng.on_block_reply(slot, 1, &[0u8; BLOCK_BYTES]);
        // Writer races before the lock resolves.
        eng.on_invalidation(BlockAddr::from_index(1));
        assert!(eng.entry(slot).unwrap().aborted);
        eng.on_lock_reply(slot, true); // acquired late — must be released
        eng.on_block_reply(slot, 0, &block_with_version(2));
        let rel = eng.next_issue().unwrap();
        assert_eq!(rel.kind, IssueKind::LockRelease);
        assert_eq!(eng.stats().completed_failed, 1);
    }

    #[test]
    fn single_block_sabre_is_trivially_atomic() {
        let mut eng = LightSabres::new(LightSabresConfig::default());
        let slot = register_full(&mut eng, 1, 48);
        assert_eq!(eng.entry(slot).unwrap().size_blocks, 1);
        eng.next_issue().unwrap();
        let done = eng.on_block_reply(slot, 0, &block_with_version(0));
        assert!(matches!(done[0], Action::Complete { atomic: true, .. }));
    }
}
