//! Identifiers for in-flight SABRes.

use std::fmt;

/// Globally unique identifier of one SABRe operation.
///
/// §5.1: "a SABRe id uniquely defined by the set of source node id, Request
/// Generation Pipeline id, and transfer id, all of which are carried in each
/// request packet."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SabreId {
    /// Node that issued the SABRe.
    pub src_node: u8,
    /// Request Generation Pipeline (backend) on the source node.
    pub src_pipe: u8,
    /// Per-pipeline transfer sequence number.
    pub transfer: u32,
}

impl fmt::Display for SabreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sabre:{}.{}.{}",
            self.src_node, self.src_pipe, self.transfer
        )
    }
}

/// Index of an Active Transfers Table entry (and its associated stream
/// buffer) inside one LightSABRes engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u8);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_value_types() {
        let a = SabreId {
            src_node: 1,
            src_pipe: 2,
            transfer: 3,
        };
        let b = a;
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "sabre:1.2.3");
        assert_eq!(SlotId(5).to_string(), "slot:5");
    }
}
