//! The address-range-snooping stream buffer (§4.1, Fig. 3).
//!
//! One stream buffer guards one in-flight SABRe. It records the SABRe's
//! base block and length; each of its `depth` entries stands for one block
//! of the range (entry *i* ↔ block `base + i`), with a single bit meaning
//! "the reply for this block has been received". Entries never store
//! addresses or data — lookup is a subtraction against the base (the
//! "subtractor" of §4.2), and payloads flow straight back to the requester.

use sabre_mem::BlockAddr;

/// What a snooped message matched inside a stream buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The message is for the base (head) block — the one holding the
    /// object's version/lock.
    Base,
    /// The message is for tracked data block `base + index`.
    Data {
        /// Offset from the base block.
        index: u32,
        /// Whether this block's reply had already been received
        /// (bit set) at probe time.
        received: bool,
    },
    /// The address falls outside this buffer's range (or beyond its
    /// tracked depth).
    Miss,
}

/// A single stream buffer.
///
/// # Example
///
/// ```
/// use sabre_core::StreamBuffer;
/// use sabre_mem::BlockAddr;
///
/// let mut sb = StreamBuffer::new(32);
/// sb.arm(BlockAddr::from_index(100), 4);
/// sb.mark_received(1);
/// use sabre_core::stream_buffer::Probe;
/// assert_eq!(sb.probe(BlockAddr::from_index(101)),
///            Probe::Data { index: 1, received: true });
/// assert_eq!(sb.probe(BlockAddr::from_index(100)), Probe::Base);
/// assert_eq!(sb.probe(BlockAddr::from_index(104)), Probe::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct StreamBuffer {
    depth: u32,
    base: Option<BlockAddr>,
    len_blocks: u32,
    /// Received-reply bits, one per entry, `depth` bits total.
    bits: Vec<u64>,
}

impl StreamBuffer {
    /// Creates an idle stream buffer with the given depth (in blocks).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: u32) -> Self {
        assert!(depth > 0, "depth must be positive");
        StreamBuffer {
            depth,
            base: None,
            len_blocks: 0,
            bits: vec![0; (depth as usize).div_ceil(64)],
        }
    }

    /// Arms the buffer for a SABRe spanning `len_blocks` blocks starting at
    /// `base`. Any previous tracking state is cleared.
    ///
    /// # Panics
    ///
    /// Panics if `len_blocks == 0`.
    pub fn arm(&mut self, base: BlockAddr, len_blocks: u32) {
        assert!(len_blocks > 0, "SABRe must span at least one block");
        self.base = Some(base);
        self.len_blocks = len_blocks;
        self.bits.fill(0);
    }

    /// Releases the buffer (SABRe completed or aborted).
    pub fn release(&mut self) {
        self.base = None;
        self.len_blocks = 0;
        self.bits.fill(0);
    }

    /// Whether the buffer is currently tracking a SABRe.
    pub fn is_armed(&self) -> bool {
        self.base.is_some()
    }

    /// The configured depth in blocks.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The armed base block.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is idle.
    pub fn base(&self) -> BlockAddr {
        self.base.expect("stream buffer not armed")
    }

    /// Number of blocks of the armed range that fall within tracking depth.
    pub fn tracked_blocks(&self) -> u32 {
        self.len_blocks.min(self.depth)
    }

    /// Marks entry `index`'s reply as received.
    ///
    /// Indexes at or beyond the depth are accepted and ignored: those blocks
    /// are only ever issued after the window of vulnerability closes, at
    /// which point the buffer no longer tracks them (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is idle or `index` is outside the armed range.
    pub fn mark_received(&mut self, index: u32) {
        assert!(self.is_armed(), "mark_received on idle stream buffer");
        assert!(index < self.len_blocks, "index {index} outside SABRe range");
        if index < self.depth {
            self.bits[(index / 64) as usize] |= 1 << (index % 64);
        }
    }

    /// Whether entry `index`'s reply has been received (always `false` for
    /// indexes beyond tracking depth).
    pub fn received(&self, index: u32) -> bool {
        if index >= self.depth {
            return false;
        }
        self.bits[(index / 64) as usize] & (1 << (index % 64)) != 0
    }

    /// Probes the buffer with a snooped block address — the subtractor path
    /// every reply and invalidation takes (§4.2).
    pub fn probe(&self, block: BlockAddr) -> Probe {
        let Some(base) = self.base else {
            return Probe::Miss;
        };
        match block.distance_from(base) {
            Some(0) => Probe::Base,
            Some(d) if d < self.len_blocks as u64 => {
                let index = d as u32;
                if index < self.depth {
                    Probe::Data {
                        index,
                        received: self.received(index),
                    }
                } else {
                    // Beyond tracking depth: such blocks are only read after
                    // the window closes, so snoops on them are irrelevant.
                    Probe::Miss
                }
            }
            _ => Probe::Miss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn arm_release_cycle() {
        let mut sb = StreamBuffer::new(32);
        assert!(!sb.is_armed());
        sb.arm(blk(10), 5);
        assert!(sb.is_armed());
        assert_eq!(sb.base(), blk(10));
        assert_eq!(sb.tracked_blocks(), 5);
        sb.release();
        assert!(!sb.is_armed());
        assert_eq!(sb.probe(blk(10)), Probe::Miss);
    }

    #[test]
    fn rearming_clears_bits() {
        let mut sb = StreamBuffer::new(8);
        sb.arm(blk(0), 4);
        sb.mark_received(2);
        sb.arm(blk(100), 4);
        assert!(!sb.received(2));
    }

    #[test]
    fn probe_classification() {
        let mut sb = StreamBuffer::new(32);
        sb.arm(blk(100), 10);
        assert_eq!(sb.probe(blk(99)), Probe::Miss);
        assert_eq!(sb.probe(blk(100)), Probe::Base);
        assert_eq!(
            sb.probe(blk(105)),
            Probe::Data {
                index: 5,
                received: false
            }
        );
        sb.mark_received(5);
        assert_eq!(
            sb.probe(blk(105)),
            Probe::Data {
                index: 5,
                received: true
            }
        );
        assert_eq!(sb.probe(blk(110)), Probe::Miss);
    }

    #[test]
    fn beyond_depth_is_untracked() {
        let mut sb = StreamBuffer::new(4);
        sb.arm(blk(0), 100);
        assert_eq!(sb.tracked_blocks(), 4);
        // In range but beyond depth: miss.
        assert_eq!(sb.probe(blk(4)), Probe::Miss);
        assert_eq!(sb.probe(blk(99)), Probe::Miss);
        // Marking beyond depth is an accepted no-op.
        sb.mark_received(50);
        assert!(!sb.received(50));
    }

    #[test]
    fn wide_bitvector_words() {
        let mut sb = StreamBuffer::new(128);
        sb.arm(blk(0), 128);
        sb.mark_received(0);
        sb.mark_received(63);
        sb.mark_received(64);
        sb.mark_received(127);
        for i in [0u32, 63, 64, 127] {
            assert!(sb.received(i), "bit {i}");
        }
        assert!(!sb.received(1));
        assert!(!sb.received(65));
    }

    #[test]
    #[should_panic(expected = "outside SABRe range")]
    fn mark_outside_range_panics() {
        let mut sb = StreamBuffer::new(32);
        sb.arm(blk(0), 3);
        sb.mark_received(3);
    }

    #[test]
    #[should_panic(expected = "idle stream buffer")]
    fn mark_idle_panics() {
        let mut sb = StreamBuffer::new(32);
        sb.mark_received(0);
    }
}
