//! Property tests: the subtractor-indexed stream buffer behaves exactly
//! like an associative-search oracle (§4.2's claim that the cheap lookup
//! loses nothing), and the ATT geometry math is consistent.

use proptest::prelude::*;

use sabre_core::stream_buffer::Probe;
use sabre_core::{AttEntry, SabreId, StreamBuffer};
use sabre_mem::{Addr, BlockAddr};

/// Oracle: a plain list of (address, received) pairs searched linearly.
struct Oracle {
    entries: Vec<(u64, bool)>,
    base: u64,
}

impl Oracle {
    fn probe(&self, block: u64) -> Probe {
        if block == self.base {
            return Probe::Base;
        }
        for (i, &(addr, received)) in self.entries.iter().enumerate() {
            if addr == block {
                return Probe::Data {
                    index: (i + 1) as u32,
                    received,
                };
            }
        }
        Probe::Miss
    }
}

proptest! {
    #[test]
    fn subtractor_lookup_equals_associative_search(
        base in 0u64..1_000_000,
        len in 1u32..200,
        depth in 1u32..64,
        marks in proptest::collection::vec(0u32..200, 0..64),
        probes in proptest::collection::vec(0u64..1_000_100, 1..64),
    ) {
        let mut sb = StreamBuffer::new(depth);
        sb.arm(BlockAddr::from_index(base), len);
        let mut oracle = Oracle {
            base,
            // Entries beyond tracking depth are never tracked by hardware.
            entries: (1..len.min(depth)).map(|i| (base + i as u64, false)).collect(),
        };
        for m in marks {
            if m < len {
                sb.mark_received(m);
                if m > 0 && m < depth {
                    if let Some(e) = oracle.entries.get_mut(m as usize - 1) {
                        e.1 = true;
                    }
                }
            }
        }
        for p in probes {
            prop_assert_eq!(sb.probe(BlockAddr::from_index(p)), oracle.probe(p), "probe {}", p);
        }
    }

    #[test]
    fn att_geometry_is_consistent(
        base_block in 0u64..1_000_000,
        size_bytes in 1u32..100_000,
        version_offset in 0u32..56,
    ) {
        let base = Addr::new(base_block * 64);
        let entry = AttEntry::new(
            SabreId { src_node: 0, src_pipe: 0, transfer: 0 },
            base,
            size_bytes,
            version_offset,
        );
        // Block count covers the bytes exactly.
        prop_assert_eq!(entry.size_blocks, size_bytes.div_ceil(64));
        // The version word lives in the first block.
        prop_assert_eq!(entry.version_addr().block(), entry.base_block());
        // The i-th block is i blocks after the base.
        let last = entry.block(entry.size_blocks - 1);
        prop_assert_eq!(
            last.index() - entry.base_block().index(),
            (entry.size_blocks - 1) as u64
        );
    }
}
