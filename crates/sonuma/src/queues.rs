//! Work Queue and Completion Queue entries — the memory-mapped interface
//! between cores and the RMC.

use sabre_mem::Addr;

/// The one-sided operation types the hardware-software interface exposes.
/// §5.2 extends the original soNUMA set with the SABRe type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Plain one-sided remote read (no multi-block atomicity guarantee).
    Read,
    /// One-sided remote write.
    Write,
    /// Atomic remote object read (the new operation).
    Sabre,
    /// Remote CAS acquiring an object's write lock (DrTM-style source
    /// locking; single cache-block atomicity, as RDMA provides).
    LockCas,
    /// Remote unlock releasing a write lock acquired by
    /// [`OpKind::LockCas`].
    Unlock,
    /// Wait-free register read (Ianni et al.): the store serves the
    /// published version slot via a server-side capture; never aborts.
    WfRead,
    /// Oh-RAM one-and-a-half-round read (Hadjistasi et al.): the store
    /// serves a consistent snapshot under server-side OCC; the reader
    /// relays a confirm write before delivering.
    OhRead,
    /// Anti-entropy catch-up pull: a recovering replica reads a live
    /// peer's whole write-log region in one request/burst-reply exchange.
    /// Served even while the peer itself is catching up, so recovery
    /// never deadlocks behind the read-refusal guard.
    CatchUpPull,
}

/// A Work Queue entry: one remote operation scheduled by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WqEntry {
    /// Caller-assigned id, echoed in the completion.
    pub wq_id: u64,
    /// Operation type.
    pub op: OpKind,
    /// Destination node.
    pub dst_node: u8,
    /// Remote address (object base for SABRes; block-aligned).
    pub remote_addr: Addr,
    /// Local buffer the payload lands in (reads) or comes from (writes).
    pub local_buf: Addr,
    /// Transfer size in bytes.
    pub size_bytes: u32,
    /// SABRes only: offset of the version word within the first block.
    pub version_offset: u32,
}

/// A Completion Queue entry. §5.2: "an additional success field in the
/// Completion Queue entry … used to expose SABRe atomicity violations to
/// the application."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqEntry {
    /// The completed operation's `wq_id`.
    pub wq_id: u64,
    /// Operation type (echoed for the application's dispatch convenience).
    pub op: OpKind,
    /// SABRes: whether the read was atomic. Always `true` for plain reads
    /// and writes.
    pub success: bool,
    /// Whether the destination refused the read because the replica is
    /// catching up after an outage (epoch/seq guard). Refused transfers
    /// complete unsuccessfully without data; the reader should retry at
    /// another replica.
    pub refused: bool,
    /// Payload bytes transferred.
    pub bytes: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_plain_data() {
        let wq = WqEntry {
            wq_id: 9,
            op: OpKind::Sabre,
            dst_node: 1,
            remote_addr: Addr::new(4096),
            local_buf: Addr::new(0),
            size_bytes: 128,
            version_offset: 0,
        };
        let cq = CqEntry {
            wq_id: wq.wq_id,
            op: wq.op,
            success: false,
            refused: false,
            bytes: wq.size_bytes,
        };
        assert_eq!(cq.wq_id, 9);
        assert_eq!(cq.op, OpKind::Sabre);
        assert!(!cq.success);
    }
}
